//! Lexer for the CK kernel language.
//!
//! CK ("compute kernel") is the small C-like language the synthetic HPC applications are
//! written in. It supports exactly the constructs the XaaS pipeline needs to exercise:
//! functions over scalars and pointers, `for` loops, `if`/`else`, arithmetic, array
//! indexing, calls, and `#pragma omp` annotations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Token {
    /// Identifier (variable, function, type name).
    Ident(String),
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Keyword.
    Keyword(Keyword),
    /// Punctuation / operator.
    Punct(Punct),
    /// A `#pragma …` line, carried whole.
    Pragma(String),
}

/// Reserved keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Keyword {
    /// `kernel` — marks an exported function.
    Kernel,
    /// `void`
    Void,
    /// `int`
    Int,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `for`
    For,
    /// `while`
    While,
    /// `if`
    If,
    /// `else`
    Else,
    /// `return`
    Return,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "kernel" => Keyword::Kernel,
            "void" => Keyword::Void,
            "int" => Keyword::Int,
            "float" => Keyword::Float,
            "double" => Keyword::Double,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "return" => Keyword::Return,
            _ => return None,
        })
    }
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Punct {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::IntLit(v) => write!(f, "{v}"),
            Token::FloatLit(v) => write!(f, "{v}"),
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Punct(p) => write!(f, "{p:?}"),
            Token::Pragma(p) => write!(f, "#pragma {p}"),
        }
    }
}

/// Lexer errors with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenise CK source text (already preprocessed — no `#if`/`#define` directives except
/// `#pragma`, which is preserved as a token).
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '#' => {
                // Only #pragma is allowed after preprocessing.
                let start = i;
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                let directive: String = bytes[start..i].iter().collect();
                let trimmed = directive.trim_start_matches('#').trim();
                if let Some(rest) = trimmed.strip_prefix("pragma") {
                    tokens.push(Token::Pragma(rest.trim().to_string()));
                } else {
                    return Err(LexError {
                        line,
                        message: format!(
                            "unexpected preprocessor directive after preprocessing: {directive}"
                        ),
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                match Keyword::from_str(&word) {
                    Some(kw) => tokens.push(Token::Keyword(kw)),
                    None => tokens.push(Token::Ident(word)),
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && i > start
                            && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
                {
                    if bytes[i] == '.' || bytes[i] == 'e' || bytes[i] == 'E' {
                        is_float = true;
                    }
                    i += 1;
                }
                // Allow a trailing `f` suffix on float literals.
                let text: String = bytes[start..i].iter().collect();
                if i < bytes.len() && bytes[i] == 'f' {
                    is_float = true;
                    i += 1;
                }
                if is_float {
                    let value = text.parse::<f64>().map_err(|_| LexError {
                        line,
                        message: format!("invalid float literal: {text}"),
                    })?;
                    tokens.push(Token::FloatLit(value));
                } else {
                    let value = text.parse::<i64>().map_err(|_| LexError {
                        line,
                        message: format!("invalid integer literal: {text}"),
                    })?;
                    tokens.push(Token::IntLit(value));
                }
            }
            _ => {
                let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                let (punct, advance) = match two.as_str() {
                    "==" => (Punct::Eq, 2),
                    "!=" => (Punct::Ne, 2),
                    "<=" => (Punct::Le, 2),
                    ">=" => (Punct::Ge, 2),
                    "&&" => (Punct::AndAnd, 2),
                    "||" => (Punct::OrOr, 2),
                    _ => {
                        let single = match c {
                            '(' => Punct::LParen,
                            ')' => Punct::RParen,
                            '{' => Punct::LBrace,
                            '}' => Punct::RBrace,
                            '[' => Punct::LBracket,
                            ']' => Punct::RBracket,
                            ';' => Punct::Semi,
                            ',' => Punct::Comma,
                            '+' => Punct::Plus,
                            '-' => Punct::Minus,
                            '*' => Punct::Star,
                            '/' => Punct::Slash,
                            '%' => Punct::Percent,
                            '=' => Punct::Assign,
                            '<' => Punct::Lt,
                            '>' => Punct::Gt,
                            '!' => Punct::Not,
                            other => {
                                return Err(LexError {
                                    line,
                                    message: format!("unexpected character `{other}`"),
                                })
                            }
                        };
                        (single, 1)
                    }
                };
                tokens.push(Token::Punct(punct));
                i += advance;
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_simple_kernel() {
        let src = "kernel void axpy(float* y, float* x, float a, int n) { y[0] = a * x[0]; }";
        let tokens = lex(src).unwrap();
        assert_eq!(tokens[0], Token::Keyword(Keyword::Kernel));
        assert_eq!(tokens[1], Token::Keyword(Keyword::Void));
        assert_eq!(tokens[2], Token::Ident("axpy".into()));
        assert!(tokens.contains(&Token::Punct(Punct::Star)));
        assert!(tokens.contains(&Token::Punct(Punct::LBracket)));
    }

    #[test]
    fn lexes_numbers_and_floats() {
        let tokens = lex("42 3.5 1e-3 2.0f 7").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::IntLit(42),
                Token::FloatLit(3.5),
                Token::FloatLit(1e-3),
                Token::FloatLit(2.0),
                Token::IntLit(7),
            ]
        );
    }

    #[test]
    fn lexes_operators_including_two_char() {
        let tokens = lex("a <= b && c != d || !e").unwrap();
        assert!(tokens.contains(&Token::Punct(Punct::Le)));
        assert!(tokens.contains(&Token::Punct(Punct::AndAnd)));
        assert!(tokens.contains(&Token::Punct(Punct::Ne)));
        assert!(tokens.contains(&Token::Punct(Punct::OrOr)));
        assert!(tokens.contains(&Token::Punct(Punct::Not)));
    }

    #[test]
    fn skips_comments_and_counts_lines() {
        let src = "// comment line\nint a; /* block\ncomment */ int b;";
        let tokens = lex(src).unwrap();
        let idents: Vec<_> = tokens
            .iter()
            .filter_map(|t| match t {
                Token::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b"]);
    }

    #[test]
    fn keeps_pragmas_as_tokens() {
        let src = "#pragma omp parallel for\nfor (int i = 0; i < n; i = i + 1) {}";
        let tokens = lex(src).unwrap();
        assert_eq!(tokens[0], Token::Pragma("omp parallel for".into()));
    }

    #[test]
    fn rejects_unexpected_directives_and_characters() {
        assert!(lex("#define A 1\nint a;").is_err());
        assert!(lex("int a @ b;").is_err());
    }
}
