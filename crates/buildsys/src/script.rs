//! The mini build-script format ("XMakeLists") and its parser.
//!
//! Specialization discovery (Section 3.2) operates on build-system *text*: CMake files
//! with `option()`, `gmx_option_multichoice()`, `find_package()` calls and comments. The
//! synthetic projects carry an equivalent script so the discovery crate has something
//! realistic to parse — including the noise (comments, unrelated commands, dependent
//! defaults) that makes extraction non-trivial.
//!
//! Supported commands:
//!
//! ```text
//! project(NAME)
//! option(NAME "description" ON|OFF)
//! option_multichoice(NAME "description" DEFAULT value1 value2 …)
//! set(NAME VALUE)
//! find_package(NAME [REQUIRED] [VERSION x.y])
//! internal_build(NAME -DFLAG)
//! # comments
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

/// A declaration extracted from a build script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScriptItem {
    /// `project(NAME)`
    Project {
        /// Project name.
        name: String,
    },
    /// A boolean option.
    BoolOption {
        /// Option name.
        name: String,
        /// Description string.
        description: String,
        /// Default state.
        default: bool,
    },
    /// A multi-choice option.
    ChoiceOption {
        /// Option name.
        name: String,
        /// Description string.
        description: String,
        /// Default value.
        default: String,
        /// All selectable values.
        values: Vec<String>,
    },
    /// `set(NAME VALUE)` — cache variables, often encode dependent defaults.
    Set {
        /// Variable name.
        name: String,
        /// Value.
        value: String,
    },
    /// `find_package(NAME …)`
    FindPackage {
        /// Package name.
        name: String,
        /// Whether the package is required.
        required: bool,
        /// Minimum version if specified.
        min_version: Option<String>,
    },
    /// `internal_build(NAME -DFLAG)` — the project can build this dependency itself.
    InternalBuild {
        /// Library name.
        name: String,
        /// Flag enabling the internal build.
        flag: String,
    },
    /// A comment line (kept because the paper notes comments often reveal flags).
    Comment(String),
}

/// A parsed build script.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BuildScript {
    /// Items in file order.
    pub items: Vec<ScriptItem>,
}

impl BuildScript {
    /// The project name, if declared.
    pub fn project_name(&self) -> Option<&str> {
        self.items.iter().find_map(|i| match i {
            ScriptItem::Project { name } => Some(name.as_str()),
            _ => None,
        })
    }

    /// All option declarations (bool and choice).
    pub fn options(&self) -> Vec<&ScriptItem> {
        self.items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    ScriptItem::BoolOption { .. } | ScriptItem::ChoiceOption { .. }
                )
            })
            .collect()
    }

    /// All `find_package` declarations.
    pub fn packages(&self) -> Vec<&ScriptItem> {
        self.items
            .iter()
            .filter(|i| matches!(i, ScriptItem::FindPackage { .. }))
            .collect()
    }

    /// Rough token count of the script (whitespace-separated words), mirroring the token
    /// accounting of Table 4.
    pub fn token_count(text: &str) -> usize {
        text.split_whitespace().count()
    }
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "build script error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ScriptError {}

/// Parse a build script.
pub fn parse_script(text: &str) -> Result<BuildScript, ScriptError> {
    let mut script = BuildScript::default();
    for (index, raw_line) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            script
                .items
                .push(ScriptItem::Comment(comment.trim().to_string()));
            continue;
        }
        let Some((command, args_text)) = line.split_once('(') else {
            return Err(ScriptError {
                line: line_no,
                message: format!("expected `command(...)`, got `{line}`"),
            });
        };
        let Some(args_text) = args_text.strip_suffix(')') else {
            return Err(ScriptError {
                line: line_no,
                message: "missing closing parenthesis".into(),
            });
        };
        let args = split_args(args_text);
        let command = command.trim().to_ascii_lowercase();
        let item = match command.as_str() {
            "project" => ScriptItem::Project {
                name: arg(&args, 0, line_no, "project name")?,
            },
            "option" => {
                let name = arg(&args, 0, line_no, "option name")?;
                let description = args.get(1).cloned().unwrap_or_default();
                let default = args
                    .get(2)
                    .map(|v| v.eq_ignore_ascii_case("ON"))
                    .unwrap_or(false);
                ScriptItem::BoolOption {
                    name,
                    description,
                    default,
                }
            }
            "option_multichoice" | "gmx_option_multichoice" | "qe_option_multichoice" => {
                let name = arg(&args, 0, line_no, "option name")?;
                let description = args.get(1).cloned().unwrap_or_default();
                let default = arg(&args, 2, line_no, "default value")?;
                let values: Vec<String> = args.iter().skip(3).cloned().collect();
                if values.is_empty() {
                    return Err(ScriptError {
                        line: line_no,
                        message: format!("multichoice option {name} lists no values"),
                    });
                }
                ScriptItem::ChoiceOption {
                    name,
                    description,
                    default,
                    values,
                }
            }
            "set" => ScriptItem::Set {
                name: arg(&args, 0, line_no, "variable name")?,
                value: args.get(1).cloned().unwrap_or_default(),
            },
            "find_package" => {
                let name = arg(&args, 0, line_no, "package name")?;
                let required = args.iter().any(|a| a.eq_ignore_ascii_case("REQUIRED"));
                let min_version = args
                    .iter()
                    .position(|a| a.eq_ignore_ascii_case("VERSION"))
                    .and_then(|i| args.get(i + 1))
                    .cloned()
                    .or_else(|| {
                        args.get(1)
                            .filter(|a| a.chars().next().is_some_and(|c| c.is_ascii_digit()))
                            .cloned()
                    });
                ScriptItem::FindPackage {
                    name,
                    required,
                    min_version,
                }
            }
            "internal_build" => ScriptItem::InternalBuild {
                name: arg(&args, 0, line_no, "library name")?,
                flag: args.get(1).cloned().unwrap_or_default(),
            },
            other => {
                return Err(ScriptError {
                    line: line_no,
                    message: format!("unknown command `{other}`"),
                })
            }
        };
        script.items.push(item);
    }
    Ok(script)
}

fn arg(args: &[String], index: usize, line: usize, what: &str) -> Result<String, ScriptError> {
    args.get(index).cloned().ok_or_else(|| ScriptError {
        line,
        message: format!("missing {what}"),
    })
}

/// Split an argument list on whitespace, honouring double quotes.
fn split_args(text: &str) -> Vec<String> {
    let mut args = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in text.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            c if c.is_whitespace() && !in_quotes => {
                if !current.is_empty() {
                    args.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        args.push(current);
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = r#"
# Build configuration for the demo project
project(demo)
option(USE_MPI "Enable MPI parallelism" OFF)
option(USE_OPENMP "Enable OpenMP threading" ON)
# The SIMD level controls vectorized kernels; see the install guide.
option_multichoice(SIMD "SIMD instruction set" AUTO None SSE2 SSE4.1 AVX2_256 AVX_512)
option_multichoice(FFT_LIBRARY "FFT implementation" fftw3 fftw3 mkl fftpack)
set(FFT_LIBRARY_DEFAULT fftw3)
find_package(FFTW3 3.3 REQUIRED)
find_package(MKL)
internal_build(fftpack -DBUILD_OWN_FFT)
"#;

    #[test]
    fn parses_all_item_kinds() {
        let script = parse_script(SCRIPT).unwrap();
        assert_eq!(script.project_name(), Some("demo"));
        assert_eq!(script.options().len(), 4);
        assert_eq!(script.packages().len(), 2);
        assert!(script
            .items
            .iter()
            .any(|i| matches!(i, ScriptItem::InternalBuild { .. })));
        assert!(script
            .items
            .iter()
            .any(|i| matches!(i, ScriptItem::Comment(_))));
    }

    #[test]
    fn bool_option_defaults() {
        let script = parse_script(SCRIPT).unwrap();
        let omp = script.items.iter().find_map(|i| match i {
            ScriptItem::BoolOption { name, default, .. } if name == "USE_OPENMP" => Some(*default),
            _ => None,
        });
        assert_eq!(omp, Some(true));
    }

    #[test]
    fn multichoice_values_and_default() {
        let script = parse_script(SCRIPT).unwrap();
        let simd = script.items.iter().find_map(|i| match i {
            ScriptItem::ChoiceOption {
                name,
                default,
                values,
                ..
            } if name == "SIMD" => Some((default.clone(), values.clone())),
            _ => None,
        });
        let (default, values) = simd.unwrap();
        assert_eq!(default, "AUTO");
        assert_eq!(values.len(), 5);
        assert!(values.contains(&"AVX_512".to_string()));
    }

    #[test]
    fn find_package_versions_and_required() {
        let script = parse_script(SCRIPT).unwrap();
        let fftw = script.items.iter().find_map(|i| match i {
            ScriptItem::FindPackage {
                name,
                required,
                min_version,
            } if name == "FFTW3" => Some((*required, min_version.clone())),
            _ => None,
        });
        assert_eq!(fftw, Some((true, Some("3.3".to_string()))));
    }

    #[test]
    fn quoted_descriptions_keep_spaces() {
        let script = parse_script("option(X \"a long description here\" ON)").unwrap();
        let ScriptItem::BoolOption { description, .. } = &script.items[0] else {
            panic!()
        };
        assert_eq!(description, "a long description here");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_script("project(x)\nbogus_command(1)").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_script("option(").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_script("option_multichoice(A \"d\" def)").unwrap_err();
        assert!(err.message.contains("no values"));
    }

    #[test]
    fn token_count_counts_words() {
        assert_eq!(BuildScript::token_count("a b  c\nd"), 4);
    }
}
