//! XaaS source containers (Section 4.1).
//!
//! A source container ships the application source tree, its build instructions, and the
//! toolchain, annotated with the application's specialization points. Deployment happens
//! on the target system: system discovery, feature intersection, specialization
//! selection, and a full build of the selected configuration, producing a *new*,
//! system-specific image (Figure 6).

use crate::engine::{
    add_commit_action, ActionGraph, ActionId, ActionKind, ActionTrace, Engine, KeyedActionPlanner,
    LinkSlot, PreprocessPlanner,
};
use crate::ir_container::{ActionSummary, TOOLCHAIN_ID};
use crate::targets::{derive_build_profile, target_isa_for};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use xaas_buildsys::{configure, ConfigureError, OptionAssignment, OptionCategory, ProjectSpec};
use xaas_container::{
    annotation_keys, ActionCache, Architecture, BuildKey, DeploymentFormat, Image, ImageStore,
    Layer, Platform,
};
use xaas_hpcsim::{discover, BuildProfile, ModuleKind, SimdLevel, SystemModel};
use xaas_specs::{from_project, intersect, CommonSpecialization, SpecCategory};
use xaas_xir::{CompileFlags, Compiler, MachineModule};

/// Errors during source-container building or deployment.
#[derive(Debug)]
#[allow(missing_docs)] // variant payload fields are documented by the Display impl
pub enum SourceContainerError {
    /// The selected configuration could not be configured.
    Configure(ConfigureError),
    /// A translation unit failed to compile on the target.
    Compile {
        file: String,
        error: xaas_xir::CompileError,
    },
    /// The user preference conflicts with the system's capabilities.
    UnsupportedPreference {
        option: String,
        value: String,
        reason: String,
    },
    /// Container store failure.
    Store(xaas_container::ImageError),
    /// A target (or the generated compile database) references a source file the
    /// project does not provide — neither as a source spec nor as a custom-target
    /// product (a malformed project).
    UnknownSource { file: String },
    /// A cached artifact failed to decode (action-cache corruption).
    Cache(String),
    /// The orchestrator's scheduling policy is invalid (e.g. a zero concurrency cap).
    Policy(crate::engine::PolicyError),
    /// The pre-submission static analyzer rejected the build graph (deny-level
    /// diagnostics under [`AnalysisMode::Strict`](crate::engine::AnalysisMode));
    /// nothing executed.
    Analysis(Box<crate::engine::AnalysisReport>),
    /// The executor broke its scheduling contract (a node skipped without a
    /// failure, or cancelled mid-run) — not a pipeline error.
    Engine(crate::engine::GraphFault),
}

impl fmt::Display for SourceContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceContainerError::Configure(e) => write!(f, "configuration failed: {e}"),
            SourceContainerError::Compile { file, error } => write!(f, "compiling {file}: {error}"),
            SourceContainerError::UnsupportedPreference {
                option,
                value,
                reason,
            } => {
                write!(f, "preference {option}={value} is not deployable: {reason}")
            }
            SourceContainerError::Store(e) => write!(f, "image store: {e}"),
            SourceContainerError::UnknownSource { file } => {
                write!(
                    f,
                    "compile database references {file}, which is not an enabled source"
                )
            }
            SourceContainerError::Cache(detail) => write!(f, "action cache: {detail}"),
            SourceContainerError::Policy(error) => write!(f, "{error}"),
            SourceContainerError::Analysis(report) => {
                write!(f, "graph rejected by analysis: {report}")
            }
            SourceContainerError::Engine(fault) => write!(f, "executor fault: {fault}"),
        }
    }
}

impl std::error::Error for SourceContainerError {}

impl From<crate::engine::GraphRunError<SourceContainerError>> for SourceContainerError {
    fn from(value: crate::engine::GraphRunError<SourceContainerError>) -> Self {
        match value.into_action() {
            Ok(error) => error,
            Err(fault) => SourceContainerError::Engine(fault),
        }
    }
}

impl From<Box<crate::engine::AnalysisReport>> for SourceContainerError {
    fn from(value: Box<crate::engine::AnalysisReport>) -> Self {
        SourceContainerError::Analysis(value)
    }
}

impl From<ConfigureError> for SourceContainerError {
    fn from(value: ConfigureError) -> Self {
        SourceContainerError::Configure(value)
    }
}
impl From<xaas_container::ImageError> for SourceContainerError {
    fn from(value: xaas_container::ImageError) -> Self {
        SourceContainerError::Store(value)
    }
}

/// Paths used inside source containers.
pub mod paths {
    /// Root of the application source tree.
    pub const SOURCE_ROOT: &str = "/xaas/src";
    /// The build script.
    pub const BUILD_SCRIPT: &str = "/xaas/src/XMakeLists.txt";
    /// Directory with project headers.
    pub const INCLUDE_ROOT: &str = "/xaas/src/include";
    /// The toolchain compiler binary.
    pub const COMPILER: &str = "/usr/bin/xirc";
    /// Deployment build outputs.
    pub const BUILD_ROOT: &str = "/xaas/build";
    /// Installed binaries.
    pub const INSTALL_ROOT: &str = "/opt/app";
}

/// Build a source container image for `project` targeting `architecture` and commit it.
///
/// One image per toolchain and architecture is enough (Section 4.1): no build steps run
/// here, so there is no combinatorial explosion.
pub fn build_source_container(
    project: &ProjectSpec,
    architecture: Architecture,
    store: &ImageStore,
    reference: &str,
) -> Image {
    let mut image = Image::new(reference, Platform::linux(architecture));
    image.set_deployment_format(DeploymentFormat::Source);

    let mut toolchain = Layer::new("ADD xirc toolchain and MPICH-ABI headers");
    toolchain.add_executable(paths::COMPILER, b"xirc-driver".to_vec());
    toolchain.add_text("/opt/mpich/lib/libmpi.so", "mpich 4.2 (ABI: mpich)");
    toolchain.add_text(
        "/etc/xaas/toolchain.json",
        r#"{"compiler":"xirc","ir":"xir.v1"}"#,
    );
    image.push_layer(toolchain);

    let mut sources = Layer::new(format!("COPY {} source tree", project.name));
    sources.add_text(paths::BUILD_SCRIPT, project.build_script.clone());
    for (path, content) in project.source_tree() {
        sources.add_text(format!("{}/{}", paths::SOURCE_ROOT, path), content);
    }
    for (name, content) in &project.headers {
        sources.add_text(format!("{}/{}", paths::INCLUDE_ROOT, name), content.clone());
    }
    image.push_layer(sources);

    let spec_points = from_project(project);
    image.annotate(
        annotation_keys::SPECIALIZATION_POINTS,
        spec_points.to_json_string(),
    );
    image.annotate(annotation_keys::TITLE, project.name.clone());
    store.commit(&image);
    image
}

/// The result of deploying a source container to a system.
#[derive(Debug, Clone)]
pub struct SourceDeployment {
    /// The system-specialized image (a new image, distinct from the registry image).
    pub image: Image,
    /// The reference under which the deployed image was committed.
    pub reference: String,
    /// The specialization values that were selected.
    pub assignment: OptionAssignment,
    /// The intersection that constrained the selection.
    pub intersection: CommonSpecialization,
    /// Number of translation units compiled during deployment.
    pub compiled_units: usize,
    /// The performance profile of the deployed build (for the execution model).
    pub build_profile: BuildProfile,
    /// Human-readable notes (fallbacks, substitutions, base-image switches).
    pub notes: Vec<String>,
    /// Compile actions executed vs served from the action cache.
    pub actions: ActionSummary,
    /// The full, deterministic action trace of the deployment.
    pub trace: ActionTrace,
}

/// Selection policy used when the user does not pin a value for a specialization point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SelectionPolicy {
    /// Pick the best-performing available option (vendor libraries, newest SIMD, GPU on).
    #[default]
    BestAvailable,
    /// Pick the most conservative option (portable SIMD, no GPU) — used in tests and as a
    /// stand-in for the "performance-oblivious" choice.
    Conservative,
}

/// Deploy a source container onto a system over an uncached
/// ([`NoCache`](xaas_container::NoCache)-backed) orchestrator — every compile action
/// runs.
#[deprecated(
    since = "0.2.0",
    note = "use xaas::orchestrator::SourceDeployRequest with Orchestrator::uncached(store)"
)]
pub fn deploy_source_container(
    project: &ProjectSpec,
    source_image: &Image,
    system: &SystemModel,
    preferences: &OptionAssignment,
    policy: SelectionPolicy,
    store: &ImageStore,
) -> Result<SourceDeployment, SourceContainerError> {
    crate::orchestrator::SourceDeployRequest::new(project, source_image, system)
        .preferences(preferences.clone())
        .selection_policy(policy)
        .submit(&crate::orchestrator::Orchestrator::uncached(store))
}

/// Deploy a source container, routing every translation-unit compile through `cache`.
#[deprecated(
    since = "0.2.0",
    note = "use xaas::orchestrator::SourceDeployRequest with Orchestrator::with_cache(cache)"
)]
pub fn deploy_source_container_cached(
    project: &ProjectSpec,
    source_image: &Image,
    system: &SystemModel,
    preferences: &OptionAssignment,
    policy: SelectionPolicy,
    cache: &ActionCache,
) -> Result<SourceDeployment, SourceContainerError> {
    crate::orchestrator::SourceDeployRequest::new(project, source_image, system)
        .preferences(preferences.clone())
        .selection_policy(policy)
        .submit(&crate::orchestrator::Orchestrator::with_cache(cache))
}

/// Deploy a source container through an explicitly configured `engine`.
#[deprecated(
    since = "0.2.0",
    note = "use xaas::orchestrator::SourceDeployRequest with Orchestrator::from_engine(engine)"
)]
pub fn deploy_source_container_with(
    project: &ProjectSpec,
    source_image: &Image,
    system: &SystemModel,
    preferences: &OptionAssignment,
    policy: SelectionPolicy,
    engine: &Engine,
) -> Result<SourceDeployment, SourceContainerError> {
    crate::orchestrator::SourceDeployRequest::new(project, source_image, system)
        .preferences(preferences.clone())
        .selection_policy(policy)
        .submit(&crate::orchestrator::Orchestrator::from_engine(
            engine.clone(),
        ))
}

/// Deploy a source container by constructing staged action graphs and submitting them
/// to `engine` (Figure 6 as a DAG; the driver behind
/// [`SourceDeployRequest`](crate::orchestrator::SourceDeployRequest)).
///
/// Selection and configuration run serially in the driver (they are cheap and
/// inherently sequential); the full on-target build then executes as two graphs:
/// **preprocess** every enabled translation unit in parallel, then **sd-compile** each
/// deduplicated unit (cache keys derive from the preprocessed-content digest, the
/// IR-relevant flags, and the target ISA, so repeat deployments — including
/// deployments of *other* configurations whose flags do not change a unit — reuse the
/// compiled artifact), and finally **link + commit** the system-specialized image.
pub(crate) fn run_source_deploy(
    project: &ProjectSpec,
    source_image: &Image,
    system: &SystemModel,
    preferences: &OptionAssignment,
    policy: SelectionPolicy,
    engine: &Engine,
) -> Result<SourceDeployment, SourceContainerError> {
    if let Some(file) = crate::ir_container::unknown_target_source(project) {
        return Err(SourceContainerError::UnknownSource { file });
    }
    let mut notes = Vec::new();

    // 1. System discovery and feature intersection.
    let features = discover(system);
    let spec_points = from_project(project);
    let intersection = intersect(&spec_points, &features);

    // 2. Specialization selection: defaults → policy-driven choices → user preferences.
    let mut assignment = project.default_assignment();
    if policy == SelectionPolicy::BestAvailable {
        apply_best_available(project, system, &intersection, &mut assignment, &mut notes);
    }
    for (option, value) in preferences.iter() {
        if let Some(build_option) = project.option(option) {
            if !build_option.accepts(value) {
                return Err(SourceContainerError::UnsupportedPreference {
                    option: option.to_string(),
                    value: value.to_string(),
                    reason: "value is not offered by the build system".to_string(),
                });
            }
        }
        assignment.set(option, value);
    }

    // 3. Configure against the dependencies the system (plus the container layers) offers.
    let mut available: BTreeSet<String> = BTreeSet::new();
    available.extend([
        "mpich".to_string(),
        "fftw".to_string(),
        "openblas".to_string(),
        "opencl".to_string(),
    ]);
    for module in &system.modules {
        let name = module.name.to_ascii_lowercase();
        if name.contains("mkl") || name.contains("oneapi") {
            available.insert("mkl".into());
            available.insert("oneapi".into());
        }
        if name.contains("cuda") {
            available.insert("cuda".into());
        }
        if name.contains("rocm") {
            available.insert("rocm".into());
        }
        if module.kind == ModuleKind::Mpi {
            available.insert("mpich".into());
        }
    }
    let build = configure(project, &assignment, paths::BUILD_ROOT, Some(&available))?;

    // 4. Build on the target: compile every enabled translation unit for the selected
    //    SIMD level and assemble the deployed image.
    let threads = system.cpu.total_cores().min(36);
    let build_profile = derive_build_profile(
        format!("XaaS Source ({})", system.name),
        &assignment,
        system,
        threads,
    )
    .with_container_overhead(1.01);
    let simd = if system.cpu.supports(build_profile.simd) {
        build_profile.simd
    } else {
        notes.push(format!(
            "selected SIMD level {} unsupported on {}; falling back to the best supported level",
            build_profile.simd, system.name
        ));
        system.cpu.best_simd()
    };
    let target = target_isa_for(simd);

    let mut compiler = Compiler::new();
    for (name, content) in &project.headers {
        compiler.add_header(name.clone(), content.clone());
    }

    let base_reference = match &system.recommended_base_image {
        Some(base) => {
            notes.push(format!(
                "switching base image to operator-recommended {base}"
            ));
            base.clone()
        }
        None => source_image.reference.clone(),
    };
    let reference = format!(
        "{}:{}-{}",
        project.name,
        system.name.to_ascii_lowercase(),
        assignment_tag(&assignment)
    );

    // ---- Graph A: preprocess every enabled translation unit, in parallel ----
    // Preprocessing depends only on (file, definition set); deduplicate across the
    // compile commands (two targets can compile the same file with the same flags).
    struct CommandPlan<'plan> {
        target: &'plan str,
        file: &'plan str,
        content: &'plan str,
        flags: CompileFlags,
        preprocess_action: ActionId,
    }
    let mut plans: Vec<CommandPlan<'_>> = Vec::new();
    let mut stage_a: ActionGraph<'_, SourceContainerError> = ActionGraph::new();
    let mut preprocess = PreprocessPlanner::new();
    for command in &build.compile_db.commands {
        let source = build
            .enabled_sources
            .iter()
            .find(|s| s.path == command.file)
            .ok_or_else(|| SourceContainerError::UnknownSource {
                file: command.file.clone(),
            })?;
        let flags = CompileFlags::parse(command.arguments.iter().cloned());
        // The preprocess output is the *preprocessed-content* digest (the cache
        // contract): it folds in the headers the compiler resolves, so caches shared
        // across projects can never serve code built against different header
        // definitions.
        let preprocess_action = preprocess.action_for(
            &mut stage_a,
            &compiler,
            &command.file,
            &source.content,
            &flags,
            |file, error| SourceContainerError::Compile { file, error },
        );
        plans.push(CommandPlan {
            target: command.target.as_str(),
            file: command.file.as_str(),
            content: source.content.as_str(),
            flags,
            preprocess_action,
        });
    }
    engine.preflight(&stage_a)?;
    let run_a = engine.run(stage_a);
    let (outputs_a, mut trace) = run_a.into_outputs()?;

    // ---- Graph B: compile each deduplicated unit, then link + commit ----
    // Declared before the graph: its closures borrow these.
    let assembled: LinkSlot<Image> = LinkSlot::new();
    // Per-command position of its compile action among the planned ones (identical
    // BuildKeys share one action — the KeyedActionPlanner enforces the graph's
    // one-node-per-key contract).
    let mut command_positions: Vec<usize> = Vec::with_capacity(plans.len());
    // One representative source file per compile action (for decode error messages).
    let mut representative_files: Vec<&str> = Vec::new();
    let mut stage_b: ActionGraph<'_, SourceContainerError> = ActionGraph::new();
    let mut compile_plan = KeyedActionPlanner::new();
    for plan in &plans {
        let digest = String::from_utf8_lossy(&outputs_a[plan.preprocess_action]).into_owned();
        let key = BuildKey::new(
            digest,
            &target.name,
            format!("file={};{}", plan.file, plan.flags.ir_relevant_key()),
            TOOLCHAIN_ID,
        );
        let compiler = &compiler;
        let target = &target;
        let (file, content, flags) = (plan.file, plan.content, &plan.flags);
        let position = compile_plan.position_for(&mut stage_b, key, |graph, key| {
            graph.add_cached(
                ActionKind::SdCompile,
                file.to_string(),
                key,
                &[],
                move |_| {
                    let machine = compiler
                        .compile_to_machine(file, content, flags, target)
                        .map_err(|error| SourceContainerError::Compile {
                            file: file.to_string(),
                            error,
                        })?;
                    Ok(serde_json::to_vec(&machine).expect("machine module serialises"))
                },
            )
        });
        if position == representative_files.len() {
            representative_files.push(plan.file);
        }
        command_positions.push(position);
    }
    let compile_actions = compile_plan.into_actions();

    let link_action = {
        let assembled = &assembled;
        let plans = &plans;
        let command_positions = &command_positions;
        let representative_files = &representative_files;
        let reference = reference.as_str();
        let assignment = &assignment;
        let target = &target;
        stage_b.add(
            ActionKind::Link,
            format!("{reference} image"),
            &compile_actions,
            move |inputs| {
                // The cached bytes *are* the canonical object serialisation; decode
                // only to validate them before shipping.
                for (position, file) in representative_files.iter().enumerate() {
                    serde_json::from_slice::<MachineModule>(inputs.dep(position)).map_err(|e| {
                        SourceContainerError::Cache(format!("machine module for {file}: {e}"))
                    })?;
                }

                let mut deployed = Image::derive_from(source_image, reference);
                deployed.platform = Platform::linux(architecture_of(system));
                deployed.set_deployment_format(DeploymentFormat::Binary);
                deployed.annotate(annotation_keys::SELECTED_CONFIGURATION, assignment.label());
                deployed.annotate(annotation_keys::TARGET_SYSTEM, system.name.clone());
                deployed.annotate("dev.xaas.base-image", base_reference);

                let mut build_layer =
                    Layer::new(format!("RUN xmake build ({})", assignment.label()));
                for (plan, &position) in plans.iter().zip(command_positions) {
                    build_layer.add_file(
                        format!(
                            "{}/{}/{}.o",
                            paths::BUILD_ROOT,
                            plan.target,
                            plan.file.replace('/', "_")
                        ),
                        inputs.dep(position).to_vec(),
                    );
                }
                for target_spec in &project.targets {
                    build_layer.add_executable(
                        format!("{}/bin/{}", paths::INSTALL_ROOT, target_spec.name),
                        format!("linked for {} ({})", system.name, target.name).into_bytes(),
                    );
                }
                deployed.push_layer(build_layer);
                assembled.put(deployed);
                Ok(Vec::new())
            },
        )
    };
    add_commit_action(
        &mut stage_b,
        format!("{reference} commit"),
        engine.store(),
        &assembled,
        |image| image,
        link_action,
    );

    engine.preflight(&stage_b)?;
    let run_b = engine.run(stage_b);
    let (_, trace_b) = run_b.into_outputs()?;
    trace.merge(trace_b);
    let deployed = assembled.into_inner().expect("link action ran");
    let compiled_units = plans.len();

    let mut final_profile = build_profile;
    final_profile.simd = simd;
    let actions = trace.summary();
    Ok(SourceDeployment {
        image: deployed,
        reference,
        assignment,
        intersection,
        compiled_units,
        build_profile: final_profile,
        notes,
        actions,
        trace,
    })
}

/// Choose the best available value for each specialization point (the automatic part of
/// "the user selects the best fit from the available options").
fn apply_best_available(
    project: &ProjectSpec,
    system: &SystemModel,
    intersection: &CommonSpecialization,
    assignment: &mut OptionAssignment,
    notes: &mut Vec<String>,
) {
    for option in &project.options {
        match option.category {
            OptionCategory::GpuBackend => {
                let preferred =
                    xaas_apps::preferred_gpu_backend(system).map(|b| b.as_str().to_string());
                let choices = intersection.choices(SpecCategory::GpuBackend);
                let selected = preferred
                    .filter(|p| {
                        choices.iter().any(|c| c.eq_ignore_ascii_case(p)) && option.accepts(p)
                    })
                    .or_else(|| {
                        choices
                            .iter()
                            .find(|c| option.accepts(c))
                            .map(|c| c.to_string())
                    });
                match selected {
                    Some(value) => {
                        assignment.set(option.name.clone(), value);
                    }
                    None => {
                        assignment.set(option.name.clone(), option.default_value());
                        notes.push(format!(
                            "no usable GPU backend on {}; staying CPU-only",
                            system.name
                        ));
                    }
                }
            }
            OptionCategory::Vectorization => {
                let best = system.cpu.best_simd();
                if option.accepts(best.gmx_name()) {
                    assignment.set(option.name.clone(), best.gmx_name());
                } else if option.accepts("ON") && best != SimdLevel::None {
                    assignment.set(option.name.clone(), "ON");
                }
            }
            OptionCategory::Fft | OptionCategory::LinearAlgebra => {
                let vendor_available = system.has_vendor_blas()
                    || system
                        .modules
                        .iter()
                        .any(|m| m.name.to_ascii_lowercase().contains("mkl"));
                let pick = if vendor_available && option.accepts("mkl") {
                    Some("mkl")
                } else if option.accepts("fftw3") {
                    Some("fftw3")
                } else if option.accepts("openblas") {
                    Some("openblas")
                } else {
                    None
                };
                if let Some(value) = pick {
                    assignment.set(option.name.clone(), value);
                }
            }
            OptionCategory::Parallelism => {
                let is_real_mpi = option.name.to_ascii_uppercase().contains("MPI")
                    && !option.name.to_ascii_uppercase().contains("THREAD");
                if is_real_mpi {
                    let mpi_ok = system.module_of_kind(ModuleKind::Mpi).is_some()
                        && system.container_runtime.mpi_functional();
                    let value = if mpi_ok { "ON" } else { "OFF" };
                    if !mpi_ok {
                        notes.push(format!(
                            "MPI not functional under {} on {}; using thread-MPI",
                            system.container_runtime, system.name
                        ));
                    }
                    assignment.set(option.name.clone(), value);
                }
            }
            _ => {}
        }
    }
}

/// A short tag derived from an assignment, usable in image references.
fn assignment_tag(assignment: &OptionAssignment) -> String {
    let label = assignment.label().to_ascii_lowercase();
    let mut tag: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    tag.truncate(48);
    tag.trim_matches('-').to_string()
}

/// The container platform architecture of a system.
pub fn architecture_of(system: &SystemModel) -> Architecture {
    match system.cpu.family {
        xaas_hpcsim::IsaFamily::Aarch64 => Architecture::Arm64,
        _ => Architecture::Amd64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::{Orchestrator, SourceDeployRequest};
    use xaas_apps::gromacs;

    /// Old free-function shape, routed through the orchestrator (uncached).
    fn deploy_source(
        project: &ProjectSpec,
        source_image: &Image,
        system: &SystemModel,
        preferences: &OptionAssignment,
        policy: SelectionPolicy,
        store: &ImageStore,
    ) -> Result<SourceDeployment, SourceContainerError> {
        SourceDeployRequest::new(project, source_image, system)
            .preferences(preferences.clone())
            .selection_policy(policy)
            .submit(&Orchestrator::uncached(store))
    }

    fn setup() -> (ProjectSpec, ImageStore, Image) {
        let project = gromacs::project();
        let store = ImageStore::new();
        let image = build_source_container(
            &project,
            Architecture::Amd64,
            &store,
            "spcl/mini-gromacs:src-x86",
        );
        (project, store, image)
    }

    #[test]
    fn source_container_carries_sources_toolchain_and_annotations() {
        let (project, store, image) = setup();
        assert_eq!(image.deployment_format(), DeploymentFormat::Source);
        let root = image.rootfs();
        assert!(root.get(paths::COMPILER).is_some());
        assert!(root
            .read_text(paths::BUILD_SCRIPT)
            .unwrap()
            .contains("mini-gromacs"));
        assert!(root
            .get(&format!("{}/src/mdrun/nonbonded.ck", paths::SOURCE_ROOT))
            .is_some());
        let annotation = &image.annotations[annotation_keys::SPECIALIZATION_POINTS];
        assert!(annotation.contains("gpu_backends"));
        assert!(store.load("spcl/mini-gromacs:src-x86").is_ok());
        assert_eq!(project.source_count(), 13);
    }

    #[test]
    fn deployment_on_ault23_selects_cuda_avx512_and_mkl() {
        let (project, store, image) = setup();
        let system = SystemModel::ault23();
        let deployment = deploy_source(
            &project,
            &image,
            &system,
            &OptionAssignment::new(),
            SelectionPolicy::BestAvailable,
            &store,
        )
        .unwrap();
        assert_eq!(deployment.assignment.get("GMX_GPU"), Some("CUDA"));
        assert_eq!(deployment.assignment.get("GMX_SIMD"), Some("AVX_512"));
        assert_eq!(deployment.assignment.get("GMX_FFT_LIBRARY"), Some("mkl"));
        assert!(deployment.compiled_units > 8);
        assert!(deployment.build_profile.gpu_backend.is_some());
        // The deployed image is a new, system-specific image in the store.
        assert!(store.load(&deployment.reference).is_ok());
        assert_ne!(deployment.image.reference, image.reference);
        assert_eq!(
            deployment.image.annotations[annotation_keys::TARGET_SYSTEM],
            "Ault23"
        );
    }

    #[test]
    fn deployment_on_clariden_is_arm_with_neon() {
        let (project, store, image) = setup();
        let system = SystemModel::clariden();
        let deployment = deploy_source(
            &project,
            &image,
            &system,
            &OptionAssignment::new(),
            SelectionPolicy::BestAvailable,
            &store,
        )
        .unwrap();
        assert_eq!(
            deployment.assignment.get("GMX_SIMD"),
            Some("ARM_NEON_ASIMD")
        );
        assert_eq!(deployment.image.platform.architecture, Architecture::Arm64);
        assert_eq!(deployment.assignment.get("GMX_GPU"), Some("CUDA"));
    }

    #[test]
    fn aurora_switches_base_image_and_disables_real_mpi() {
        let (project, store, image) = setup();
        let system = SystemModel::aurora();
        let deployment = deploy_source(
            &project,
            &image,
            &system,
            &OptionAssignment::new(),
            SelectionPolicy::BestAvailable,
            &store,
        )
        .unwrap();
        assert!(
            deployment.notes.iter().any(|n| n.contains("oneapi")),
            "{:?}",
            deployment.notes
        );
        assert!(deployment.notes.iter().any(|n| n.contains("thread-MPI")));
        assert_eq!(deployment.assignment.get("GMX_MPI"), Some("OFF"));
        assert_eq!(deployment.assignment.get("GMX_GPU"), Some("SYCL"));
    }

    #[test]
    fn user_preferences_override_the_policy_but_are_validated() {
        let (project, store, image) = setup();
        let system = SystemModel::ault23();
        let preference = OptionAssignment::new().with("GMX_FFT_LIBRARY", "fftw3");
        let deployment = deploy_source(
            &project,
            &image,
            &system,
            &preference,
            SelectionPolicy::BestAvailable,
            &store,
        )
        .unwrap();
        assert_eq!(deployment.assignment.get("GMX_FFT_LIBRARY"), Some("fftw3"));

        let bad = OptionAssignment::new().with("GMX_SIMD", "AVX_9000");
        let error = deploy_source(
            &project,
            &image,
            &system,
            &bad,
            SelectionPolicy::BestAvailable,
            &store,
        )
        .unwrap_err();
        assert!(matches!(
            error,
            SourceContainerError::UnsupportedPreference { .. }
        ));
    }

    #[test]
    fn cpu_only_system_deploys_without_gpu() {
        let (project, store, image) = setup();
        let system = SystemModel::ault01_04();
        let deployment = deploy_source(
            &project,
            &image,
            &system,
            &OptionAssignment::new(),
            SelectionPolicy::BestAvailable,
            &store,
        )
        .unwrap();
        assert_eq!(deployment.assignment.get("GMX_GPU"), Some("OFF"));
        assert!(deployment.build_profile.gpu_backend.is_none());
        assert!(deployment.notes.iter().any(|n| n.contains("CPU-only")));
    }
}
