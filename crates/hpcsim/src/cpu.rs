//! CPU models: ISA families, SIMD levels, microarchitecture labels, and feature flags.
//!
//! The SIMD levels mirror the GROMACS `-DGMX_SIMD=` choices used throughout the paper
//! (Figure 2, Figure 12). Each level carries its vector width (single-precision lanes)
//! and an efficiency factor used by the performance model; the factors are calibrated so
//! that the *relative* speedups between levels track the measurements reported in the
//! paper (e.g. None → SSE2 ≈ 5×, SSE2 → AVX-512 ≈ 1.6× for the MD kernel class).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Top-level instruction-set architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IsaFamily {
    /// 64-bit x86 (Intel / AMD).
    X86_64,
    /// 64-bit ARM (Neoverse, Grace, A64FX).
    Aarch64,
    /// IBM POWER (kept for the Table 1 catalogue; no system model uses it).
    Ppc64le,
}

impl IsaFamily {
    /// Lower-case name as used in system specifications.
    pub fn as_str(&self) -> &'static str {
        match self {
            IsaFamily::X86_64 => "x86_64",
            IsaFamily::Aarch64 => "aarch64",
            IsaFamily::Ppc64le => "ppc64le",
        }
    }
}

impl fmt::Display for IsaFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// SIMD instruction-set level, named after the GROMACS configuration values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SimdLevel {
    /// Plain C reference kernels, no SIMD specialization.
    None,
    /// SSE2: 128-bit, baseline x86-64.
    Sse2,
    /// SSE4.1: 128-bit with richer integer/blend operations.
    Sse41,
    /// AVX2 with 128-bit kernels (AMD Zen 1 style) — FMA available.
    Avx2_128,
    /// AVX 256-bit.
    Avx256,
    /// AVX2 256-bit with FMA.
    Avx2_256,
    /// AVX-512 (512-bit).
    Avx512,
    /// ARM NEON / Advanced SIMD (128-bit).
    NeonAsimd,
    /// ARM Scalable Vector Extension (128-bit implementation on Grace).
    Sve,
}

impl SimdLevel {
    /// All levels applicable to an ISA family, in increasing capability order.
    pub fn levels_for(family: IsaFamily) -> &'static [SimdLevel] {
        match family {
            IsaFamily::X86_64 => &[
                SimdLevel::None,
                SimdLevel::Sse2,
                SimdLevel::Sse41,
                SimdLevel::Avx2_128,
                SimdLevel::Avx256,
                SimdLevel::Avx2_256,
                SimdLevel::Avx512,
            ],
            IsaFamily::Aarch64 => &[SimdLevel::None, SimdLevel::Sve, SimdLevel::NeonAsimd],
            IsaFamily::Ppc64le => &[SimdLevel::None],
        }
    }

    /// The ISA family this level belongs to (`None` is family-agnostic, reported as x86).
    pub fn family(&self) -> IsaFamily {
        match self {
            SimdLevel::NeonAsimd | SimdLevel::Sve => IsaFamily::Aarch64,
            _ => IsaFamily::X86_64,
        }
    }

    /// Single-precision lane count of the vector unit at this level.
    pub fn width_sp(&self) -> u32 {
        match self {
            SimdLevel::None => 1,
            SimdLevel::Sse2 | SimdLevel::Sse41 => 4,
            SimdLevel::Avx2_128 => 4,
            SimdLevel::Avx256 | SimdLevel::Avx2_256 => 8,
            SimdLevel::Avx512 => 16,
            SimdLevel::NeonAsimd => 4,
            SimdLevel::Sve => 4,
        }
    }

    /// Efficiency factor of the vector unit (captures FMA availability, port pressure,
    /// frequency licensing for wide vectors, and SVE predication overhead). Multiplied by
    /// [`SimdLevel::width_sp`] to obtain the effective speedup of vectorised code regions.
    pub fn efficiency(&self) -> f64 {
        match self {
            SimdLevel::None => 1.0,
            SimdLevel::Sse2 => 0.85,
            SimdLevel::Sse41 => 0.86,
            SimdLevel::Avx2_128 => 1.05, // FMA at 128-bit: more work per lane.
            SimdLevel::Avx256 => 0.75,
            SimdLevel::Avx2_256 => 0.82,
            SimdLevel::Avx512 => 0.55, // width-16 at reduced frequency / port limits.
            SimdLevel::NeonAsimd => 0.85,
            SimdLevel::Sve => 0.72, // 128-bit SVE with predication overhead on Grace.
        }
    }

    /// Effective speedup of perfectly vectorisable code at this level.
    pub fn effective_speedup(&self) -> f64 {
        f64::from(self.width_sp()) * self.efficiency()
    }

    /// GROMACS-style configuration value for this level (`-DGMX_SIMD=<value>`).
    pub fn gmx_name(&self) -> &'static str {
        match self {
            SimdLevel::None => "None",
            SimdLevel::Sse2 => "SSE2",
            SimdLevel::Sse41 => "SSE4.1",
            SimdLevel::Avx2_128 => "AVX2_128",
            SimdLevel::Avx256 => "AVX_256",
            SimdLevel::Avx2_256 => "AVX2_256",
            SimdLevel::Avx512 => "AVX_512",
            SimdLevel::NeonAsimd => "ARM_NEON_ASIMD",
            SimdLevel::Sve => "ARM_SVE",
        }
    }

    /// Parse a GROMACS-style name (tolerates case and `-`/`_` differences).
    pub fn parse(text: &str) -> Option<Self> {
        let norm: String = text
            .trim()
            .to_ascii_uppercase()
            .chars()
            .map(|c| if c == '-' { '_' } else { c })
            .collect();
        let norm = norm.trim_start_matches("ARM_").to_string();
        match norm.as_str() {
            "NONE" => Some(SimdLevel::None),
            "SSE2" => Some(SimdLevel::Sse2),
            "SSE4.1" | "SSE4_1" | "SSE41" => Some(SimdLevel::Sse41),
            "AVX2_128" => Some(SimdLevel::Avx2_128),
            "AVX_256" | "AVX256" => Some(SimdLevel::Avx256),
            "AVX2_256" => Some(SimdLevel::Avx2_256),
            "AVX_512" | "AVX512" | "AVX_512F" => Some(SimdLevel::Avx512),
            "NEON_ASIMD" | "NEON" | "ASIMD" => Some(SimdLevel::NeonAsimd),
            "SVE" => Some(SimdLevel::Sve),
            _ => None,
        }
    }

    /// The compiler flag that requests this level (as the IR pipeline sees it).
    pub fn compiler_flag(&self) -> &'static str {
        match self {
            SimdLevel::None => "-mno-vectorize",
            SimdLevel::Sse2 => "-msse2",
            SimdLevel::Sse41 => "-msse4.1",
            SimdLevel::Avx2_128 => "-mavx2 -mprefer-vector-width=128",
            SimdLevel::Avx256 => "-mavx",
            SimdLevel::Avx2_256 => "-mavx2",
            SimdLevel::Avx512 => "-mavx512f",
            SimdLevel::NeonAsimd => "-march=armv8-a+simd",
            SimdLevel::Sve => "-march=armv8-a+sve",
        }
    }
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.gmx_name())
    }
}

/// A CPU model: microarchitecture, core counts, supported SIMD levels and baseline
/// scalar throughput used by the performance model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Marketing name, e.g. "Intel Xeon Gold 6130".
    pub name: String,
    /// archspec-like microarchitecture label, e.g. `skylake_avx512`, `zen2`, `neoverse_v2`.
    pub microarchitecture: String,
    /// ISA family.
    pub family: IsaFamily,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Sockets per node.
    pub sockets: u32,
    /// Nominal clock in GHz.
    pub clock_ghz: f64,
    /// Highest SIMD level the hardware supports.
    pub max_simd: SimdLevel,
    /// Relative scalar throughput per core (1.0 = Skylake-era reference core).
    pub scalar_throughput: f64,
    /// Feature flag strings exposed by system discovery (`avx512f`, `sve`, …).
    pub feature_flags: Vec<String>,
}

impl CpuModel {
    /// Total cores in the node.
    pub fn total_cores(&self) -> u32 {
        self.cores_per_socket * self.sockets
    }

    /// Whether the CPU can execute code built for `level`.
    pub fn supports(&self, level: SimdLevel) -> bool {
        if level == SimdLevel::None {
            return true;
        }
        if level.family() != self.family {
            return false;
        }
        let order = SimdLevel::levels_for(self.family);
        let pos_of = |l: SimdLevel| order.iter().position(|&x| x == l);
        match (pos_of(level), pos_of(self.max_simd)) {
            (Some(a), Some(b)) => a <= b,
            _ => false,
        }
    }

    /// All SIMD levels this CPU supports, lowest to highest.
    pub fn supported_simd_levels(&self) -> Vec<SimdLevel> {
        SimdLevel::levels_for(self.family)
            .iter()
            .copied()
            .filter(|&l| self.supports(l))
            .collect()
    }

    /// The best (highest) supported SIMD level.
    pub fn best_simd(&self) -> SimdLevel {
        self.max_simd
    }

    /// Thread scaling factor: parallel efficiency for `threads` over the node.
    /// Uses a simple saturating model with a 4% per-doubling overhead and no gain past
    /// the physical core count.
    pub fn thread_scaling(&self, threads: u32) -> f64 {
        let usable = threads.clamp(1, self.total_cores());
        let doublings = (f64::from(usable)).log2();
        f64::from(usable) * (1.0 - 0.04 * doublings).max(0.5)
    }

    /// Intel Xeon Gold 6130 (Skylake, Ault23 / Ault01-04 host CPU in the paper).
    pub fn intel_xeon_gold_6130() -> Self {
        Self {
            name: "Intel Xeon Gold 6130".into(),
            microarchitecture: "skylake_avx512".into(),
            family: IsaFamily::X86_64,
            cores_per_socket: 16,
            sockets: 2,
            clock_ghz: 2.1,
            max_simd: SimdLevel::Avx512,
            scalar_throughput: 1.0,
            feature_flags: vec![
                "sse2".into(),
                "sse4_1".into(),
                "avx".into(),
                "avx2".into(),
                "avx512f".into(),
                "fma".into(),
            ],
        }
    }

    /// Intel Xeon Gold 6154 (Skylake, Ault01-04).
    pub fn intel_xeon_gold_6154() -> Self {
        Self {
            name: "Intel Xeon Gold 6154".into(),
            microarchitecture: "skylake_avx512".into(),
            cores_per_socket: 18,
            ..Self::intel_xeon_gold_6130()
        }
    }

    /// AMD EPYC 7742 (Rome / zen2, Ault25). No AVX-512.
    pub fn amd_epyc_7742() -> Self {
        Self {
            name: "AMD EPYC 7742".into(),
            microarchitecture: "zen2".into(),
            family: IsaFamily::X86_64,
            cores_per_socket: 64,
            sockets: 2,
            clock_ghz: 2.25,
            max_simd: SimdLevel::Avx2_256,
            scalar_throughput: 1.05,
            feature_flags: vec![
                "sse2".into(),
                "sse4_1".into(),
                "avx".into(),
                "avx2".into(),
                "fma".into(),
            ],
        }
    }

    /// NVIDIA Grace (GH200 CPU side, Clariden).
    pub fn nvidia_grace() -> Self {
        Self {
            name: "NVIDIA Grace (GH200)".into(),
            microarchitecture: "neoverse_v2".into(),
            family: IsaFamily::Aarch64,
            cores_per_socket: 72,
            sockets: 1,
            clock_ghz: 3.1,
            max_simd: SimdLevel::NeonAsimd,
            scalar_throughput: 1.35,
            feature_flags: vec!["asimd".into(), "neon".into(), "sve".into()],
        }
    }

    /// Intel Xeon CPU Max 9470 (Sapphire Rapids + HBM, Aurora).
    pub fn intel_xeon_max() -> Self {
        Self {
            name: "Intel Xeon CPU Max 9470".into(),
            microarchitecture: "sapphirerapids".into(),
            family: IsaFamily::X86_64,
            cores_per_socket: 52,
            sockets: 2,
            clock_ghz: 2.0,
            max_simd: SimdLevel::Avx512,
            scalar_throughput: 1.25,
            feature_flags: vec![
                "sse2".into(),
                "sse4_1".into(),
                "avx".into(),
                "avx2".into(),
                "avx512f".into(),
                "amx".into(),
                "fma".into(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_levels_for_x86_are_ordered_by_capability() {
        let levels = SimdLevel::levels_for(IsaFamily::X86_64);
        assert_eq!(levels.first(), Some(&SimdLevel::None));
        assert_eq!(levels.last(), Some(&SimdLevel::Avx512));
        // Effective speedups must be monotonically non-decreasing from SSE2 upward,
        // except AVX2_128 which trades width for FMA (kept between SSE and AVX_256).
        assert!(SimdLevel::Avx512.effective_speedup() > SimdLevel::Avx2_256.effective_speedup());
        assert!(SimdLevel::Avx2_256.effective_speedup() > SimdLevel::Sse2.effective_speedup());
    }

    #[test]
    fn simd_parse_accepts_gromacs_names() {
        assert_eq!(SimdLevel::parse("AVX_512"), Some(SimdLevel::Avx512));
        assert_eq!(SimdLevel::parse("avx-512"), Some(SimdLevel::Avx512));
        assert_eq!(SimdLevel::parse("SSE4.1"), Some(SimdLevel::Sse41));
        assert_eq!(
            SimdLevel::parse("ARM_NEON_ASIMD"),
            Some(SimdLevel::NeonAsimd)
        );
        assert_eq!(SimdLevel::parse("ARM_SVE"), Some(SimdLevel::Sve));
        assert_eq!(SimdLevel::parse("None"), Some(SimdLevel::None));
        assert_eq!(SimdLevel::parse("MMX"), None);
    }

    #[test]
    fn parse_roundtrips_gmx_names() {
        for family in [IsaFamily::X86_64, IsaFamily::Aarch64] {
            for &level in SimdLevel::levels_for(family) {
                assert_eq!(SimdLevel::parse(level.gmx_name()), Some(level), "{level}");
            }
        }
    }

    #[test]
    fn xeon_6130_supports_up_to_avx512() {
        let cpu = CpuModel::intel_xeon_gold_6130();
        assert!(cpu.supports(SimdLevel::Sse2));
        assert!(cpu.supports(SimdLevel::Avx512));
        assert!(!cpu.supports(SimdLevel::NeonAsimd));
        assert_eq!(cpu.total_cores(), 32);
        assert_eq!(cpu.best_simd(), SimdLevel::Avx512);
    }

    #[test]
    fn epyc_7742_lacks_avx512() {
        let cpu = CpuModel::amd_epyc_7742();
        assert!(cpu.supports(SimdLevel::Avx2_256));
        assert!(!cpu.supports(SimdLevel::Avx512));
        assert_eq!(
            cpu.supported_simd_levels().last().copied(),
            Some(SimdLevel::Avx2_256)
        );
    }

    #[test]
    fn grace_supports_arm_levels_only() {
        let cpu = CpuModel::nvidia_grace();
        assert!(cpu.supports(SimdLevel::NeonAsimd));
        assert!(cpu.supports(SimdLevel::Sve));
        assert!(!cpu.supports(SimdLevel::Avx2_256));
        assert!(cpu.supports(SimdLevel::None));
    }

    #[test]
    fn thread_scaling_is_monotonic_and_saturates() {
        let cpu = CpuModel::intel_xeon_gold_6130();
        let s1 = cpu.thread_scaling(1);
        let s16 = cpu.thread_scaling(16);
        let s32 = cpu.thread_scaling(32);
        let s64 = cpu.thread_scaling(64);
        assert!(s1 <= s16 && s16 <= s32);
        assert_eq!(s32, s64, "scaling saturates at the physical core count");
        assert!((s1 - 1.0).abs() < 1e-9);
        assert!(
            s16 > 10.0 && s16 < 16.0,
            "16 threads give between 10x and 16x: {s16}"
        );
    }

    #[test]
    fn simd_efficiency_declines_with_width_on_x86_wide_vectors() {
        assert!(SimdLevel::Avx512.efficiency() < SimdLevel::Avx2_256.efficiency());
        assert!(SimdLevel::Avx2_256.efficiency() < SimdLevel::Sse2.efficiency().max(0.86));
    }

    #[test]
    fn compiler_flags_are_distinct_per_level() {
        use std::collections::BTreeSet;
        let flags: BTreeSet<_> = SimdLevel::levels_for(IsaFamily::X86_64)
            .iter()
            .map(|l| l.compiler_flag())
            .collect();
        assert_eq!(flags.len(), SimdLevel::levels_for(IsaFamily::X86_64).len());
    }
}
