//! XaaS IR containers: the deduplicating build pipeline of Figure 7.
//!
//! The pipeline sweeps the requested specialization points, configures each combination
//! in a pinned (containerised) build directory, and then decides which translation units
//! genuinely differ between configurations:
//!
//! 1. **Generation** — exact compile-command identity (after normalising the build
//!    directory out of include paths);
//! 2. **Preprocessing** — hash of the preprocessed source: definitions that do not change
//!    the token stream do not create new units;
//! 3. **OpenMP detection** — units that differ only in `-fopenmp` collapse when the file
//!    contains no OpenMP constructs (AST check);
//! 4. **Vectorization delay** — ISA/tuning flags are dropped from the identity and applied
//!    only at deployment.
//!
//! MPI-dependent files are *system-dependent* (`S_D`, Definition 2) and are shipped as
//! source instead of IR. Everything else (`S_I`) is compiled once per unique identity and
//! stored as XIR bitcode in the image.

use crate::engine::{
    add_commit_action, ActionGraph, ActionId, ActionKind, ActionTrace, Engine, KeyedActionPlanner,
    LinkSlot, PreprocessPlanner,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use xaas_buildsys::{configure, ConfigureError, OptionAssignment, ProjectSpec};
use xaas_container::{
    annotation_keys, ActionCache, Architecture, BuildKey, DeploymentFormat, Image, ImageStore,
    Layer, Platform,
};
use xaas_specs::from_project;
use xaas_xir::{bitcode, CompileFlags, Compiler, IrModule};

pub use crate::engine::ActionSummary;

/// Toolchain identifier pinned into every [`BuildKey`] the pipeline derives. A toolchain
/// upgrade must change this constant so stale cache entries can never be served.
pub const TOOLCHAIN_ID: &str = "xirc-19/xir.v1";

/// The pseudo-target used in build keys while producing target-*independent* IR (the
/// concrete ISA name is used only for deployment-time lowering).
pub const IR_TARGET: &str = "xir.ir";

/// Which stages of the dedup pipeline are enabled (all on by default; the ablation
/// benchmarks switch individual stages off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStages {
    /// Normalise the build directory out of compile commands.
    pub normalize_build_dir: bool,
    /// Deduplicate on preprocessed content hashes.
    pub preprocessing: bool,
    /// Collapse `-fopenmp`-only differences for OpenMP-free files.
    pub openmp_detection: bool,
    /// Drop ISA/tuning flags from the identity (vectorization delay).
    pub vectorization_delay: bool,
}

impl Default for PipelineStages {
    fn default() -> Self {
        Self {
            normalize_build_dir: true,
            preprocessing: true,
            openmp_detection: true,
            vectorization_delay: true,
        }
    }
}

/// Configuration of an IR-container build.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrPipelineConfig {
    /// The specialization points to sweep: option name → values to enumerate. Options not
    /// listed stay at their defaults.
    pub sweep: Vec<(String, Vec<String>)>,
    /// The pinned build directory mounted identically in every configuration container.
    pub build_dir: String,
    /// Stage switches.
    pub stages: PipelineStages,
    /// Apply aggressive scalar optimisation *before* storing IR (the harmful early
    /// optimisation the paper warns about; off by default, used by the ablation bench).
    pub optimize_early: bool,
}

impl IrPipelineConfig {
    /// Sweep the given options with all their values.
    pub fn sweep_options(project: &ProjectSpec, options: &[&str]) -> Self {
        let sweep = options
            .iter()
            .filter_map(|name| {
                project
                    .option(name)
                    .map(|o| (o.name.clone(), o.value_names()))
            })
            .collect();
        Self {
            sweep,
            build_dir: "/xaas/build".to_string(),
            stages: PipelineStages::default(),
            optimize_early: false,
        }
    }

    /// Restrict an option to a subset of values.
    pub fn with_values(mut self, option: &str, values: &[&str]) -> Self {
        for entry in &mut self.sweep {
            if entry.0 == option {
                entry.1 = values.iter().map(|v| v.to_string()).collect();
            }
        }
        self
    }
}

/// Counters describing the deduplication result (the Section 6.4 statistics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Number of build configurations generated.
    pub configurations: usize,
    /// Translation units summed over all configurations (ΣTᵢ of Hypothesis 1).
    pub total_translation_units: usize,
    /// Unique units after stage 1 (exact command identity).
    pub unique_after_generation: usize,
    /// Unique units after stage 2 (preprocessed-content identity).
    pub unique_after_preprocessing: usize,
    /// Unique units after stage 3 (OpenMP-irrelevance merging).
    pub unique_after_openmp: usize,
    /// Unique units after stage 4 (vectorization delay) — the IR files actually built (T′).
    pub unique_after_vectorization: usize,
    /// System-dependent translation units shipped as source (S_D occurrences).
    pub system_dependent_units: usize,
    /// Distinct system-dependent source files.
    pub system_dependent_files: usize,
    /// Distinct system-independent source files.
    pub system_independent_files: usize,
}

impl PipelineStats {
    /// The final number of IR files built.
    pub fn ir_files_built(&self) -> usize {
        self.unique_after_vectorization
    }

    /// Reduction relative to building every configuration separately, in percent.
    pub fn reduction_percent(&self) -> f64 {
        if self.total_translation_units == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.ir_files_built() as f64 / self.total_translation_units as f64)
    }

    /// Fraction of unit pairs whose flags were incompatible before normalisation — the
    /// paper reports 96% caused by build-directory include paths.
    pub fn generation_share(&self) -> f64 {
        if self.total_translation_units == 0 {
            return 0.0;
        }
        self.unique_after_generation as f64 / self.total_translation_units as f64
    }
}

/// The identity of one translation unit inside one configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitAssignment {
    /// Target the unit belongs to.
    pub target: String,
    /// Source file path.
    pub file: String,
    /// Either `ir:<content-id>` (system-independent) or `src:<path>` (system-dependent,
    /// compiled at deployment).
    pub artifact: String,
}

/// One build configuration's manifest stored inside the IR container.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigurationManifest {
    /// Stable label (sorted `option=value` list).
    pub label: String,
    /// The option assignment.
    pub assignment: OptionAssignment,
    /// The configure command that reproduces the configuration.
    pub configure_command: String,
    /// Global definitions of the configuration.
    pub definitions: Vec<String>,
    /// Dependencies (container layers) the configuration needs at deployment.
    pub dependencies: Vec<String>,
    /// Per-unit artifacts.
    pub units: Vec<UnitAssignment>,
    /// Non-target compile flags of the configuration (optimisation level, OpenMP, …)
    /// that deployment-time compiles of system-dependent sources must honor.
    pub compile_flags: Vec<String>,
    /// ISA/tuning flags that were delayed and must be applied at deployment.
    pub delayed_flags: Vec<String>,
}

/// A deduplicated IR unit stored in the container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrUnit {
    /// Content identity (hex of the bitcode hash).
    pub id: String,
    /// Source file the unit was produced from.
    pub source_file: String,
    /// Whether `-fopenmp` was in effect when producing this unit.
    pub openmp: bool,
    /// The IR module.
    pub module: IrModule,
}

/// The result of building an IR container.
#[derive(Debug, Clone)]
pub struct IrContainerBuild {
    /// The committed image.
    pub image: Image,
    /// Reference the image was committed under.
    pub reference: String,
    /// Dedup statistics.
    pub stats: PipelineStats,
    /// Per-configuration manifests.
    pub manifests: Vec<ConfigurationManifest>,
    /// The deduplicated IR units keyed by content id.
    pub units: BTreeMap<String, IrUnit>,
    /// Compile actions executed vs served from the action cache during this build.
    pub actions: ActionSummary,
    /// The full, deterministic action trace of the build (preprocess through commit).
    pub trace: ActionTrace,
}

impl IrContainerBuild {
    /// Find a configuration manifest by assignment.
    pub fn manifest_for(&self, assignment: &OptionAssignment) -> Option<&ConfigurationManifest> {
        let label = assignment.label();
        self.manifests
            .iter()
            .find(|m| m.label == label)
            .or_else(|| {
                self.manifests.iter().find(|m| {
                    assignment
                        .iter()
                        .all(|(k, v)| m.assignment.get(k) == Some(v))
                })
            })
    }
}

/// Errors from the IR pipeline.
#[derive(Debug)]
#[allow(missing_docs)] // variant payload fields are documented by the Display impl
pub enum IrPipelineError {
    /// A configuration could not be generated.
    Configure(ConfigureError),
    /// Compilation of a representative unit failed.
    Compile {
        file: String,
        error: xaas_xir::CompileError,
    },
    /// The sweep referenced an unknown option.
    UnknownOption(String),
    /// A target (or the generated compile database) references a source file the
    /// project does not provide — neither as a source spec nor as a custom-target
    /// product (a malformed project).
    UnknownSource { file: String },
    /// A cached artifact failed to decode (action-cache corruption).
    Cache(String),
    /// The orchestrator's scheduling policy is invalid (e.g. a zero concurrency cap).
    Policy(crate::engine::PolicyError),
    /// The pre-submission static analyzer rejected the build graph (deny-level
    /// diagnostics under [`AnalysisMode::Strict`](crate::engine::AnalysisMode));
    /// nothing executed.
    Analysis(Box<crate::engine::AnalysisReport>),
    /// The executor broke its scheduling contract (a node skipped without a
    /// failure, or cancelled mid-run) — not a pipeline error.
    Engine(crate::engine::GraphFault),
}

impl fmt::Display for IrPipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrPipelineError::Configure(e) => write!(f, "configure: {e}"),
            IrPipelineError::Compile { file, error } => write!(f, "compiling {file}: {error}"),
            IrPipelineError::UnknownOption(name) => {
                write!(f, "sweep references unknown option {name}")
            }
            IrPipelineError::UnknownSource { file } => {
                write!(
                    f,
                    "compile database references {file}, which is not an enabled source"
                )
            }
            IrPipelineError::Cache(detail) => write!(f, "action cache: {detail}"),
            IrPipelineError::Policy(error) => write!(f, "{error}"),
            IrPipelineError::Analysis(report) => write!(f, "graph rejected by analysis: {report}"),
            IrPipelineError::Engine(fault) => write!(f, "executor fault: {fault}"),
        }
    }
}

impl std::error::Error for IrPipelineError {}

impl From<ConfigureError> for IrPipelineError {
    fn from(value: ConfigureError) -> Self {
        IrPipelineError::Configure(value)
    }
}

impl From<crate::engine::GraphRunError<IrPipelineError>> for IrPipelineError {
    fn from(value: crate::engine::GraphRunError<IrPipelineError>) -> Self {
        match value.into_action() {
            Ok(error) => error,
            Err(fault) => IrPipelineError::Engine(fault),
        }
    }
}

impl From<Box<crate::engine::AnalysisReport>> for IrPipelineError {
    fn from(value: Box<crate::engine::AnalysisReport>) -> Self {
        IrPipelineError::Analysis(value)
    }
}

/// Paths used inside IR containers.
pub mod paths {
    /// Root of the IR blobs.
    pub const IR_ROOT: &str = "/xaas/ir";
    /// Root of the per-configuration manifests.
    pub const CONFIG_ROOT: &str = "/xaas/configs";
    /// Source tree (needed for system-dependent files and installation).
    pub const SOURCE_ROOT: &str = "/xaas/src";
    /// Pipeline statistics document.
    pub const STATS: &str = "/xaas/stats.json";
}

/// Enumerate the cartesian product of the sweep.
fn enumerate_assignments(
    project: &ProjectSpec,
    config: &IrPipelineConfig,
) -> Result<Vec<OptionAssignment>, IrPipelineError> {
    let mut assignments = vec![OptionAssignment::new()];
    for (name, values) in &config.sweep {
        if project.option(name).is_none() {
            return Err(IrPipelineError::UnknownOption(name.clone()));
        }
        let mut next = Vec::with_capacity(assignments.len() * values.len());
        for assignment in &assignments {
            for value in values {
                next.push(assignment.clone().with(name.clone(), value.clone()));
            }
        }
        assignments = next;
    }
    Ok(assignments)
}

/// Build an IR container for `project`, sweeping the configured specialization points,
/// over an uncached ([`NoCache`](xaas_container::NoCache)-backed) orchestrator —
/// every compile action runs.
#[deprecated(
    since = "0.2.0",
    note = "use xaas::orchestrator::IrBuildRequest with Orchestrator::uncached(store)"
)]
pub fn build_ir_container(
    project: &ProjectSpec,
    config: &IrPipelineConfig,
    store: &ImageStore,
    reference: &str,
) -> Result<IrContainerBuild, IrPipelineError> {
    crate::orchestrator::IrBuildRequest::new(project, config)
        .reference(reference)
        .submit(&crate::orchestrator::Orchestrator::uncached(store))
}

/// Build an IR container, routing every compile action through `cache`.
#[deprecated(
    since = "0.2.0",
    note = "use xaas::orchestrator::IrBuildRequest with Orchestrator::with_cache(cache)"
)]
pub fn build_ir_container_cached(
    project: &ProjectSpec,
    config: &IrPipelineConfig,
    cache: &ActionCache,
    reference: &str,
) -> Result<IrContainerBuild, IrPipelineError> {
    crate::orchestrator::IrBuildRequest::new(project, config)
        .reference(reference)
        .submit(&crate::orchestrator::Orchestrator::with_cache(cache))
}

/// One system-independent translation-unit occurrence discovered during configuration
/// (the driver's plan entry between the configure stage and the preprocess stage).
struct TuOccurrence {
    config_index: usize,
    target: String,
    file: String,
    /// Source text, shared per file across configurations (copied once per file).
    content: std::sync::Arc<str>,
    flags: CompileFlags,
    generation_key: String,
    /// Index of this unit's preprocess action in the stage-A graph.
    preprocess_action: ActionId,
    /// Index of this unit's OpenMP-detection action, when one was scheduled.
    openmp_action: Option<ActionId>,
}

/// Build an IR container through an explicitly configured `engine`.
#[deprecated(
    since = "0.2.0",
    note = "use xaas::orchestrator::IrBuildRequest with Orchestrator::from_engine(engine)"
)]
pub fn build_ir_container_with(
    project: &ProjectSpec,
    config: &IrPipelineConfig,
    engine: &Engine,
    reference: &str,
) -> Result<IrContainerBuild, IrPipelineError> {
    crate::orchestrator::IrBuildRequest::new(project, config)
        .reference(reference)
        .submit(&crate::orchestrator::Orchestrator::from_engine(
            engine.clone(),
        ))
}

/// Every source path the project can legitimately compile: declared sources plus
/// custom-target products. A target referencing anything else is malformed — the
/// drivers surface it as a typed `UnknownSource` error instead of silently skipping
/// the unit.
pub(crate) fn unknown_target_source(project: &ProjectSpec) -> Option<String> {
    let known: BTreeSet<&str> = project
        .sources
        .iter()
        .map(|s| s.path.as_str())
        .chain(project.custom_targets.iter().map(|c| c.generates.as_str()))
        .collect();
    project
        .targets
        .iter()
        .flat_map(|target| &target.sources)
        .find(|path| !known.contains(path.as_str()))
        .cloned()
}

/// One (target, source file, dedup key) triple per translation unit of a
/// configuration.
type UnitKeys = Vec<(String, String, String)>;

/// The serial stage-1 plan: the stage-A action graph (preprocess + OpenMP
/// detection, deduplicated across configurations) plus the bookkeeping the
/// later serial stages fold over. Building it runs no actions — this is the
/// graph [`analyze_ir_build`] lints without executing anything.
pub(crate) struct IrBuildStageA<'env> {
    pub(crate) graph: ActionGraph<'env, IrPipelineError>,
    stats: PipelineStats,
    manifests: Vec<ConfigurationManifest>,
    sd_files: BTreeSet<String>,
    si_files: BTreeSet<String>,
    unit_key_by_config: Vec<UnitKeys>,
    occurrences: Vec<TuOccurrence>,
}

/// The compiler every stage-A/B action closes over (project headers loaded).
pub(crate) fn ir_build_compiler(project: &ProjectSpec) -> Compiler {
    let mut compiler = Compiler::new();
    for (name, content) in &project.headers {
        compiler.add_header(name.clone(), content.clone());
    }
    compiler
}

/// Stage 1 (driver, serial): configure every assignment, classify its units,
/// and plan the deduplicated stage-A graph. `compiler` must outlive the graph —
/// the planned preprocess/OpenMP actions borrow it.
pub(crate) fn plan_ir_build_stage_a<'env>(
    project: &ProjectSpec,
    config: &IrPipelineConfig,
    compiler: &'env Compiler,
) -> Result<IrBuildStageA<'env>, IrPipelineError> {
    if let Some(file) = unknown_target_source(project) {
        return Err(IrPipelineError::UnknownSource { file });
    }
    let assignments = enumerate_assignments(project, config)?;

    let mut stats = PipelineStats {
        configurations: assignments.len(),
        ..Default::default()
    };
    let mut manifests: Vec<ConfigurationManifest> = Vec::new();
    let mut sd_files: BTreeSet<String> = BTreeSet::new();
    let mut si_files: BTreeSet<String> = BTreeSet::new();
    let mut unit_key_by_config: Vec<UnitKeys> = Vec::new();
    let mut occurrences: Vec<TuOccurrence> = Vec::new();
    // Source text shared per file: every configuration re-lists the same content.
    let mut content_by_file: BTreeMap<String, std::sync::Arc<str>> = BTreeMap::new();

    let mut stage_a: ActionGraph<'env, IrPipelineError> = ActionGraph::new();
    // Preprocessing and OpenMP detection depend only on (file, definition set):
    // deduplicate the actions across configurations so the graph does each distinct
    // piece of work once.
    let mut preprocess = PreprocessPlanner::new();
    let mut openmp_actions: BTreeMap<(String, String), ActionId> = BTreeMap::new();
    for (config_index, assignment) in assignments.iter().enumerate() {
        let build = configure(project, assignment, &config.build_dir, None)?;
        let mut per_config_units: UnitKeys = Vec::new();
        for command in &build.compile_db.commands {
            stats.total_translation_units += 1;
            let source = build
                .enabled_sources
                .iter()
                .find(|s| s.path == command.file)
                .ok_or_else(|| IrPipelineError::UnknownSource {
                    file: command.file.clone(),
                })?;
            let is_system_dependent = source.required_tags.iter().any(|t| t == "mpi");
            if is_system_dependent {
                stats.system_dependent_units += 1;
                sd_files.insert(source.path.clone());
                per_config_units.push((
                    command.target.clone(),
                    command.file.clone(),
                    format!("src:{}", command.file),
                ));
                continue;
            }
            si_files.insert(source.path.clone());
            let content = content_by_file
                .entry(source.path.clone())
                .or_insert_with(|| std::sync::Arc::from(source.content.as_str()))
                .clone();

            let flags = command.flags();
            let generation_key = command.canonical_key(config.stages.normalize_build_dir);
            let dedup_key = PreprocessPlanner::identity(&command.file, &flags);

            let preprocess_action = preprocess.action_for(
                &mut stage_a,
                compiler,
                &command.file,
                &content,
                &flags,
                |file, error| IrPipelineError::Compile { file, error },
            );
            // OpenMP detection only matters for units carrying `-fopenmp`: units
            // without it can never have OpenMP in effect, whatever the AST says.
            let openmp_action = if config.stages.openmp_detection && flags.openmp {
                Some(match openmp_actions.get(&dedup_key) {
                    Some(&id) => id,
                    None => {
                        let file = command.file.clone();
                        let content = content.clone();
                        let flags = flags.clone();
                        let id = stage_a.add(
                            ActionKind::OpenMpDetect,
                            command.file.clone(),
                            &[],
                            move |_| {
                                // Analysis failures conservatively keep OpenMP in the
                                // identity (matching the historical behaviour).
                                let matters = compiler
                                    .openmp_report(&file, &content, &flags)
                                    .map(|r| r.uses_openmp())
                                    .unwrap_or(true);
                                Ok(vec![u8::from(matters)])
                            },
                        );
                        openmp_actions.insert(dedup_key, id);
                        id
                    }
                })
            } else {
                None
            };
            occurrences.push(TuOccurrence {
                config_index,
                target: command.target.clone(),
                file: command.file.clone(),
                content,
                flags,
                generation_key,
                preprocess_action,
                openmp_action,
            });
        }
        unit_key_by_config.push(per_config_units);
        let mut common_flags: Vec<String> = project.global_flags.clone();
        common_flags.extend(build.compile_flags.iter().cloned());
        let (delayed_flags, compile_flags): (Vec<String>, Vec<String>) =
            common_flags.into_iter().partition(|f| f.starts_with("-m"));
        manifests.push(ConfigurationManifest {
            label: build.assignment.label(),
            assignment: build.assignment.clone(),
            configure_command: build.configure_command.clone(),
            definitions: build.definitions.clone(),
            dependencies: build.dependencies.clone(),
            units: Vec::new(),
            compile_flags,
            delayed_flags,
        });
    }

    Ok(IrBuildStageA {
        graph: stage_a,
        stats,
        manifests,
        sd_files,
        si_files,
        unit_key_by_config,
        occurrences,
    })
}

/// Run the pre-submission static analyzer over the build's stage-A graph
/// (preprocess + OpenMP detection) without executing anything. The stage-B
/// graph (ir-lower/link/commit) is derived from stage-A *outputs*, so it
/// cannot be constructed statically; its shape is a planner-generated
/// fan-in the same passes vet on submission.
pub(crate) fn analyze_ir_build(
    project: &ProjectSpec,
    config: &IrPipelineConfig,
    engine: &Engine,
) -> Result<crate::engine::AnalysisReport, IrPipelineError> {
    let compiler = ir_build_compiler(project);
    let planned = plan_ir_build_stage_a(project, config, &compiler)?;
    Ok(engine.analyze(&planned.graph))
}

/// Build an IR container by constructing staged action graphs and submitting them to
/// `engine` (the driver behind
/// [`IrBuildRequest`](crate::orchestrator::IrBuildRequest)).
///
/// The build runs as an explicit pipeline over the engine's worker pool:
///
/// 1. **configure** (driver, serial — cheap): enumerate the sweep, emit compile DBs,
///    split system-dependent from system-independent units;
/// 2. **preprocess + openmp-detect** (graph A, parallel): one deduplicated action per
///    distinct (file, definitions) pair;
/// 3. **ir-lower** (graph B, parallel, cache-routed): one action per deduplicated
///    translation unit, keyed by the preprocessed-content digest;
/// 4. **link + commit** (graph B tail): assemble the image layers from the lowered
///    units and commit it to the engine's store.
///
/// The resulting image is byte-identical for any worker count, scheduling policy,
/// and whether actions hit or miss the cache; only
/// [`IrContainerBuild::actions`]/[`IrContainerBuild::trace`] differ in their
/// `cached` flags.
pub(crate) fn run_ir_build(
    project: &ProjectSpec,
    config: &IrPipelineConfig,
    engine: &Engine,
    reference: &str,
) -> Result<IrContainerBuild, IrPipelineError> {
    let compiler = ir_build_compiler(project);
    // ---- Stage 1 (driver, serial): configure and plan the stage-A graph ----
    let IrBuildStageA {
        graph: stage_a,
        mut stats,
        manifests,
        sd_files,
        si_files,
        mut unit_key_by_config,
        occurrences,
    } = plan_ir_build_stage_a(project, config, &compiler)?;
    let _ = (&sd_files, &si_files);

    // ---- Stage 2+3 (graph A): preprocess and OpenMP-detect, in parallel ----
    engine.preflight(&stage_a)?;
    let run_a = engine.run(stage_a);
    let (outputs_a, mut trace) = run_a.into_outputs()?;
    let digest_of =
        |id: ActionId| -> String { String::from_utf8_lossy(&outputs_a[id]).into_owned() };
    let matters_of = |id: ActionId| -> bool { outputs_a[id].first().copied().unwrap_or(1) != 0 };

    // ---- Stage 4 (driver, serial): derive the dedup identities of Figure 7 ----
    let mut generation_keys: BTreeSet<String> = BTreeSet::new();
    let mut preprocessing_keys: BTreeSet<String> = BTreeSet::new();
    let mut openmp_keys: BTreeSet<String> = BTreeSet::new();
    // Key → (file, source content, flags, preprocessed-content digest) of the
    // representative unit. The digest is what the action-cache key is derived from.
    let mut final_keys: BTreeMap<String, (String, std::sync::Arc<str>, CompileFlags, String)> =
        BTreeMap::new();
    for occurrence in &occurrences {
        let TuOccurrence {
            config_index,
            target,
            file,
            content,
            flags,
            generation_key,
            preprocess_action,
            openmp_action,
        } = occurrence;
        let digest = digest_of(*preprocess_action);
        let delayed = flags.delayed_target_flags.join(" ");
        generation_keys.insert(format!("{file}|{generation_key}"));

        // Stage 2: preprocessed-content identity.
        let preprocess_key = format!(
            "{file}|{digest}|omp={}|opt={}|isa={delayed}",
            flags.openmp,
            flags.opt_level().as_str(),
        );
        let stage2_key = if config.stages.preprocessing {
            preprocess_key.clone()
        } else {
            format!("{file}|{generation_key}")
        };
        preprocessing_keys.insert(stage2_key.clone());

        // Stage 3: OpenMP-irrelevance merging.
        let effective_openmp = flags.openmp && openmp_action.map(&matters_of).unwrap_or(true);
        let stage3_key = if config.stages.openmp_detection {
            format!(
                "{file}|{digest}|omp={effective_openmp}|opt={}|isa={delayed}",
                flags.opt_level().as_str(),
            )
        } else {
            stage2_key.clone()
        };
        openmp_keys.insert(stage3_key.clone());

        // Stage 4: vectorization delay — drop the ISA flags from the identity.
        let stage4_key = if config.stages.vectorization_delay {
            format!(
                "{file}|{digest}|omp={effective_openmp}|opt={}",
                flags.opt_level().as_str(),
            )
        } else {
            stage3_key.clone()
        };
        final_keys
            .entry(stage4_key.clone())
            .or_insert_with(|| (file.clone(), content.clone(), flags.clone(), digest));
        unit_key_by_config[*config_index].push((target.clone(), file.clone(), stage4_key));
    }

    stats.unique_after_generation = generation_keys.len();
    stats.unique_after_preprocessing = preprocessing_keys.len();
    stats.unique_after_openmp = openmp_keys.len();
    stats.unique_after_vectorization = final_keys.len();
    stats.system_dependent_files = sd_files.len();
    stats.system_independent_files = si_files.len();

    // ---- Stage 5 (graph B): ir-lower per deduplicated unit, then link + commit ----
    // Compile one representative per final key into IR, memoizing each action in the
    // content-addressed cache: the key is derived from the preprocessed-content digest
    // and the IR-relevant flags, so a warm cache skips the compile entirely while
    // producing bit-identical bitcode.
    // Declared before the graph: the graph's closures borrow these, so they must
    // outlive it (drop order is reverse declaration order).
    struct Assembled {
        image: Image,
        units: BTreeMap<String, IrUnit>,
        manifests: Vec<ConfigurationManifest>,
    }
    let assembled: LinkSlot<Assembled> = LinkSlot::new();
    // Position (within the planned lower actions) of the action producing each
    // ordered key's bitcode. Distinct stage-4 keys normally map to distinct
    // BuildKeys, but the graph contract is one node per key, so identical BuildKeys
    // share one action (the KeyedActionPlanner enforces this).
    let mut key_positions: Vec<usize> = Vec::with_capacity(final_keys.len());
    let ordered_keys: Vec<&String> = final_keys.keys().collect();
    let mut stage_b: ActionGraph<'_, IrPipelineError> = ActionGraph::new();
    let mut lower_plan = KeyedActionPlanner::new();
    for (file, content, flags, tu_digest) in final_keys.values() {
        // The IR is compiled without the delayed ISA flags; OpenMP stays as classified.
        let ir_flags = flags.without_delayed_target_flags();
        let build_key = BuildKey::new(
            tu_digest.clone(),
            IR_TARGET,
            format!(
                "file={file};{};early_opt={}",
                ir_flags.ir_relevant_key(),
                config.optimize_early
            ),
            TOOLCHAIN_ID,
        );
        let compiler = &compiler;
        let optimize_early = config.optimize_early;
        let position = lower_plan.position_for(&mut stage_b, build_key, |graph, key| {
            graph.add_cached(ActionKind::IrLower, file.clone(), key, &[], move |_| {
                let mut module =
                    compiler
                        .compile_to_ir(file, content, &ir_flags)
                        .map_err(|error| IrPipelineError::Compile {
                            file: file.clone(),
                            error,
                        })?;
                if optimize_early {
                    xaas_xir::passes::scalar_unroll(&mut module, 4);
                }
                Ok(bitcode::encode(&module))
            })
        });
        key_positions.push(position);
    }
    let lower_actions = lower_plan.into_actions();

    // Link: decode the lowered units, resolve manifests, and assemble the image. The
    // assembled pieces travel to the driver through the `assembled` slot (they are
    // typed, not bytes).
    let link_action = {
        let assembled = &assembled;
        let ordered_keys = &ordered_keys;
        let key_positions = &key_positions;
        let final_keys = &final_keys;
        let stats = &stats;
        stage_b.add(
            ActionKind::Link,
            format!("{reference} image"),
            &lower_actions,
            move |inputs| {
                let mut manifests = manifests;
                let mut units: BTreeMap<String, IrUnit> = BTreeMap::new();
                // id → the producing action's output: the lower actions emit exactly
                // `bitcode::encode(&module)`, so the IR layer below reuses those bytes
                // instead of re-encoding every deduplicated unit.
                let mut unit_bytes: BTreeMap<String, &xaas_container::Blob> = BTreeMap::new();
                let mut key_to_id: BTreeMap<String, String> = BTreeMap::new();
                for (index, key) in ordered_keys.iter().enumerate() {
                    let (file, ..) = &final_keys[*key];
                    let module = bitcode::decode(inputs.dep(key_positions[index]))
                        .map_err(|e| IrPipelineError::Cache(format!("bitcode for {file}: {e}")))?;
                    let id = bitcode::content_id(&module);
                    key_to_id.insert((*key).clone(), id.clone());
                    unit_bytes
                        .entry(id.clone())
                        .or_insert_with(|| inputs.dep_blob(key_positions[index]));
                    units.entry(id.clone()).or_insert(IrUnit {
                        id,
                        source_file: file.clone(),
                        openmp: module.metadata.openmp,
                        module,
                    });
                }

                // Fill manifests with artifact references.
                for (config_index, per_config_units) in unit_key_by_config.into_iter().enumerate() {
                    let manifest = &mut manifests[config_index];
                    for (target, file, key) in per_config_units {
                        let artifact = if let Some(id) = key_to_id.get(&key) {
                            format!("ir:{id}")
                        } else {
                            key // already `src:<path>` for system-dependent units
                        };
                        manifest.units.push(UnitAssignment {
                            target,
                            file,
                            artifact,
                        });
                    }
                }

                // Assemble the container image.
                let mut image = Image::new(reference, Platform::linux(Architecture::XirIr));
                image.set_deployment_format(DeploymentFormat::Ir);
                image.annotate(annotation_keys::IR_DIALECT, "xir.v1");
                image.annotate(annotation_keys::TITLE, project.name.clone());
                image.annotate(
                    annotation_keys::SPECIALIZATION_POINTS,
                    from_project(project).to_json_string(),
                );

                let mut toolchain = Layer::new("ADD xirc toolchain");
                toolchain.add_executable("/usr/bin/xirc", b"xirc-driver".to_vec());
                image.push_layer(toolchain);

                let mut sources =
                    Layer::new("COPY source tree (system-dependent files and installation)");
                sources.add_text(
                    format!("{}/XMakeLists.txt", paths::SOURCE_ROOT),
                    project.build_script.clone(),
                );
                for (path, content) in project.source_tree() {
                    sources.add_text(format!("{}/{}", paths::SOURCE_ROOT, path), content);
                }
                for (name, content) in &project.headers {
                    sources.add_text(
                        format!("{}/include/{}", paths::SOURCE_ROOT, name),
                        content.clone(),
                    );
                }
                image.push_layer(sources);

                let mut ir_layer = Layer::new(format!("ADD {} deduplicated IR files", units.len()));
                for (id, bytes) in &unit_bytes {
                    ir_layer.add_file(format!("{}/{}.xbc", paths::IR_ROOT, id), bytes.to_vec());
                }
                image.push_layer(ir_layer);

                let mut manifest_layer =
                    Layer::new(format!("ADD {} configuration manifests", manifests.len()));
                for manifest in &manifests {
                    manifest_layer.add_text(
                        format!("{}/{}.json", paths::CONFIG_ROOT, sanitize(&manifest.label)),
                        serde_json::to_string_pretty(manifest).expect("manifest serialises"),
                    );
                }
                manifest_layer.add_text(
                    paths::STATS,
                    serde_json::to_string_pretty(stats).expect("stats serialise"),
                );
                image.push_layer(manifest_layer);

                assembled.put(Assembled {
                    image,
                    units,
                    manifests,
                });
                Ok(Vec::new())
            },
        )
    };
    add_commit_action(
        &mut stage_b,
        format!("{reference} commit"),
        engine.store(),
        &assembled,
        |assembled| &assembled.image,
        link_action,
    );

    engine.preflight(&stage_b)?;
    let run_b = engine.run(stage_b);
    let (_, trace_b) = run_b.into_outputs()?;
    trace.merge(trace_b);
    let Assembled {
        image,
        units,
        manifests,
    } = assembled.into_inner().expect("link action ran");
    let actions = trace.summary();
    Ok(IrContainerBuild {
        image,
        reference: reference.to_string(),
        stats,
        manifests,
        units,
        actions,
        trace,
    })
}

/// Sanitise a configuration label for use as a file name.
pub fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::{IrBuildRequest, Orchestrator};
    use xaas_apps::{gromacs, lulesh};

    /// Old free-function shape, routed through the orchestrator (uncached).
    fn build(
        project: &ProjectSpec,
        config: &IrPipelineConfig,
        store: &ImageStore,
        reference: &str,
    ) -> Result<IrContainerBuild, IrPipelineError> {
        IrBuildRequest::new(project, config)
            .reference(reference)
            .submit(&Orchestrator::uncached(store))
    }

    /// Old `_cached` shape, routed through the orchestrator (shared cache).
    fn build_cached(
        project: &ProjectSpec,
        config: &IrPipelineConfig,
        cache: &ActionCache,
        reference: &str,
    ) -> Result<IrContainerBuild, IrPipelineError> {
        IrBuildRequest::new(project, config)
            .reference(reference)
            .submit(&Orchestrator::with_cache(cache))
    }

    #[test]
    fn lulesh_pipeline_reproduces_the_20_to_14_reduction_structure() {
        // The paper: 4 configurations × 5 files = 20 TUs; preprocessing leaves 14 IR files
        // (MPI changes one file; OpenMP is attached everywhere but only matters for files
        // with OpenMP constructs). Our mini-LULESH has the same structure, except the MPI
        // file is classified as system-dependent and shipped as source.
        let project = lulesh::project();
        let store = ImageStore::new();
        let config = IrPipelineConfig::sweep_options(&project, &["WITH_MPI", "WITH_OPENMP"]);
        let build = build(&project, &config, &store, "spcl/mini-lulesh:ir").unwrap();
        let stats = build.stats;
        assert_eq!(stats.configurations, 4);
        assert_eq!(stats.total_translation_units, 20);
        assert!(stats.unique_after_generation > stats.unique_after_preprocessing);
        assert!(stats.unique_after_preprocessing >= stats.unique_after_openmp);
        // comm file: 2 variants (MPI on/off); eos/util: 1 each; lulesh/forces: 2 each
        // (OpenMP on/off) → 8 unique IR units.
        assert_eq!(stats.ir_files_built(), 8);
        assert!(stats.reduction_percent() > 50.0);
        assert_eq!(build.units.len(), 8);
        assert_eq!(build.manifests.len(), 4);
    }

    #[test]
    fn gromacs_simd_sweep_shares_most_ir_files() {
        let project = gromacs::project();
        let store = ImageStore::new();
        let config = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"]).with_values(
            "GMX_SIMD",
            &["SSE4.1", "AVX2_128", "AVX_256", "AVX2_256", "AVX_512"],
        );
        let build = build(&project, &config, &store, "spcl/mini-gromacs:ir-x86").unwrap();
        let stats = build.stats;
        assert_eq!(stats.configurations, 5);
        // Five configurations of the same CPU-only file set.
        assert_eq!(
            stats.total_translation_units,
            5 * (stats.system_independent_files + stats.system_dependent_files)
        );
        // Without the vectorisation stage every configuration would stay distinct; with it
        // the IR files collapse to one per source file.
        assert_eq!(stats.ir_files_built(), stats.system_independent_files);
        assert!(
            stats.reduction_percent() > 60.0,
            "{}",
            stats.reduction_percent()
        );
        // The image advertises itself as an IR deployment.
        assert_eq!(build.image.deployment_format(), DeploymentFormat::Ir);
        assert_eq!(build.image.platform.architecture, Architecture::XirIr);
    }

    #[test]
    fn vectorization_stage_ablation_stops_sharing() {
        let project = gromacs::project();
        let store = ImageStore::new();
        let mut config = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"])
            .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"]);
        config.stages.vectorization_delay = false;
        let without = build(&project, &config, &store, "a:1").unwrap();
        config.stages.vectorization_delay = true;
        let with = build(&project, &config, &store, "a:2").unwrap();
        assert!(without.stats.ir_files_built() > with.stats.ir_files_built());
        // 95%+ of identical targets differ only in CPU tuning (the Section 6.4 finding).
        let share = with.stats.ir_files_built() as f64 / without.stats.ir_files_built() as f64;
        assert!(
            share <= 0.55,
            "vectorization delay should halve the unit count: {share}"
        );
    }

    #[test]
    fn openmp_detection_merges_flag_only_differences() {
        let project = lulesh::project();
        let store = ImageStore::new();
        let mut config = IrPipelineConfig::sweep_options(&project, &["WITH_OPENMP"]);
        config.stages.openmp_detection = false;
        let without = build(&project, &config, &store, "l:1").unwrap();
        config.stages.openmp_detection = true;
        let with = build(&project, &config, &store, "l:2").unwrap();
        assert!(with.stats.ir_files_built() < without.stats.ir_files_built());
        // eos, util and comm are OpenMP-free → they collapse across the two configurations.
        assert_eq!(
            without.stats.ir_files_built() - with.stats.ir_files_built(),
            3
        );
    }

    #[test]
    fn manifests_reference_existing_units_and_mark_mpi_as_source() {
        let project = gromacs::project();
        let store = ImageStore::new();
        let config = IrPipelineConfig::sweep_options(&project, &["GMX_MPI"]);
        let build = build(&project, &config, &store, "g:mpi").unwrap();
        let mpi_on = build
            .manifest_for(&OptionAssignment::new().with("GMX_MPI", "ON"))
            .expect("manifest for MPI=ON");
        let mpi_unit = mpi_on
            .units
            .iter()
            .find(|u| u.file.contains("mpi_halo"))
            .unwrap();
        assert!(
            mpi_unit.artifact.starts_with("src:"),
            "MPI file ships as source: {mpi_unit:?}"
        );
        for unit in &mpi_on.units {
            if let Some(id) = unit.artifact.strip_prefix("ir:") {
                assert!(
                    build.units.contains_key(id),
                    "artifact {id} missing from unit set"
                );
            }
        }
        assert!(build.stats.system_dependent_files >= 1);
        assert!(build.stats.system_independent_files > build.stats.system_dependent_files);
    }

    #[test]
    fn ir_image_contains_bitcode_sources_and_manifests() {
        let project = lulesh::project();
        let store = ImageStore::new();
        let config = IrPipelineConfig::sweep_options(&project, &["WITH_OPENMP"]);
        let build = build(&project, &config, &store, "spcl/lulesh:ir").unwrap();
        let root = build.image.rootfs();
        let ir_blobs: Vec<_> = root.paths_under(paths::IR_ROOT).collect();
        assert_eq!(ir_blobs.len(), build.units.len());
        assert!(root
            .get(&format!("{}/src/lulesh.ck", paths::SOURCE_ROOT))
            .is_some());
        assert!(root.get(paths::STATS).is_some());
        let manifest_files: Vec<_> = root.paths_under(paths::CONFIG_ROOT).collect();
        assert!(manifest_files.len() >= build.manifests.len());
        // Bitcode blobs decode back into modules.
        let first = ir_blobs.first().unwrap();
        let bytes = match root.get(first).unwrap() {
            xaas_container::LayerEntry::File { content, .. } => content.clone(),
            other => panic!("unexpected entry {other:?}"),
        };
        assert!(bitcode::decode(&bytes).is_ok());
    }

    #[test]
    fn warm_cache_build_runs_zero_compiles_and_is_byte_identical() {
        let project = lulesh::project();
        let store = ImageStore::new();
        let cache = ActionCache::new(store.clone());
        let config = IrPipelineConfig::sweep_options(&project, &["WITH_MPI", "WITH_OPENMP"]);
        let cold = build_cached(&project, &config, &cache, "warm:a").unwrap();
        assert_eq!(cold.actions.cached, 0);
        assert_eq!(cold.actions.executed, cold.units.len());
        let warm = build_cached(&project, &config, &cache, "warm:b").unwrap();
        assert_eq!(warm.actions.executed, 0, "warm build compiles nothing");
        assert_eq!(warm.actions.cached, cold.actions.executed);
        // Identical artifacts: same units, same stats, same layer bytes.
        assert_eq!(warm.units, cold.units);
        assert_eq!(warm.stats, cold.stats);
        assert_eq!(warm.image.layers, cold.image.layers);
        assert!(cache.stats().hit_rate() > 0.0);
    }

    #[test]
    fn unknown_sweep_option_is_rejected() {
        let project = lulesh::project();
        let store = ImageStore::new();
        let config = IrPipelineConfig {
            sweep: vec![("NOT_AN_OPTION".into(), vec!["ON".into()])],
            build_dir: "/xaas/build".into(),
            stages: PipelineStages::default(),
            optimize_early: false,
        };
        assert!(matches!(
            build(&project, &config, &store, "x:1"),
            Err(IrPipelineError::UnknownOption(_))
        ));
    }
}
