//! An interpreter for XIR / machine modules.
//!
//! The interpreter gives the substrate *executable semantics*: tests and examples run the
//! synthetic applications' kernels on real data and verify that deployment-time decisions
//! (vectorisation width, optimisation level) never change numerical results — only the
//! instruction counts and the modelled execution time change.

use crate::ast::{BinOp, Type};
use crate::ir::{IrModule, IrOp, Operand};
use crate::target::MachineModule;
use std::collections::BTreeMap;
use std::fmt;

/// A value passed to or returned from an interpreted kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer scalar.
    Int(i64),
    /// Floating-point scalar.
    Float(f64),
    /// Mutable float buffer (passed by reference, visible after the call).
    FloatBuffer(Vec<f64>),
    /// Mutable integer buffer.
    IntBuffer(Vec<i64>),
}

impl Value {
    /// The scalar float view of this value (integers are converted).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Float buffer contents, if this is a float buffer.
    pub fn as_float_buffer(&self) -> Option<&[f64]> {
        match self {
            Value::FloatBuffer(buf) => Some(buf),
            _ => None,
        }
    }
}

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant payload fields are documented by the Display impl
pub enum InterpError {
    /// A referenced function does not exist in the module.
    UnknownFunction(String),
    /// Wrong number or type of arguments.
    ArgumentMismatch { function: String, detail: String },
    /// A register was read before being written.
    UndefinedRegister(String),
    /// A buffer access was out of bounds.
    OutOfBounds {
        buffer: String,
        index: i64,
        len: usize,
    },
    /// A call to a function that is neither defined nor a built-in intrinsic.
    UnknownCallee(String),
    /// Execution exceeded the step budget (runaway loop guard).
    StepBudgetExceeded,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            InterpError::ArgumentMismatch { function, detail } => {
                write!(f, "argument mismatch calling `{function}`: {detail}")
            }
            InterpError::UndefinedRegister(name) => {
                write!(f, "register `{name}` read before write")
            }
            InterpError::OutOfBounds { buffer, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for buffer `{buffer}` of length {len}"
                )
            }
            InterpError::UnknownCallee(name) => write!(f, "call to unknown function `{name}`"),
            InterpError::StepBudgetExceeded => write!(f, "execution exceeded the step budget"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Result of running a kernel: returned scalar (if any), final buffer arguments, and the
/// number of interpreted operations (a deterministic work measure).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Value returned by the function.
    pub return_value: Option<Value>,
    /// Buffer arguments after execution, in parameter order.
    pub buffers: BTreeMap<String, Value>,
    /// Operations executed.
    pub ops_executed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Scalar {
    Int(i64),
    Float(f64),
}

impl Scalar {
    fn as_f64(self) -> f64 {
        match self {
            Scalar::Int(v) => v as f64,
            Scalar::Float(v) => v,
        }
    }
    fn as_i64(self) -> i64 {
        match self {
            Scalar::Int(v) => v,
            Scalar::Float(v) => v as i64,
        }
    }
    fn truthy(self) -> bool {
        match self {
            Scalar::Int(v) => v != 0,
            Scalar::Float(v) => v != 0.0,
        }
    }
}

enum Slot {
    Scalar(Scalar),
    FloatBuf(Vec<f64>),
    IntBuf(Vec<i64>),
}

struct Frame {
    slots: BTreeMap<String, Slot>,
}

/// The interpreter. Construct it over an [`IrModule`] (or via [`Interpreter::for_machine`]
/// over a lowered [`MachineModule`]) and invoke kernels by name.
pub struct Interpreter<'a> {
    functions: BTreeMap<String, FunctionView<'a>>,
    /// Maximum interpreted operations before aborting (guards against runaway loops).
    pub step_budget: u64,
}

struct FunctionView<'a> {
    params: &'a [(String, Type)],
    body: &'a [IrOp],
}

impl<'a> Interpreter<'a> {
    /// Build an interpreter over an IR module.
    pub fn new(module: &'a IrModule) -> Self {
        let functions = module
            .functions
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    FunctionView {
                        params: &f.params,
                        body: &f.body,
                    },
                )
            })
            .collect();
        Self {
            functions,
            step_budget: 200_000_000,
        }
    }

    /// Build an interpreter over a lowered machine module.
    pub fn for_machine(module: &'a MachineModule) -> Self {
        let functions = module
            .functions
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    FunctionView {
                        params: &f.params,
                        body: &f.body,
                    },
                )
            })
            .collect();
        Self {
            functions,
            step_budget: 200_000_000,
        }
    }

    /// Execute `function` with `args` (must match the parameter list in count and kind).
    pub fn run(&self, function: &str, args: Vec<Value>) -> Result<RunResult, InterpError> {
        let view = self
            .functions
            .get(function)
            .ok_or_else(|| InterpError::UnknownFunction(function.to_string()))?;
        if view.params.len() != args.len() {
            return Err(InterpError::ArgumentMismatch {
                function: function.to_string(),
                detail: format!(
                    "expected {} arguments, got {}",
                    view.params.len(),
                    args.len()
                ),
            });
        }
        let mut frame = Frame {
            slots: BTreeMap::new(),
        };
        for ((name, ty), value) in view.params.iter().zip(args) {
            let slot = match (ty, value) {
                (Type::Int, Value::Int(v)) => Slot::Scalar(Scalar::Int(v)),
                (Type::Int, Value::Float(v)) => Slot::Scalar(Scalar::Int(v as i64)),
                (Type::Float, Value::Float(v)) => Slot::Scalar(Scalar::Float(v)),
                (Type::Float, Value::Int(v)) => Slot::Scalar(Scalar::Float(v as f64)),
                (Type::FloatPtr, Value::FloatBuffer(buf)) => Slot::FloatBuf(buf),
                (Type::IntPtr, Value::IntBuffer(buf)) => Slot::IntBuf(buf),
                (expected, got) => {
                    return Err(InterpError::ArgumentMismatch {
                        function: function.to_string(),
                        detail: format!("parameter `{name}` expects {expected}, got {got:?}"),
                    })
                }
            };
            frame.slots.insert(name.clone(), slot);
        }
        let mut ops_executed = 0u64;
        let flow = self.exec_block(view.body, &mut frame, &mut ops_executed)?;
        let return_value = match flow {
            Flow::Return(Some(scalar)) => Some(match scalar {
                Scalar::Int(v) => Value::Int(v),
                Scalar::Float(v) => Value::Float(v),
            }),
            _ => None,
        };
        let mut buffers = BTreeMap::new();
        for (name, ty) in view.params {
            if ty.is_pointer() {
                match frame.slots.remove(name) {
                    Some(Slot::FloatBuf(buf)) => {
                        buffers.insert(name.clone(), Value::FloatBuffer(buf));
                    }
                    Some(Slot::IntBuf(buf)) => {
                        buffers.insert(name.clone(), Value::IntBuffer(buf));
                    }
                    _ => {}
                }
            }
        }
        Ok(RunResult {
            return_value,
            buffers,
            ops_executed,
        })
    }

    fn exec_block(
        &self,
        ops: &[IrOp],
        frame: &mut Frame,
        counter: &mut u64,
    ) -> Result<Flow, InterpError> {
        for op in ops {
            *counter += 1;
            if *counter > self.step_budget {
                return Err(InterpError::StepBudgetExceeded);
            }
            match op {
                IrOp::Const { dest, value } | IrOp::Move { dest, src: value } => {
                    let v = self.operand(value, frame)?;
                    frame.slots.insert(dest.clone(), Slot::Scalar(v));
                }
                IrOp::Bin { dest, op, lhs, rhs } => {
                    let a = self.operand(lhs, frame)?;
                    let b = self.operand(rhs, frame)?;
                    frame
                        .slots
                        .insert(dest.clone(), Slot::Scalar(apply_bin(*op, a, b)));
                }
                IrOp::Un { dest, not, operand } => {
                    let v = self.operand(operand, frame)?;
                    let result = if *not {
                        Scalar::Int(i64::from(!v.truthy()))
                    } else {
                        match v {
                            Scalar::Int(i) => Scalar::Int(-i),
                            Scalar::Float(f) => Scalar::Float(-f),
                        }
                    };
                    frame.slots.insert(dest.clone(), Slot::Scalar(result));
                }
                IrOp::Load { dest, base, index } => {
                    let idx = self.operand(index, frame)?.as_i64();
                    let value = match frame.slots.get(base) {
                        Some(Slot::FloatBuf(buf)) => {
                            let v = *buf.get(idx as usize).ok_or(InterpError::OutOfBounds {
                                buffer: base.clone(),
                                index: idx,
                                len: buf.len(),
                            })?;
                            Scalar::Float(v)
                        }
                        Some(Slot::IntBuf(buf)) => {
                            let v = *buf.get(idx as usize).ok_or(InterpError::OutOfBounds {
                                buffer: base.clone(),
                                index: idx,
                                len: buf.len(),
                            })?;
                            Scalar::Int(v)
                        }
                        _ => return Err(InterpError::UndefinedRegister(base.clone())),
                    };
                    frame.slots.insert(dest.clone(), Slot::Scalar(value));
                }
                IrOp::Store { base, index, value } => {
                    let idx = self.operand(index, frame)?.as_i64();
                    let v = self.operand(value, frame)?;
                    match frame.slots.get_mut(base) {
                        Some(Slot::FloatBuf(buf)) => {
                            let len = buf.len();
                            let slot =
                                buf.get_mut(idx as usize).ok_or(InterpError::OutOfBounds {
                                    buffer: base.clone(),
                                    index: idx,
                                    len,
                                })?;
                            *slot = v.as_f64();
                        }
                        Some(Slot::IntBuf(buf)) => {
                            let len = buf.len();
                            let slot =
                                buf.get_mut(idx as usize).ok_or(InterpError::OutOfBounds {
                                    buffer: base.clone(),
                                    index: idx,
                                    len,
                                })?;
                            *slot = v.as_i64();
                        }
                        _ => return Err(InterpError::UndefinedRegister(base.clone())),
                    }
                }
                IrOp::Call { dest, callee, args } => {
                    let mut arg_values = Vec::with_capacity(args.len());
                    for a in args {
                        arg_values.push(self.operand(a, frame)?);
                    }
                    let result = self.call(callee, &arg_values, counter)?;
                    if let (Some(dest), Some(value)) = (dest, result) {
                        frame.slots.insert(dest.clone(), Slot::Scalar(value));
                    }
                }
                IrOp::Loop {
                    var,
                    start,
                    end,
                    step,
                    body,
                    ..
                } => {
                    let start_value = self.operand(start, frame)?.as_i64();
                    let end_value = self.operand(end, frame)?.as_i64();
                    let mut i = start_value;
                    while i < end_value {
                        frame
                            .slots
                            .insert(var.clone(), Slot::Scalar(Scalar::Int(i)));
                        match self.exec_block(body, frame, counter)? {
                            Flow::Return(v) => return Ok(Flow::Return(v)),
                            Flow::Continue => {}
                        }
                        i += *step;
                    }
                }
                IrOp::While {
                    cond_ops,
                    cond,
                    body,
                } => loop {
                    match self.exec_block(cond_ops, frame, counter)? {
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Continue => {}
                    }
                    let value = match frame.slots.get(cond) {
                        Some(Slot::Scalar(s)) => *s,
                        _ => return Err(InterpError::UndefinedRegister(cond.clone())),
                    };
                    if !value.truthy() {
                        break;
                    }
                    match self.exec_block(body, frame, counter)? {
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Continue => {}
                    }
                },
                IrOp::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let value = match frame.slots.get(cond) {
                        Some(Slot::Scalar(s)) => *s,
                        _ => return Err(InterpError::UndefinedRegister(cond.clone())),
                    };
                    let branch = if value.truthy() { then_body } else { else_body };
                    match self.exec_block(branch, frame, counter)? {
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Continue => {}
                    }
                }
                IrOp::Return { value } => {
                    let v = match value {
                        Some(operand) => Some(self.operand(operand, frame)?),
                        None => None,
                    };
                    return Ok(Flow::Return(v));
                }
            }
        }
        Ok(Flow::Continue)
    }

    fn operand(&self, operand: &Operand, frame: &Frame) -> Result<Scalar, InterpError> {
        match operand {
            Operand::ImmInt(v) => Ok(Scalar::Int(*v)),
            Operand::ImmFloat(v) => Ok(Scalar::Float(*v)),
            Operand::Reg(name) => match frame.slots.get(name) {
                Some(Slot::Scalar(s)) => Ok(*s),
                _ => Err(InterpError::UndefinedRegister(name.clone())),
            },
        }
    }

    /// Call a scalar function: a built-in math intrinsic or another scalar function in the
    /// module (only scalar parameters are supported for nested calls).
    fn call(
        &self,
        callee: &str,
        args: &[Scalar],
        counter: &mut u64,
    ) -> Result<Option<Scalar>, InterpError> {
        match (callee, args) {
            ("sqrt", [x]) => return Ok(Some(Scalar::Float(x.as_f64().sqrt()))),
            ("fabs", [x]) => return Ok(Some(Scalar::Float(x.as_f64().abs()))),
            ("exp", [x]) => return Ok(Some(Scalar::Float(x.as_f64().exp()))),
            ("log", [x]) => return Ok(Some(Scalar::Float(x.as_f64().max(f64::MIN_POSITIVE).ln()))),
            ("floor", [x]) => return Ok(Some(Scalar::Float(x.as_f64().floor()))),
            ("fmin", [a, b]) => return Ok(Some(Scalar::Float(a.as_f64().min(b.as_f64())))),
            ("fmax", [a, b]) => return Ok(Some(Scalar::Float(a.as_f64().max(b.as_f64())))),
            ("omp_get_max_threads", []) => return Ok(Some(Scalar::Int(1))),
            _ => {}
        }
        let Some(view) = self.functions.get(callee) else {
            return Err(InterpError::UnknownCallee(callee.to_string()));
        };
        if view.params.len() != args.len() || view.params.iter().any(|(_, t)| t.is_pointer()) {
            return Err(InterpError::ArgumentMismatch {
                function: callee.to_string(),
                detail: "nested calls support scalar parameters only".to_string(),
            });
        }
        let mut frame = Frame {
            slots: BTreeMap::new(),
        };
        for ((name, ty), value) in view.params.iter().zip(args) {
            let scalar = match ty {
                Type::Int => Scalar::Int(value.as_i64()),
                _ => Scalar::Float(value.as_f64()),
            };
            frame.slots.insert(name.clone(), Slot::Scalar(scalar));
        }
        match self.exec_block(view.body, &mut frame, counter)? {
            Flow::Return(v) => Ok(v),
            Flow::Continue => Ok(None),
        }
    }
}

enum Flow {
    Continue,
    Return(Option<Scalar>),
}

fn apply_bin(op: BinOp, a: Scalar, b: Scalar) -> Scalar {
    use Scalar::{Float, Int};
    let both_int = matches!((a, b), (Int(_), Int(_)));
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
            if both_int {
                let (x, y) = (a.as_i64(), b.as_i64());
                Int(match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            0
                        } else {
                            x / y
                        }
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            0
                        } else {
                            x % y
                        }
                    }
                    _ => unreachable!(),
                })
            } else {
                let (x, y) = (a.as_f64(), b.as_f64());
                Float(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Rem => x % y,
                    _ => unreachable!(),
                })
            }
        }
        BinOp::Eq => Int(i64::from(a.as_f64() == b.as_f64())),
        BinOp::Ne => Int(i64::from(a.as_f64() != b.as_f64())),
        BinOp::Lt => Int(i64::from(a.as_f64() < b.as_f64())),
        BinOp::Le => Int(i64::from(a.as_f64() <= b.as_f64())),
        BinOp::Gt => Int(i64::from(a.as_f64() > b.as_f64())),
        BinOp::Ge => Int(i64::from(a.as_f64() >= b.as_f64())),
        BinOp::And => Int(i64::from(a.truthy() && b.truthy())),
        BinOp::Or => Int(i64::from(a.truthy() || b.truthy())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LowerOptions};
    use crate::parse::parse;
    use crate::target::{lower_to_machine, TargetIsa};

    fn compile(src: &str) -> IrModule {
        let unit = parse("test.ck", src).unwrap();
        lower(
            &unit,
            &LowerOptions {
                openmp: true,
                ..Default::default()
            },
        )
        .unwrap()
    }

    const AXPY: &str = r#"
kernel void axpy(float* y, float* x, float a, int n) {
    for (int i = 0; i < n; i = i + 1) {
        y[i] = y[i] + a * x[i];
    }
}
"#;

    #[test]
    fn axpy_computes_expected_values() {
        let module = compile(AXPY);
        let interp = Interpreter::new(&module);
        let y = vec![1.0; 8];
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let result = interp
            .run(
                "axpy",
                vec![
                    Value::FloatBuffer(y),
                    Value::FloatBuffer(x),
                    Value::Float(2.0),
                    Value::Int(8),
                ],
            )
            .unwrap();
        let y_out = result.buffers["y"].as_float_buffer().unwrap();
        let expected: Vec<f64> = (0..8).map(|i| 1.0 + 2.0 * i as f64).collect();
        assert_eq!(y_out, expected.as_slice());
        assert!(result.ops_executed > 8);
    }

    #[test]
    fn vectorised_machine_code_matches_scalar_results() {
        let module = compile(AXPY);
        let scalar = lower_to_machine(&module, &TargetIsa::scalar("none"));
        let wide = lower_to_machine(&module, &TargetIsa::vector("avx512", 16, true));
        let run = |machine| {
            let interp = Interpreter::for_machine(machine);
            interp
                .run(
                    "axpy",
                    vec![
                        Value::FloatBuffer(vec![0.5; 33]),
                        Value::FloatBuffer((0..33).map(|i| (i as f64) * 0.25).collect()),
                        Value::Float(3.0),
                        Value::Int(33),
                    ],
                )
                .unwrap()
        };
        let scalar_result = run(&scalar);
        let wide_result = run(&wide);
        assert_eq!(scalar_result.buffers, wide_result.buffers);
    }

    #[test]
    fn reduction_and_return_values() {
        let src = r#"
float sum(float* x, int n) {
    float acc = 0.0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + x[i]; }
    return acc;
}
"#;
        let module = compile(src);
        let interp = Interpreter::new(&module);
        let result = interp
            .run(
                "sum",
                vec![Value::FloatBuffer(vec![1.5; 10]), Value::Int(10)],
            )
            .unwrap();
        assert_eq!(result.return_value, Some(Value::Float(15.0)));
    }

    #[test]
    fn intrinsics_and_nested_calls() {
        let src = r#"
float relu(float v) {
    if (v > 0.0) { return v; }
    return 0.0;
}
kernel void apply(float* out, float* in, int n) {
    for (int i = 0; i < n; i = i + 1) {
        out[i] = relu(in[i]) + sqrt(fabs(in[i]));
    }
}
"#;
        let module = compile(src);
        let interp = Interpreter::new(&module);
        let result = interp
            .run(
                "apply",
                vec![
                    Value::FloatBuffer(vec![0.0; 4]),
                    Value::FloatBuffer(vec![-4.0, 0.0, 1.0, 9.0]),
                    Value::Int(4),
                ],
            )
            .unwrap();
        let out = result.buffers["out"].as_float_buffer().unwrap();
        assert_eq!(out, &[2.0, 0.0, 2.0, 12.0]);
    }

    #[test]
    fn while_and_if_control_flow() {
        let src = r#"
int count_above(float* x, int n, float limit) {
    int count = 0;
    int i = 0;
    while (i < n) {
        if (x[i] > limit) { count = count + 1; }
        i = i + 1;
    }
    return count;
}
"#;
        let module = compile(src);
        let interp = Interpreter::new(&module);
        let result = interp
            .run(
                "count_above",
                vec![
                    Value::FloatBuffer(vec![0.1, 5.0, 3.0, 0.2]),
                    Value::Int(4),
                    Value::Float(1.0),
                ],
            )
            .unwrap();
        assert_eq!(result.return_value, Some(Value::Int(2)));
    }

    #[test]
    fn out_of_bounds_and_bad_arguments_are_reported() {
        let module = compile(AXPY);
        let interp = Interpreter::new(&module);
        let err = interp
            .run(
                "axpy",
                vec![
                    Value::FloatBuffer(vec![0.0; 2]),
                    Value::FloatBuffer(vec![0.0; 2]),
                    Value::Float(1.0),
                    Value::Int(5),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, InterpError::OutOfBounds { .. }));

        let err = interp.run("axpy", vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, InterpError::ArgumentMismatch { .. }));
        let err = interp.run("missing", vec![]).unwrap_err();
        assert!(matches!(err, InterpError::UnknownFunction(_)));
    }

    #[test]
    fn unknown_callee_is_an_error() {
        let src = "kernel void f(float* x) { x[0] = mystery(1.0); }";
        let module = compile(src);
        let interp = Interpreter::new(&module);
        let err = interp
            .run("f", vec![Value::FloatBuffer(vec![0.0])])
            .unwrap_err();
        assert_eq!(err, InterpError::UnknownCallee("mystery".into()));
    }

    #[test]
    fn step_budget_stops_infinite_loops() {
        let src = r#"
kernel void spin(int n) {
    int i = 0;
    while (i < 1) { i = i * 1; }
}
"#;
        let module = compile(src);
        let mut interp = Interpreter::new(&module);
        interp.step_budget = 10_000;
        let err = interp.run("spin", vec![Value::Int(1)]).unwrap_err();
        assert_eq!(err, InterpError::StepBudgetExceeded);
    }
}
