//! The service-layer load generator: thousands of concurrent mixed
//! build/deploy/fleet requests from over a dozen tenants driven through one
//! [`OrchestratorService`], measuring throughput, latency percentiles (up to
//! p999), continuation park/wake traffic, cross-session interleaving, typed
//! admission-control refusals, and the fairness effect of weighted fair
//! queuing — all while checking that the artifacts stay byte-identical to a
//! single-session sequential baseline.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xaas::engine::ActionGraph;
use xaas::prelude::*;
use xaas::service::{AdmissionError, OrchestratorService, ServiceError, ServiceLimits, Session};
use xaas_apps::{gromacs, lulesh};
use xaas_buildsys::OptionAssignment;
use xaas_container::{ActionCache, ImageStore};
use xaas_hpcsim::{SimdLevel, SystemModel};

/// Latency percentiles of one load phase, in milliseconds.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LatencySummary {
    /// Median request latency.
    pub p50_ms: f64,
    /// 95th-percentile request latency.
    pub p95_ms: f64,
    /// 99th-percentile request latency.
    pub p99_ms: f64,
    /// 99.9th-percentile request latency — the tail that matters once the load
    /// phase runs thousands of requests.
    pub p999_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
}

impl LatencySummary {
    fn from_micros(mut micros: Vec<u64>) -> Self {
        if micros.is_empty() {
            return Self::default();
        }
        micros.sort_unstable();
        let at = |q: f64| {
            let index = ((micros.len() as f64 - 1.0) * q).round() as usize;
            micros[index.min(micros.len() - 1)] as f64 / 1e3
        };
        Self {
            p50_ms: at(0.50),
            p95_ms: at(0.95),
            p99_ms: at(0.99),
            p999_ms: at(0.999),
            max_ms: *micros.last().expect("non-empty") as f64 / 1e3,
        }
    }
}

/// One policy's side of the fairness comparison: per-tenant completion times
/// for the identical queued batch, and their spread.
#[derive(Debug, Clone, Serialize)]
pub struct FairnessRun {
    /// Scheduling policy (`fifo` or `weighted-fair`).
    pub policy: String,
    /// Milliseconds from queue release until each tenant's *last* request
    /// completed.
    pub tenant_completion_ms: BTreeMap<String, f64>,
    /// `max - min` of the per-tenant completion times: how far apart the first
    /// and last tenant finish. FIFO drains whole submissions in arrival order
    /// (first tenant finishes long before the last); fair queuing round-robins
    /// the lanes so every tenant finishes near the end — a *smaller* spread.
    pub completion_spread_ms: f64,
}

/// FIFO vs weighted-fair scheduling on the same per-tenant deploy batches.
#[derive(Debug, Clone, Serialize)]
pub struct FairnessComparison {
    /// The FIFO run (arrival order, no lanes).
    pub fifo: FairnessRun,
    /// The weighted-fair run (equal weights, one lane per tenant).
    pub weighted_fair: FairnessRun,
    /// Whether fair queuing narrowed the per-tenant completion spread.
    pub narrowed: bool,
}

/// The service-layer load experiment (see [`service_load`]).
#[derive(Debug, Clone, Serialize)]
pub struct ServiceLoadExperiment {
    /// Concurrent tenants driving the mixed-load phase.
    pub tenants: usize,
    /// Total requests completed in the mixed-load phase.
    pub requests: usize,
    /// Breakdown: IR builds in the mix.
    pub build_requests: usize,
    /// Breakdown: IR deployments in the mix.
    pub deploy_requests: usize,
    /// Breakdown: fleet waves in the mix.
    pub fleet_requests: usize,
    /// Engine workers of the loaded service.
    pub workers: usize,
    /// Wall-clock of the mixed-load phase, in milliseconds.
    pub wall_ms: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Request latency percentiles.
    pub latency: LatencySummary,
    /// Highest number of distinct submissions with waiting actions observed at
    /// any dispatch — the cross-session interleaving depth (> 1 means actions
    /// from different sessions genuinely shared the ready queue).
    pub max_ready_submissions: u64,
    /// Peak number of continuations parked at once, sampled from
    /// [`QueueStats::parked_waiters`] across the mixed phase and the
    /// deterministic contention probe. Parked waiters hold no worker, so this
    /// is concurrency the pool absorbed beyond its thread count (the probe
    /// alone parks more waiters than there are workers).
    pub parked_waiters: usize,
    /// Continuation parks (flight waits + cap deferrals) over the mixed phase
    /// and the contention probe. Near zero from the mixed phase alone means
    /// computes retired faster than duplicate keys could race them.
    pub parks: u64,
    /// Continuation wakes over the mixed phase and the contention probe.
    pub wakeups: u64,
    /// Shared-cache hit rate over the whole mixed phase.
    pub cache_hit_rate: f64,
    /// Whether every concurrent artifact was byte-identical to the sequential
    /// single-session baseline.
    pub byte_identical: bool,
    /// Requests admitted by the service during the mixed phase.
    pub admitted: u64,
    /// Typed `Backpressure` refusals observed in the admission-control phase.
    pub backpressure_errors: u64,
    /// Typed `Rejected` refusals observed in the admission-control phase.
    pub rejected_errors: u64,
    /// FIFO vs weighted-fair completion spread on identical queued batches.
    pub fairness: FairnessComparison,
}

/// Hold `slots` of the service's workers behind a gated no-op submission so
/// queued work piles up deterministically; returns the release sender (send
/// `slots` times to open) and the handle to drain afterwards.
fn occupy_engine(
    service: &OrchestratorService,
    slots: usize,
) -> (mpsc::Sender<()>, GraphHandle<std::convert::Infallible>) {
    let (release, gate) = mpsc::channel::<()>();
    let gate = Arc::new(Mutex::new(gate));
    let mut graph: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
    for slot in 0..slots {
        let gate = Arc::clone(&gate);
        graph.add(
            ActionKind::Preprocess,
            format!("gate{slot}"),
            &[],
            move |_| {
                gate.lock().unwrap().recv().ok();
                Ok(vec![0])
            },
        );
    }
    let handle = service
        .orchestrator()
        .engine()
        .submit_graph(graph)
        .expect("analysis-clean graph");
    (release, handle)
}

/// Open a gate created by [`occupy_engine`] with `slots` slots.
fn open_gate(release: &mpsc::Sender<()>, slots: usize) {
    for _ in 0..slots {
        release.send(()).expect("gate releases");
    }
}

/// The shared request mix: every tenant replays this same stream, so BuildKeys
/// overlap across sessions and the cache's cross-session single-flight is
/// exercised on every request.
enum MixedRequest {
    LuleshBuild,
    GromacsBuild,
    LuleshDeploy { mpi: bool, omp: bool },
    GromacsDeploy { avx: bool },
    Fleet,
}

fn mixed_request(index: usize) -> MixedRequest {
    match index % 8 {
        0 => MixedRequest::LuleshBuild,
        1 => MixedRequest::GromacsDeploy {
            avx: index % 16 < 8,
        },
        2 => MixedRequest::LuleshDeploy {
            mpi: index % 16 < 8,
            omp: index % 32 < 16,
        },
        3 => MixedRequest::GromacsBuild,
        4 => MixedRequest::LuleshDeploy {
            mpi: index % 32 < 16,
            omp: index % 16 < 8,
        },
        5 => MixedRequest::GromacsDeploy {
            avx: index % 32 < 16,
        },
        6 => MixedRequest::Fleet,
        _ => MixedRequest::LuleshDeploy {
            mpi: index % 16 >= 8,
            omp: index % 32 >= 16,
        },
    }
}

/// The artifacts of one replayed request stream, for byte-identity comparison.
#[derive(Default)]
struct StreamArtifacts {
    /// Image layer sets in request order (builds, deploys, and fleet outcomes).
    layers: Vec<Vec<xaas_container::Layer>>,
    /// Per-request latencies in microseconds (unused for the baseline).
    latency_micros: Vec<u64>,
    /// Deepest cross-submission interleaving any of this stream's traces saw.
    max_ready_submissions: u64,
}

/// The shared fixtures every stream replays against: the two projects, their
/// sweep configurations, and the pre-built IR containers the deploys/fleets
/// specialize.
struct AppAssets {
    lulesh_project: xaas_buildsys::ProjectSpec,
    lulesh_config: IrPipelineConfig,
    lulesh_build: IrContainerBuild,
    gromacs_project: xaas_buildsys::ProjectSpec,
    gromacs_config: IrPipelineConfig,
    gromacs_build: IrContainerBuild,
}

/// Replay the mixed request stream on one session, recording artifacts,
/// latencies, and interleaving depth.
fn replay_stream(session: &Session, requests: usize, assets: &AppAssets) -> StreamArtifacts {
    let AppAssets {
        lulesh_project,
        lulesh_config,
        lulesh_build,
        gromacs_project,
        gromacs_config,
        gromacs_build,
    } = assets;
    let tenant = session.tenant().to_string();
    let mut artifacts = StreamArtifacts::default();
    let on = |flag: bool| if flag { "ON" } else { "OFF" };
    for index in 0..requests {
        let started = Instant::now();
        let (layers, depth) = match mixed_request(index) {
            MixedRequest::LuleshBuild => {
                let build = session
                    .submit_wait(
                        IrBuildRequest::new(lulesh_project, lulesh_config)
                            .reference(format!("load:{tenant}:lulesh:{index}")),
                    )
                    .expect("lulesh build succeeds");
                (build.image.layers, build.trace.max_ready_submissions())
            }
            MixedRequest::GromacsBuild => {
                let build = session
                    .submit_wait(
                        IrBuildRequest::new(gromacs_project, gromacs_config)
                            .reference(format!("load:{tenant}:gromacs:{index}")),
                    )
                    .expect("gromacs build succeeds");
                (build.image.layers, build.trace.max_ready_submissions())
            }
            MixedRequest::LuleshDeploy { mpi, omp } => {
                let deploy = session
                    .submit_wait(
                        IrDeployRequest::new(lulesh_build, lulesh_project, &SystemModel::ault23())
                            .select("WITH_MPI", on(mpi))
                            .select("WITH_OPENMP", on(omp)),
                    )
                    .expect("lulesh deploy succeeds");
                (deploy.image.layers, deploy.trace.max_ready_submissions())
            }
            MixedRequest::GromacsDeploy { avx } => {
                let (system, simd) = if avx {
                    (SystemModel::ault23(), SimdLevel::Avx512)
                } else {
                    (SystemModel::ault25(), SimdLevel::Avx2_256)
                };
                let deploy = session
                    .submit_wait(
                        IrDeployRequest::new(gromacs_build, gromacs_project, &system)
                            .selection(OptionAssignment::new().with("GMX_SIMD", simd.gmx_name()))
                            .simd(simd),
                    )
                    .expect("gromacs deploy succeeds");
                (deploy.image.layers, deploy.trace.max_ready_submissions())
            }
            MixedRequest::Fleet => {
                let report = session
                    .submit_wait(
                        FleetRequest::new(gromacs_build, gromacs_project)
                            .target(FleetTarget::new(
                                SystemModel::ault23(),
                                OptionAssignment::new()
                                    .with("GMX_SIMD", SimdLevel::Avx512.gmx_name()),
                                SimdLevel::Avx512,
                            ))
                            .target(FleetTarget::new(
                                SystemModel::ault25(),
                                OptionAssignment::new()
                                    .with("GMX_SIMD", SimdLevel::Avx2_256.gmx_name()),
                                SimdLevel::Avx2_256,
                            )),
                    )
                    .expect("fleet wave is always reported");
                assert!(report.all_succeeded(), "fleet wave succeeds");
                let layers = report
                    .deployments()
                    .flat_map(|d| d.image.layers.clone())
                    .collect();
                (layers, report.trace.max_ready_submissions())
            }
        };
        artifacts
            .latency_micros
            .push(started.elapsed().as_micros() as u64);
        artifacts.layers.push(layers);
        artifacts.max_ready_submissions = artifacts.max_ready_submissions.max(depth);
    }
    artifacts
}

/// The deterministic contention probe: sixteen duplicate cold-keyed actions in
/// one submission on the loaded service's worker pool. The first dispatched
/// node owns the flight (its compute gated so the race window stays open);
/// every other duplicate hits `InFlight` and parks as a continuation — far
/// more parked waiters than worker threads, none of them holding one — and
/// the owner's completion wakes them all with the same bytes. Returns the
/// observed parked-waiter peak. A blocking executor could never reach it: with
/// four workers at most three waiters could even be dispatched.
fn park_probe(service: &OrchestratorService) -> usize {
    const DUPLICATES: usize = 16;
    let engine = service.orchestrator().engine();
    let before = engine.queue_stats().parked_waiters;
    let (release, gate) = mpsc::channel::<()>();
    let gate = Arc::new(Mutex::new(gate));
    let mut graph: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
    let key = BuildKey::new("bench-park-probe", "x86_64", "O2", "probe");
    for duplicate in 0..DUPLICATES {
        let gate = Arc::clone(&gate);
        graph.add_cached(
            ActionKind::IrLower,
            format!("park-probe-{duplicate}"),
            key.clone(),
            &[],
            move |_| {
                // Only the flight owner runs this; it holds the flight open
                // until the probe has watched every other duplicate park.
                gate.lock().unwrap().recv().ok();
                Ok(b"park probe".to_vec())
            },
        );
    }
    let handle = engine.submit_graph(graph).expect("analysis-clean graph");
    while engine.queue_stats().parked_waiters < before + (DUPLICATES - 1) {
        std::thread::yield_now();
    }
    let peak = engine.queue_stats().parked_waiters;
    release.send(()).expect("probe gate opens");
    handle.wait();
    peak
}

/// The deterministic admission-control probe: with the pool gated and tight
/// limits (1 per tenant, 2 global), one admitted request per tenant parks in
/// the queue, the tenant's second request draws typed `Backpressure`, and a
/// third tenant draws a typed `Rejected` — then the gate opens and everything
/// completes. Returns `(backpressure_count, rejected_count)`.
fn admission_probe(
    lulesh_project: &xaas_buildsys::ProjectSpec,
    lulesh_config: &IrPipelineConfig,
) -> (u64, u64) {
    let service = OrchestratorService::builder()
        .workers(1)
        .limits(ServiceLimits::default().per_tenant(1).global(2))
        .build();
    let (release, gate_handle) = occupy_engine(&service, 1);
    let mut backpressure = 0u64;
    let mut rejected = 0u64;
    // Admission checks global saturation before the tenant lane, so the probe
    // is staged: alice alone in flight → her second draws Backpressure; with
    // bob also in flight the global limit is reached → carol draws Rejected.
    std::thread::scope(|scope| {
        let mut parked = Vec::new();
        for (stage, tenant) in ["alice", "bob"].into_iter().enumerate() {
            let session = service.session(tenant);
            parked.push(scope.spawn(move || {
                session
                    .submit(
                        IrBuildRequest::new(lulesh_project, lulesh_config)
                            .reference(format!("probe:{tenant}")),
                    )
                    .expect("admitted probe build succeeds")
            }));
            while service.stats().in_flight < stage + 1 {
                std::thread::yield_now();
            }
            if stage == 0 {
                match service.session("alice").submit(
                    IrBuildRequest::new(lulesh_project, lulesh_config).reference("probe:extra"),
                ) {
                    Err(ServiceError::Admission(AdmissionError::Backpressure { .. })) => {
                        backpressure += 1
                    }
                    other => panic!(
                        "expected Backpressure, got {:?}",
                        other.err().map(|e| e.to_string())
                    ),
                }
            }
        }
        match service
            .session("carol")
            .submit(IrBuildRequest::new(lulesh_project, lulesh_config).reference("probe:carol"))
        {
            Err(ServiceError::Admission(AdmissionError::Rejected { .. })) => rejected += 1,
            other => panic!(
                "expected Rejected, got {:?}",
                other.err().map(|e| e.to_string())
            ),
        }
        open_gate(&release, 1);
        for handle in parked {
            handle.join().expect("probe thread joins");
        }
    });
    gate_handle.wait();
    (backpressure, rejected)
}

/// The fairness phase: four tenants queue identical uncached deploy batches
/// behind a gated single-worker pool, then the queue drains under the given
/// policy. Returns per-tenant completion times measured from gate release.
fn fairness_run(
    policy_name: &str,
    fair: bool,
    gromacs_project: &xaas_buildsys::ProjectSpec,
    gromacs_build: &IrContainerBuild,
) -> FairnessRun {
    const TENANTS: [&str; 4] = ["t0", "t1", "t2", "t3"];
    const BATCH: usize = 3;
    let builder = OrchestratorService::builder()
        .uncached(ImageStore::new())
        .workers(1)
        .limits(ServiceLimits::default().per_tenant(BATCH).global(64));
    let service = if fair {
        builder.policy(WeightedFair::new()).build()
    } else {
        builder.build()
    };
    let (release, gate_handle) = occupy_engine(&service, 1);

    // Tenant i deploys for "its" SIMD flavour so each lane has real, distinct,
    // uncached work; each batch entry is a separate request.
    let flavour = |tenant_index: usize| match tenant_index {
        0 => (SystemModel::ault23(), SimdLevel::Avx512),
        1 => (SystemModel::ault25(), SimdLevel::Avx2_256),
        2 => (SystemModel::ault01_04(), SimdLevel::Avx512),
        _ => (SystemModel::ault25(), SimdLevel::Sse41),
    };

    let mut completion_ms = BTreeMap::new();
    std::thread::scope(|scope| {
        let workers: Vec<_> = TENANTS
            .iter()
            .enumerate()
            .map(|(tenant_index, tenant)| {
                // Stagger admission so submissions enqueue in tenant order and
                // the FIFO drain order is deterministic.
                while service.stats().admitted < (tenant_index * BATCH) as u64 {
                    std::thread::yield_now();
                }
                let session = service.session(*tenant);
                let (system, simd) = flavour(tenant_index);
                scope.spawn(move || {
                    let batch: Vec<_> = (0..BATCH)
                        .map(|_| {
                            let session = session.clone();
                            let (system, simd) = (system.clone(), simd);
                            scope.spawn(move || {
                                session
                                    .submit_wait(
                                        IrDeployRequest::new(
                                            gromacs_build,
                                            gromacs_project,
                                            &system,
                                        )
                                        .selection(
                                            OptionAssignment::new()
                                                .with("GMX_SIMD", simd.gmx_name()),
                                        )
                                        .simd(simd),
                                    )
                                    .expect("fairness deploy succeeds");
                            })
                        })
                        .collect();
                    for request in batch {
                        request.join().expect("batch request joins");
                    }
                })
            })
            .collect();

        // Every request admitted and its graph enqueued behind the gate; open
        // the gate and time each tenant's last completion.
        while service.stats().in_flight < TENANTS.len() * BATCH
            || service
                .orchestrator()
                .engine()
                .queue_stats()
                .waiting_submissions
                < TENANTS.len() * BATCH
        {
            std::thread::yield_now();
        }
        let released = Instant::now();
        open_gate(&release, 1);
        for (tenant, worker) in TENANTS.iter().zip(workers) {
            worker.join().expect("tenant batch joins");
            completion_ms.insert(tenant.to_string(), released.elapsed().as_secs_f64() * 1e3);
        }
    });
    gate_handle.wait();

    // Joins happen in tenant order, so a tenant's recorded time is max(its own
    // completion, all earlier tenants' completions) — the per-tenant *last
    // completion* once re-maximised below. For the spread that distinction is
    // immaterial: max-min over the map is exactly first-finisher vs last.
    let times: Vec<f64> = completion_ms.values().copied().collect();
    let spread = times.iter().cloned().fold(f64::MIN, f64::max)
        - times.iter().cloned().fold(f64::MAX, f64::min);
    FairnessRun {
        policy: policy_name.to_string(),
        tenant_completion_ms: completion_ms,
        completion_spread_ms: spread.max(0.0),
    }
}

/// **Service load**: drive thousands of concurrent mixed build/deploy/fleet
/// requests from 16 tenants through one shared [`OrchestratorService`] on a
/// small worker pool and measure what the nonblocking executor core claims —
/// continuation park/wake traffic absorbing far more concurrency than there
/// are workers, cross-session interleaving (ready-queue depth > 1), typed
/// admission refusals, a fairness win for weighted fair queuing, and
/// byte-identical artifacts vs a sequential single-session baseline.
pub fn service_load() -> ServiceLoadExperiment {
    const TENANTS: usize = 16;
    const REQUESTS_PER_TENANT: usize = 128;
    let lulesh_project = lulesh::project();
    let lulesh_config =
        IrPipelineConfig::sweep_options(&lulesh_project, &["WITH_MPI", "WITH_OPENMP"]);
    let gromacs_project = gromacs::project();
    let gromacs_config = IrPipelineConfig::sweep_options(&gromacs_project, &["GMX_SIMD"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX2_256", "AVX_512"]);

    // Shared IR containers the deploy/fleet requests specialize.
    let warmup = Orchestrator::with_cache(&ActionCache::new(ImageStore::new()));
    let lulesh_build = IrBuildRequest::new(&lulesh_project, &lulesh_config)
        .reference("load:lulesh:ir")
        .submit(&warmup)
        .expect("lulesh IR container builds");
    let gromacs_build = IrBuildRequest::new(&gromacs_project, &gromacs_config)
        .reference("load:gromacs:ir")
        .submit(&warmup)
        .expect("gromacs IR container builds");
    let assets = AppAssets {
        lulesh_project,
        lulesh_config,
        lulesh_build,
        gromacs_project,
        gromacs_config,
        gromacs_build,
    };

    // Sequential baseline: one session replays the stream once.
    let baseline_service = OrchestratorService::builder().workers(2).build();
    let baseline = replay_stream(
        &baseline_service.session("baseline"),
        REQUESTS_PER_TENANT,
        &assets,
    );

    // Mixed-load phase: TENANTS sessions replay the same stream concurrently
    // against one weighted-fair service. The gate holds the pool until every
    // session has work queued, so cross-session interleaving is observed from
    // the first dispatch.
    let service = OrchestratorService::builder()
        .workers(4)
        .policy(WeightedFair::new())
        .limits(ServiceLimits::default().per_tenant(16).global(128))
        .build();
    let (release, gate_handle) = occupy_engine(&service, 4);
    let stats_before = service.orchestrator().engine().queue_stats();
    let sampling = AtomicBool::new(true);
    let (wall_ms, streams, peak_parked): (f64, Vec<StreamArtifacts>, usize) =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..TENANTS)
                .map(|tenant_index| {
                    let session = service.session(format!("tenant{tenant_index}"));
                    let assets = &assets;
                    scope.spawn(move || replay_stream(&session, REQUESTS_PER_TENANT, assets))
                })
                .collect();
            // Sample the peak number of simultaneously parked continuations —
            // concurrency the pool carries without occupying a worker thread.
            let sampler = scope.spawn(|| {
                let mut peak = 0usize;
                while sampling.load(Ordering::Relaxed) {
                    peak = peak.max(service.orchestrator().engine().queue_stats().parked_waiters);
                    std::thread::sleep(Duration::from_micros(500));
                }
                peak
            });
            while service.stats().in_flight < TENANTS
                || service
                    .orchestrator()
                    .engine()
                    .queue_stats()
                    .waiting_submissions
                    < TENANTS
            {
                std::thread::yield_now();
            }
            let started = Instant::now();
            open_gate(&release, 4);
            let streams = handles
                .into_iter()
                .map(|handle| handle.join().expect("tenant stream joins"))
                .collect();
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            sampling.store(false, Ordering::Relaxed);
            let peak_parked = sampler.join().expect("sampler joins");
            (wall_ms, streams, peak_parked)
        });
    gate_handle.wait();

    let requests = TENANTS * REQUESTS_PER_TENANT;
    let byte_identical = streams
        .iter()
        .all(|stream| stream.layers == baseline.layers);
    let max_ready_submissions = streams
        .iter()
        .map(|stream| stream.max_ready_submissions)
        .max()
        .unwrap_or(0);
    let latencies: Vec<u64> = streams
        .iter()
        .flat_map(|stream| stream.latency_micros.iter().copied())
        .collect();
    let cache = service.cache_stats();
    let admitted = service.stats().admitted;

    // Deterministic contention on the still-loaded service: duplicates of one
    // cold key park as continuations instead of blocking workers.
    let probe_peak = park_probe(&service);
    let stats_after = service.orchestrator().engine().queue_stats();
    service.drain_wait();

    let (backpressure_errors, rejected_errors) =
        admission_probe(&assets.lulesh_project, &assets.lulesh_config);
    let fifo = fairness_run(
        "fifo",
        false,
        &assets.gromacs_project,
        &assets.gromacs_build,
    );
    let weighted_fair = fairness_run(
        "weighted-fair",
        true,
        &assets.gromacs_project,
        &assets.gromacs_build,
    );
    let narrowed = weighted_fair.completion_spread_ms < fifo.completion_spread_ms;

    let mix_count = |matcher: fn(&MixedRequest) -> bool| {
        (0..REQUESTS_PER_TENANT)
            .filter(|&index| matcher(&mixed_request(index)))
            .count()
            * TENANTS
    };
    ServiceLoadExperiment {
        tenants: TENANTS,
        requests,
        build_requests: mix_count(|r| {
            matches!(r, MixedRequest::LuleshBuild | MixedRequest::GromacsBuild)
        }),
        deploy_requests: mix_count(|r| {
            matches!(
                r,
                MixedRequest::LuleshDeploy { .. } | MixedRequest::GromacsDeploy { .. }
            )
        }),
        fleet_requests: mix_count(|r| matches!(r, MixedRequest::Fleet)),
        workers: 4,
        wall_ms,
        throughput_rps: requests as f64 / (wall_ms / 1e3),
        latency: LatencySummary::from_micros(latencies),
        max_ready_submissions,
        parked_waiters: peak_parked.max(probe_peak),
        parks: stats_after.parks - stats_before.parks,
        wakeups: stats_after.wakeups - stats_before.wakeups,
        cache_hit_rate: cache.hit_rate(),
        byte_identical,
        admitted,
        backpressure_errors,
        rejected_errors,
        fairness: FairnessComparison {
            fifo,
            weighted_fair,
            narrowed,
        },
    }
}

/// The per-PR performance snapshot `reproduce snapshot` writes to
/// `BENCH_<pr>.json`: the headline throughput/latency/cache numbers whose
/// trajectory the ROADMAP tracks across PRs.
#[derive(Debug, Clone, Serialize)]
pub struct BenchSnapshot {
    /// The PR this snapshot belongs to.
    pub pr: u32,
    /// Service load: throughput, latency, interleaving, fairness.
    pub service: ServiceLoadExperiment,
    /// Fleet specialization cache effectiveness (hit rates, action counts).
    pub fleet_hit_rate: f64,
    /// Warm-rerun hit rate of the fleet cache (1.0 = fully absorbed).
    pub fleet_warm_rerun_hit_rate: f64,
    /// Actions the cold per-system deployments executed.
    pub fleet_cold_actions: u64,
    /// Actions the shared-cache fleet run executed.
    pub fleet_actions: u64,
    /// Engine-parallelism stage depths (serial vs DAG critical path).
    pub engine_serial_stages: usize,
    /// The engine DAG's critical-path depth with parallel workers.
    pub engine_parallel_stage_depth: usize,
    /// Scalar SHA-256 throughput in MB/s over a 1 MiB buffer (see the
    /// `digest_throughput` Criterion bench for the per-size breakdown).
    pub digest_mb_per_s: f64,
    /// Bytes the content-addressed store deduplicated across the fleet run
    /// (stored once, referenced many times — never re-copied or re-hashed).
    pub store_dedup_bytes_avoided: u64,
    /// Pre-submission analyzer cost in nanoseconds per graph node, measured
    /// over a union graph shaped like the 2,048-request mixed load (see
    /// [`analysis_overhead`](crate::analysis::analysis_overhead)).
    pub analysis_ns_per_node: f64,
    /// Nodes in the analyzer-overhead probe graph.
    pub analysis_nodes: usize,
    /// Warm-restart over the persistent disk tier: wall times, per-tier hit
    /// ratios, and the zero-recompute claim (see
    /// [`warm_restart`](crate::experiments::warm_restart)).
    pub warm_restart: crate::experiments::WarmRestartExperiment,
}

/// Scalar SHA-256 throughput in MB/s over a 1 MiB buffer, amortised across
/// enough passes to dominate timer noise.
pub fn digest_throughput_mb_per_s() -> f64 {
    const SIZE: usize = 1 << 20;
    const PASSES: u32 = 32;
    let buffer: Vec<u8> = (0..SIZE).map(|i| (i % 251) as u8).collect();
    // Warm-up pass so page faults and cache misses stay out of the timing.
    std::hint::black_box(xaas_container::Digest::of_bytes(&buffer));
    let started = Instant::now();
    for _ in 0..PASSES {
        std::hint::black_box(xaas_container::Digest::of_bytes(std::hint::black_box(
            &buffer,
        )));
    }
    let elapsed = started.elapsed().as_secs_f64();
    (SIZE as f64 * f64::from(PASSES)) / elapsed / 1e6
}

/// Assemble the PR-10 snapshot from the service-load, fleet, engine,
/// analyzer-overhead, and warm-restart experiments.
pub fn bench_snapshot() -> BenchSnapshot {
    let service = service_load();
    let fleet = crate::experiments::fleet_specialization();
    let engine = crate::experiments::engine_parallelism();
    let analysis = crate::analysis::analysis_overhead();
    let warm_restart = crate::experiments::warm_restart();
    BenchSnapshot {
        pr: 10,
        service,
        fleet_hit_rate: fleet.fleet_hit_rate,
        fleet_warm_rerun_hit_rate: fleet.warm_rerun_hit_rate,
        fleet_cold_actions: fleet.cold_actions,
        fleet_actions: fleet.fleet_actions,
        engine_serial_stages: engine.serial_stages,
        engine_parallel_stage_depth: engine.parallel_stage_depth,
        digest_mb_per_s: digest_throughput_mb_per_s(),
        store_dedup_bytes_avoided: fleet.store_dedup_bytes,
        analysis_ns_per_node: analysis.ns_per_node,
        analysis_nodes: analysis.nodes,
        warm_restart,
    }
}
