//! `reproduce` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce all                 # everything below
//! reproduce fig2                # Figure 2: vectorization impact
//! reproduce table1              # Table 1: application catalogue
//! reproduce table2              # Table 2: portability levels
//! reproduce table3              # Table 3: libfabric provider features
//! reproduce table4              # Table 4: LLM specialization discovery
//! reproduce table4-generalization
//! reproduce fig10               # GROMACS portability
//! reproduce fig11               # llama.cpp portability
//! reproduce fig12-cpu           # IR containers, CPU sweep
//! reproduce fig12-gpu           # IR containers, GPU
//! reproduce tu-reduction        # Section 6.4 statistics + ablations
//! reproduce fleet               # fleet specialization: cold vs shared-cache, union vs sequential (JSON)
//! reproduce engine              # action-graph engine: parallel vs serial build (JSON)
//! reproduce service             # multi-tenant service load: throughput, latency, fairness (JSON)
//! reproduce restart             # warm restart over the persistent disk tier (JSON)
//! reproduce analyze             # static analysis of the driver graphs; exits nonzero on any deny (JSON)
//! reproduce snapshot            # write the per-PR BENCH_<pr>.json performance snapshot
//! reproduce network             # Section 6.5 bandwidth
//! reproduce gpu-compat          # Figure 9 compatibility rules
//! reproduce intersection        # Figure 4(c) feature intersection
//! reproduce hypotheses          # Hypotheses 1 and 2
//! ```

use xaas::prelude::*;
use xaas_bench::render;
use xaas_bench::{self as experiments};

fn print_table1() {
    println!("== Table 1: specialization points of representative HPC applications ==");
    for entry in xaas_specs::table1() {
        println!(
            "  {:<22} {:<18} GPU: {:<38} Parallelism: {:<18} Vectorization: {}",
            entry.name,
            entry.domain,
            if entry.gpu_acceleration.is_empty() {
                "-".to_string()
            } else {
                entry.gpu_acceleration.join(", ")
            },
            entry.parallelism.join(", "),
            entry.vectorization
        );
    }
}

fn print_table2() {
    println!("== Table 2: levels of code portability ==");
    for entry in table2() {
        println!(
            "  {:<12?} {:<24} {:<42} {}",
            entry.level, entry.technology, entry.description, entry.approach
        );
    }
}

fn print_table3() {
    println!("== Table 3: libfabric 2.0 provider capabilities ==");
    let matrix = xaas_hpcsim::capability_matrix();
    let providers: Vec<_> = matrix.keys().copied().collect();
    print!("  {:<22}", "Feature");
    for provider in &providers {
        print!("{:>10}", provider.as_str());
    }
    println!();
    for feature in xaas_hpcsim::Feature::all() {
        print!("  {:<22}", feature.label());
        for provider in &providers {
            print!("{:>10}", matrix[provider][feature].symbol());
        }
        println!();
    }
}

fn print_hypotheses() {
    println!("== Hypotheses 1 and 2 (Section 4.2) ==");
    for row in experiments::tu_reduction() {
        println!(
            "  H1 [{}]: T' = {} < sum Ti = {}  (reduction {:.1}%)",
            row.sweep, row.ir_files_built, row.total_translation_units, row.reduction_percent
        );
    }
    for (name, project) in [
        ("mini-gromacs", xaas_apps::gromacs::project()),
        ("mini-lulesh", xaas_apps::lulesh::project()),
        ("mini-llamacpp", xaas_apps::llamacpp::project()),
    ] {
        let report = hypothesis2(&project);
        println!(
            "  H2 [{name}]: |S_I| = {}, |S_D| = {}, independent fraction {:.2} -> holds: {}",
            report.system_independent,
            report.system_dependent,
            report.independent_fraction,
            report.holds
        );
    }
}

fn run(section: &str) {
    match section {
        "fig2" => print!(
            "{}",
            render::render_panels("Figure 2: vectorization impact", &experiments::figure2())
        ),
        "table1" => print_table1(),
        "table2" => print_table2(),
        "table3" => print_table3(),
        "table4" => print!("{}", render::render_table4(&experiments::table4(10))),
        "table4-generalization" => {
            print!(
                "{}",
                render::render_generalization(&experiments::table4_generalization(10))
            )
        }
        "fig10" => print!(
            "{}",
            render::render_panels(
                "Figure 10: GROMACS performance portability",
                &experiments::figure10()
            )
        ),
        "fig11" => print!(
            "{}",
            render::render_panels(
                "Figure 11: llama.cpp performance portability",
                &experiments::figure11()
            )
        ),
        "fig12-cpu" => print!(
            "{}",
            render::render_panels(
                "Figure 12 (top): IR containers on CPU",
                &experiments::figure12_cpu()
            )
        ),
        "fig12-gpu" => print!(
            "{}",
            render::render_panels(
                "Figure 12 (bottom): IR containers on GPU",
                &experiments::figure12_gpu()
            )
        ),
        "tu-reduction" => print!("{}", render::render_reduction(&experiments::tu_reduction())),
        "fleet" => {
            // Banner on stderr so stdout stays machine-readable JSON (`reproduce fleet | jq .`).
            eprintln!("== Fleet specialization: 4 systems from one IR container ==");
            let experiment = experiments::fleet_specialization();
            println!(
                "{}",
                serde_json::to_string_pretty(&experiment).expect("fleet experiment serialises")
            );
        }
        "engine" => {
            // Banner on stderr so stdout stays machine-readable JSON (`reproduce engine | jq .`).
            eprintln!("== Action-graph engine: parallel vs serial IR-container build ==");
            let experiment = experiments::engine_parallelism();
            println!(
                "{}",
                serde_json::to_string_pretty(&experiment).expect("engine experiment serialises")
            );
        }
        "service" => {
            // Banner on stderr so stdout stays machine-readable JSON (`reproduce service | jq .`).
            eprintln!("== Multi-tenant service: concurrent mixed load from 16 sessions ==");
            let experiment = experiments::service_load();
            println!(
                "{}",
                serde_json::to_string_pretty(&experiment).expect("service experiment serialises")
            );
        }
        "restart" => {
            // Banner on stderr so stdout stays machine-readable JSON (`reproduce restart | jq .`).
            eprintln!("== Warm restart: GROMACS fleet replayed from the disk tier ==");
            let experiment = experiments::warm_restart();
            println!(
                "{}",
                serde_json::to_string_pretty(&experiment).expect("restart experiment serialises")
            );
        }
        "analyze" => {
            // Banner on stderr so stdout stays machine-readable JSON (`reproduce analyze | jq .`).
            eprintln!("== Static analysis: GROMACS/LULESH build, deploy, and fleet graphs ==");
            let section = experiments::analyze_driver_graphs();
            println!(
                "{}",
                serde_json::to_string_pretty(&section).expect("analyze section serialises")
            );
            if !section.clean {
                eprintln!(
                    "{} deny-level diagnostic(s) in the driver graphs",
                    section.total_denies
                );
                std::process::exit(1);
            }
        }
        "snapshot" => {
            eprintln!("== Per-PR performance snapshot ==");
            let snapshot = experiments::bench_snapshot();
            let json = serde_json::to_string_pretty(&snapshot).expect("bench snapshot serialises");
            let path = format!("BENCH_{}.json", snapshot.pr);
            std::fs::write(&path, format!("{json}\n")).expect("snapshot file writes");
            eprintln!("wrote {path}");
            println!("{json}");
        }
        "network" => print!("{}", render::render_network(&experiments::network())),
        "gpu-compat" => print!(
            "{}",
            render::render_gpu_compat(&experiments::gpu_compatibility())
        ),
        "intersection" => print!(
            "{}",
            render::render_intersection(&experiments::intersection_summary())
        ),
        "hypotheses" => print_hypotheses(),
        other => {
            eprintln!("unknown section `{other}`; see --help");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sections = [
        "table1",
        "table2",
        "table3",
        "fig2",
        "table4",
        "table4-generalization",
        "fig10",
        "fig11",
        "fig12-cpu",
        "fig12-gpu",
        "tu-reduction",
        "fleet",
        "engine",
        "service",
        "restart",
        "analyze",
        "network",
        "gpu-compat",
        "intersection",
        "hypotheses",
    ];
    match args.first().map(String::as_str) {
        None | Some("--help") | Some("-h") => {
            println!("usage: reproduce <section>|all");
            // `snapshot` is on demand only (writes BENCH_<pr>.json), not part of `all`.
            println!("sections: {}, snapshot", sections.join(", "));
        }
        Some("all") => {
            for section in sections {
                run(section);
                println!();
            }
        }
        Some(section) => run(section),
    }
}
