//! Content digests for the container substrate.
//!
//! OCI images address every blob (layer, config, manifest) by a SHA-256 digest of its
//! serialized bytes. We implement SHA-256 here directly (FIPS 180-4) so the substrate has
//! no external cryptography dependency; the values are bit-exact with any other SHA-256
//! implementation, which the unit tests verify against published test vectors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// SHA-256 round constants (first 32 bits of the fractional parts of the cube roots of the
/// first 64 prime numbers).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values (first 32 bits of the fractional parts of the square roots of the
/// first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bits: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a hasher in the initial state.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Feed bytes into the hasher.
    ///
    /// Full 64-byte blocks are compressed straight from the input slice — only a
    /// trailing partial block is staged in the internal buffer.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        let mut input = data;
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                compress(&mut self.state, &self.buffer);
                self.buffered = 0;
            }
        }
        let mut blocks = input.chunks_exact(64);
        for block in &mut blocks {
            compress(&mut self.state, block.try_into().expect("64-byte block"));
        }
        let rest = blocks.remainder();
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Finish and produce the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let length_bits = self.length_bits;
        // Append the 0x80 terminator, zero padding, and the 64-bit big-endian length.
        self.update_padding_byte(0x80);
        while self.buffered != 56 {
            self.update_padding_byte(0x00);
        }
        let len_bytes = length_bits.to_be_bytes();
        for b in len_bytes {
            self.update_padding_byte(b);
        }
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Push one padding byte without affecting the message length counter.
    fn update_padding_byte(&mut self, byte: u8) {
        self.buffer[self.buffered] = byte;
        self.buffered += 1;
        if self.buffered == 64 {
            compress(&mut self.state, &self.buffer);
            self.buffered = 0;
        }
    }
}

/// `σ0` of the message schedule.
#[inline(always)]
fn small_sigma0(x: u32) -> u32 {
    x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
}

/// `σ1` of the message schedule.
#[inline(always)]
fn small_sigma1(x: u32) -> u32 {
    x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
}

/// One SHA-256 compression. A free function over disjoint `state`/`block` borrows so
/// [`Sha256::update`] can feed full blocks straight from the input slice, and partial
/// blocks from the internal buffer, without staging copies.
///
/// The 64 rounds are fully unrolled as eight 8-round groups whose working variables are
/// rotated in the macro arguments, so the per-round eight-way shuffle of `a…h` costs
/// nothing at runtime; the message schedule lives in a rolling 16-word window updated in
/// place instead of a precomputed 64-word array.
// The ring-buffer writes of rounds 62–63 have no later reader; keeping the round
// macro uniform is worth the two dead stores (the optimizer drops them anyway).
#[allow(unused_assignments)]
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 16];
    for (word, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
        *word = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $t:expr) => {{
            const T: usize = $t;
            let wt = if T < 16 {
                w[T & 15]
            } else {
                let next = w[T & 15]
                    .wrapping_add(small_sigma0(w[(T + 1) & 15]))
                    .wrapping_add(w[(T + 9) & 15])
                    .wrapping_add(small_sigma1(w[(T + 14) & 15]));
                w[T & 15] = next;
                next
            };
            let t1 = $h
                .wrapping_add($e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25))
                .wrapping_add(($e & $f) ^ (!$e & $g))
                .wrapping_add(K[T])
                .wrapping_add(wt);
            let t2 = ($a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22))
                .wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(t2);
        }};
    }

    macro_rules! eight_rounds {
        ($t:expr) => {{
            round!(a, b, c, d, e, f, g, h, $t);
            round!(h, a, b, c, d, e, f, g, $t + 1);
            round!(g, h, a, b, c, d, e, f, $t + 2);
            round!(f, g, h, a, b, c, d, e, $t + 3);
            round!(e, f, g, h, a, b, c, d, $t + 4);
            round!(d, e, f, g, h, a, b, c, $t + 5);
            round!(c, d, e, f, g, h, a, b, $t + 6);
            round!(b, c, d, e, f, g, h, a, $t + 7);
        }};
    }

    eight_rounds!(0);
    eight_rounds!(8);
    eight_rounds!(16);
    eight_rounds!(24);
    eight_rounds!(32);
    eight_rounds!(40);
    eight_rounds!(48);
    eight_rounds!(56);

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Compute the SHA-256 digest of `data` in one call.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// A content digest in the OCI `algorithm:hex` notation, e.g. `sha256:abcd…`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Digest(String);

impl Digest {
    /// Digest of raw bytes using SHA-256.
    pub fn of_bytes(data: &[u8]) -> Self {
        Digest(format!("sha256:{}", hex(&sha256(data))))
    }

    /// Digest of a UTF-8 string.
    pub fn of_str(data: &str) -> Self {
        Self::of_bytes(data.as_bytes())
    }

    /// Parse a digest from its textual representation, validating the format.
    pub fn parse(text: &str) -> Result<Self, DigestError> {
        let Some((algo, hexpart)) = text.split_once(':') else {
            return Err(DigestError::MissingSeparator);
        };
        if algo != "sha256" {
            return Err(DigestError::UnsupportedAlgorithm(algo.to_string()));
        }
        if hexpart.len() != 64 || !hexpart.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(DigestError::InvalidHex);
        }
        Ok(Digest(format!("sha256:{}", hexpart.to_ascii_lowercase())))
    }

    /// The algorithm prefix (always `sha256` in this substrate).
    pub fn algorithm(&self) -> &str {
        self.0.split(':').next().unwrap_or_default()
    }

    /// The hexadecimal payload of the digest.
    pub fn hex(&self) -> &str {
        self.0.split(':').nth(1).unwrap_or_default()
    }

    /// Full `algorithm:hex` form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// A short (12 hex character) prefix, convenient for image tags and logs.
    pub fn short(&self) -> &str {
        &self.hex()[..12.min(self.hex().len())]
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.0)
    }
}

/// Errors produced when parsing digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DigestError {
    /// The `algorithm:hex` separator is missing.
    MissingSeparator,
    /// Only sha256 is supported by this substrate.
    UnsupportedAlgorithm(String),
    /// The hexadecimal part is malformed.
    InvalidHex,
}

impl fmt::Display for DigestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DigestError::MissingSeparator => write!(f, "digest is missing the ':' separator"),
            DigestError::UnsupportedAlgorithm(a) => write!(f, "unsupported digest algorithm: {a}"),
            DigestError::InvalidHex => write!(f, "digest hex payload is malformed"),
        }
    }
}

impl std::error::Error for DigestError {}

/// Hex-encode a byte slice (lowercase).
pub fn hex(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_empty_matches_fips_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc_matches_fips_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message_matches_fips_vector() {
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(
            hex(&sha256(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a_matches_fips_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_and_oneshot_agree() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = sha256(&data);
        for split in [0usize, 1, 63, 64, 65, 127, 4096, 9999, 10_000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split} diverged");
        }
    }

    #[test]
    fn unaligned_and_odd_chunked_inputs_hash_identically() {
        // Hash from an offset slice (unaligned start) in odd-sized chunks: the
        // direct-from-input block path must agree with the one-shot result.
        let data: Vec<u8> = (0..8192u32).map(|i| (i as u8).wrapping_mul(31)).collect();
        let oneshot = sha256(&data[3..]);
        let mut h = Sha256::new();
        for chunk in data[3..].chunks(97) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn digest_format_and_parse_roundtrip() {
        let d = Digest::of_str("hello world");
        assert!(d.as_str().starts_with("sha256:"));
        assert_eq!(d.hex().len(), 64);
        let parsed = Digest::parse(d.as_str()).unwrap();
        assert_eq!(parsed, d);
        assert_eq!(d.algorithm(), "sha256");
        assert_eq!(d.short().len(), 12);
    }

    #[test]
    fn digest_parse_rejects_malformed_inputs() {
        assert_eq!(
            Digest::parse("deadbeef"),
            Err(DigestError::MissingSeparator)
        );
        assert_eq!(
            Digest::parse("md5:aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
            Err(DigestError::UnsupportedAlgorithm("md5".into()))
        );
        assert_eq!(Digest::parse("sha256:zzzz"), Err(DigestError::InvalidHex));
        assert_eq!(Digest::parse("sha256:abcd"), Err(DigestError::InvalidHex));
    }

    #[test]
    fn different_content_different_digest() {
        assert_ne!(Digest::of_str("a"), Digest::of_str("b"));
        assert_eq!(Digest::of_str("a"), Digest::of_str("a"));
    }

    #[test]
    fn digest_serde_is_transparent_string() {
        let d = Digest::of_str("x");
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(json, format!("\"{}\"", d.as_str()));
        let back: Digest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
