//! The staged action-graph engine: one executor for every XaaS pipeline.
//!
//! The paper's source and IR containers are two points on one pipeline —
//! preprocess → (OpenMP-aware dedup) → lower-to-IR → specialize → link — and this
//! module makes that pipeline an explicit, cache-aware artifact instead of three
//! near-duplicate monolithic functions. The pieces:
//!
//! * [`graph`] — [`ActionGraph`]: a DAG of [`ActionKind`]-tagged nodes with explicit
//!   dependency edges, built stage by stage by the pipeline drivers;
//! * [`executor`] — a worker pool that runs the ready frontier across threads,
//!   routes keyed nodes through a [`CacheBackend`]
//!   (an [`ActionCache`] or the always-compute
//!   [`NoCache`]), and isolates failures to the failed
//!   node's transitive dependents;
//! * [`policy`] — pluggable [`SchedulingPolicy`]s deciding dispatch order and
//!   per-kind concurrency: [`Fifo`] (default) or [`CriticalPathFirst`] (weight
//!   nodes by per-kind cost, optionally bound e.g. `sd-compile` slots);
//! * [`trace`] — [`ActionTrace`]: a deterministic, node-ordered record of what ran
//!   and what the cache absorbed, from which the historical [`ActionSummary`]
//!   counters are derived.
//!
//! The drivers behind [`ir_container`](crate::ir_container),
//! [`deploy`](crate::deploy), [`source_container`](crate::source_container), and
//! [`scheduler`](crate::scheduler) all construct graphs and submit them to one
//! shared [`Engine`] — owned, in the public API, by an
//! [`Orchestrator`](crate::orchestrator::Orchestrator); intra-build parallelism
//! (compiling the translation units of a configuration sweep concurrently) falls
//! out of the executor rather than being special-cased per pipeline.
//!
//! ```
//! use xaas::engine::{ActionGraph, ActionKind, Engine};
//! use xaas_container::{ImageStore, NoCache};
//! use std::sync::Arc;
//!
//! let engine = Engine::new(Arc::new(NoCache::new(ImageStore::new())));
//! let mut graph: ActionGraph<'_, std::convert::Infallible> = ActionGraph::new();
//! let hello = graph.add(ActionKind::Preprocess, "hello", &[], |_| Ok(b"hi".to_vec()));
//! let shout = graph.add(ActionKind::Link, "shout", &[hello], |inputs| {
//!     Ok(inputs.dep(0).to_ascii_uppercase())
//! });
//! let run = engine.run(graph);
//! assert_eq!(run.output(shout), Some(&b"HI"[..]));
//! ```

pub mod executor;
pub mod graph;
pub mod plan;
pub mod policy;
pub mod trace;

pub use executor::{ActionOutputs, GraphRun, JobFailure, NodeInfo, NodeOutcome};
pub use graph::{ActionGraph, ActionId, ActionInputs};
pub use plan::{add_commit_action, KeyedActionPlanner, LinkSlot, PreprocessPlanner};
pub use policy::{CriticalPathFirst, Fifo, PolicyError, SchedulingPolicy};
pub use trace::{ActionKind, ActionRecord, ActionSummary, ActionTrace};

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use xaas_container::{ActionCache, CacheBackend, CacheStats, ImageStore, NoCache};

/// The shared execution engine: a worker pool, a cache backend, and a
/// [`SchedulingPolicy`].
///
/// Cloning is cheap (the backend, policy, and dispatch counter are shared); every
/// pipeline entry point of the crate ultimately executes through an `Engine`.
#[derive(Clone)]
pub struct Engine {
    cache: Arc<dyn CacheBackend>,
    workers: usize,
    policy: Arc<dyn SchedulingPolicy>,
    /// Dispatch counter shared across runs (and clones), so `schedule_seq` values in
    /// merged traces preserve the global execution order.
    seq: Arc<AtomicU64>,
}

impl Engine {
    /// An engine over `cache` with a worker count derived from the host parallelism
    /// (clamped to `[2, 8]` — actions are small compile steps) and the default
    /// [`Fifo`] policy.
    pub fn new(cache: Arc<dyn CacheBackend>) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        Self {
            cache,
            workers,
            policy: Arc::new(Fifo),
            seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// An engine that memoizes every keyed action in `cache`.
    pub fn cached(cache: &ActionCache) -> Self {
        Self::new(Arc::new(cache.clone()))
    }

    /// An engine that never caches: every action executes, artifacts and images land
    /// in `store`. This is the explicit replacement for handing the pipelines a
    /// private empty [`ActionCache`].
    pub fn uncached(store: &ImageStore) -> Self {
        Self::new(Arc::new(NoCache::new(store.clone())))
    }

    /// Override the worker count (at least 1). One worker executes the graph with no
    /// concurrency — the reference schedule the property tests compare parallel runs
    /// against. (Even then, execution order is dependency-driven, not node order;
    /// outputs and traces are assembled in node order regardless of schedule.)
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Replace the scheduling policy (dispatch order and per-kind concurrency caps
    /// of the ready queue). The policy changes *when* actions run, never what they
    /// produce. Note the raw engine clamps zero concurrency caps to one rather than
    /// deadlock; submit through an
    /// [`Orchestrator`](crate::orchestrator::Orchestrator) to have invalid policies
    /// rejected as typed errors instead.
    pub fn with_policy(self, policy: impl SchedulingPolicy + 'static) -> Self {
        self.with_policy_arc(Arc::new(policy))
    }

    /// [`with_policy`](Self::with_policy) for an already-shared policy.
    pub fn with_policy_arc(mut self, policy: Arc<dyn SchedulingPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The scheduling policy runs execute under.
    pub fn policy(&self) -> &dyn SchedulingPolicy {
        self.policy.as_ref()
    }

    /// The cache backend every keyed action routes through.
    pub fn cache(&self) -> &dyn CacheBackend {
        self.cache.as_ref()
    }

    /// The backend's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.backend_stats()
    }

    /// The content-addressed store behind the cache (images are committed here).
    pub fn store(&self) -> &ImageStore {
        self.cache.store()
    }

    /// Execute `graph`: run the ready frontier across the worker pool under the
    /// engine's scheduling policy, route keyed nodes through the cache, record a
    /// deterministic [`ActionTrace`], and isolate failures to their transitive
    /// dependents.
    pub fn run<'env, E: Send>(&self, graph: ActionGraph<'env, E>) -> GraphRun<E> {
        executor::run_graph(
            graph,
            self.cache.as_ref(),
            self.workers,
            self.policy.as_ref(),
            self.seq.clone(),
        )
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("policy", &self.policy.name())
            .field("cache", &self.cache.backend_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use xaas_container::BuildKey;

    fn key(name: &str) -> BuildKey {
        BuildKey::new(name, "xir.ir", "opts", "toolchain-test")
    }

    #[test]
    fn diamond_graph_delivers_dependency_outputs_in_order() {
        let engine = Engine::uncached(&ImageStore::new()).with_workers(4);
        let mut graph: ActionGraph<'_, std::convert::Infallible> = ActionGraph::new();
        let left = graph.add(ActionKind::Preprocess, "left", &[], |_| Ok(b"L".to_vec()));
        let right = graph.add(ActionKind::Preprocess, "right", &[], |_| Ok(b"R".to_vec()));
        let join = graph.add(ActionKind::Link, "join", &[left, right], |inputs| {
            let mut combined = inputs.dep(0).to_vec();
            combined.extend_from_slice(inputs.dep(1));
            Ok(combined)
        });
        let commit = graph.add(ActionKind::Commit, "commit", &[join], |inputs| {
            assert_eq!(inputs.len(), 1);
            Ok(inputs.dep(0).to_vec())
        });
        let run = engine.run(graph);
        assert!(run.succeeded());
        assert_eq!(run.output(commit), Some(&b"LR"[..]));
        // Trace is in node order with the declared kinds, regardless of scheduling.
        let kinds: Vec<ActionKind> = run.trace.records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ActionKind::Preprocess,
                ActionKind::Preprocess,
                ActionKind::Link,
                ActionKind::Commit
            ]
        );
        assert_eq!(run.trace.stage_depth, 3);
    }

    #[test]
    fn failures_skip_dependents_but_not_independent_work() {
        let engine = Engine::uncached(&ImageStore::new()).with_workers(2);
        let mut graph: ActionGraph<'_, String> = ActionGraph::new();
        let bad = graph.add(ActionKind::Preprocess, "bad", &[], |_| {
            Err("boom".to_string())
        });
        let downstream = graph.add(ActionKind::Link, "downstream", &[bad], |_| Ok(vec![]));
        let independent = graph.add(ActionKind::Preprocess, "independent", &[], |_| {
            Ok(b"fine".to_vec())
        });
        let run = engine.run(graph);
        assert!(!run.succeeded());
        assert!(matches!(&run.outcomes[bad], NodeOutcome::Failed(e) if e == "boom"));
        assert!(matches!(
            run.outcomes[downstream],
            NodeOutcome::Skipped { root } if root == bad
        ));
        assert_eq!(run.output(independent), Some(&b"fine"[..]));
        // into_outputs surfaces the typed error of the failing node.
        assert_eq!(run.into_outputs().unwrap_err(), "boom");
    }

    #[test]
    fn panicking_actions_propagate_to_the_caller_instead_of_hanging() {
        let engine = Engine::uncached(&ImageStore::new()).with_workers(3);
        let mut graph: ActionGraph<'_, String> = ActionGraph::new();
        graph.add(ActionKind::Preprocess, "fine", &[], |_| Ok(vec![1]));
        let boom = graph.add(ActionKind::Preprocess, "boom", &[], |_| {
            panic!("kaboom in action")
        });
        graph.add(ActionKind::Link, "downstream", &[boom], |_| Ok(vec![]));
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(graph)))
            .expect_err("the action panic must re-raise on the caller thread");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("kaboom in action")
        );

        // Keyed actions behave the same: the panic crosses the cache backend.
        let mut keyed: ActionGraph<'_, String> = ActionGraph::new();
        keyed.add_cached(ActionKind::IrLower, "boom", key("p"), &[], |_| {
            panic!("keyed kaboom")
        });
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(keyed)))
            .expect_err("keyed action panic must re-raise");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("keyed kaboom")
        );
    }

    #[test]
    fn keyed_actions_route_through_the_cache_backend() {
        let store = ImageStore::new();
        let cache = ActionCache::new(store.clone());
        let engine = Engine::cached(&cache).with_workers(3);
        let calls = AtomicUsize::new(0);

        fn build<'env>(
            label: &str,
            calls: &'env AtomicUsize,
        ) -> ActionGraph<'env, std::convert::Infallible> {
            let mut graph = ActionGraph::new();
            for unit in ["a", "b", "c"] {
                graph.add_cached(
                    ActionKind::IrLower,
                    format!("{label}:{unit}"),
                    key(unit),
                    &[],
                    move |_| {
                        calls.fetch_add(1, Ordering::SeqCst);
                        Ok(format!("ir:{unit}").into_bytes())
                    },
                );
            }
            graph
        }
        let cold = engine.run(build("cold", &calls));
        assert!(cold.succeeded());
        assert_eq!(
            cold.trace.summary(),
            ActionSummary {
                executed: 3,
                cached: 0
            }
        );
        let warm = engine.run(build("warm", &calls));
        assert_eq!(
            warm.trace.summary(),
            ActionSummary {
                executed: 0,
                cached: 3
            }
        );
        assert_eq!(calls.load(Ordering::SeqCst), 3, "warm run computes nothing");
        assert_eq!(warm.output(0), cold.output(0));
        // Identity sets agree even though the cached flags differ.
        assert_ne!(cold.trace.records[0].label, warm.trace.records[0].label);
        assert_eq!(
            cold.trace.records[0].key_digest,
            warm.trace.records[0].key_digest
        );
    }

    #[test]
    fn critical_path_first_dispatches_heavy_chains_before_light_ones() {
        // Two chains from an empty frontier: a heavy ir-lower chain added *after* a
        // cheap preprocess node. FIFO dispatches in node order; critical-path-first
        // must invert it. One worker keeps the dispatch order fully deterministic.
        fn build() -> ActionGraph<'static, std::convert::Infallible> {
            let mut graph = ActionGraph::new();
            let cheap = graph.add(ActionKind::Preprocess, "cheap", &[], |_| Ok(vec![1]));
            let heavy = graph.add(ActionKind::IrLower, "heavy", &[], |_| Ok(vec![2]));
            graph.add(ActionKind::Link, "tail", &[cheap, heavy], |_| Ok(vec![3]));
            graph
        }
        let fifo = Engine::uncached(&ImageStore::new()).with_workers(1);
        let fifo_run = fifo.run(build());
        let cpf = Engine::uncached(&ImageStore::new())
            .with_workers(1)
            .with_policy(CriticalPathFirst::new());
        let cpf_run = cpf.run(build());
        // Same node-ordered trace records and outputs...
        assert_eq!(fifo_run.trace.records, cpf_run.trace.records);
        assert_eq!(fifo_run.output(2), cpf_run.output(2));
        // ...but the observable dispatch order differs and names the policy.
        assert_eq!(fifo_run.trace.policy, "fifo");
        assert_eq!(cpf_run.trace.policy, "critical-path-first");
        let first = |run: &GraphRun<std::convert::Infallible>| {
            run.trace.execution_order().first().cloned().unwrap()
        };
        assert!(first(&fifo_run).starts_with("preprocess|cheap"));
        assert!(first(&cpf_run).starts_with("ir-lower|heavy"));
    }

    #[test]
    fn concurrency_caps_bound_in_flight_actions_without_changing_outputs() {
        use std::sync::atomic::AtomicUsize;
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let mut graph: ActionGraph<'_, std::convert::Infallible> = ActionGraph::new();
        for unit in 0..12 {
            let in_flight = &in_flight;
            let peak = &peak;
            graph.add(
                ActionKind::SdCompile,
                format!("sd{unit:02}"),
                &[],
                move |_| {
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    Ok(vec![unit as u8])
                },
            );
        }
        let engine = Engine::uncached(&ImageStore::new())
            .with_workers(6)
            .with_policy(CriticalPathFirst::new().with_cap(ActionKind::SdCompile, 2));
        let run = engine.run(graph);
        assert!(run.succeeded());
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "cap of 2 exceeded: {} sd-compiles in flight",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(run.trace.len(), 12);
        // Deferred nodes accumulate queue wait, and every record carries its seq.
        let waits = run.trace.queue_wait_micros_by_kind();
        assert!(waits[&ActionKind::SdCompile] > 0);
    }

    #[test]
    fn zero_caps_are_clamped_to_one_instead_of_deadlocking() {
        let mut graph: ActionGraph<'_, std::convert::Infallible> = ActionGraph::new();
        graph.add(ActionKind::SdCompile, "sd", &[], |_| Ok(vec![1]));
        let engine = Engine::uncached(&ImageStore::new())
            .with_workers(2)
            .with_policy(CriticalPathFirst::new().with_cap(ActionKind::SdCompile, 0));
        let run = engine.run(graph);
        assert!(run.succeeded(), "the raw engine must refuse to deadlock");
    }

    #[test]
    fn parallel_and_serial_runs_produce_identical_outputs_and_traces() {
        fn build_graph(counter: &AtomicUsize) -> ActionGraph<'_, std::convert::Infallible> {
            let mut graph = ActionGraph::new();
            let mut lowers = Vec::new();
            for unit in 0..24 {
                let id = graph.add(
                    ActionKind::IrLower,
                    format!("unit{unit:02}"),
                    &[],
                    move |_| Ok(vec![unit as u8; 4]),
                );
                lowers.push(id);
            }
            graph.add(ActionKind::Link, "link", &lowers, move |inputs| {
                counter.fetch_add(1, Ordering::SeqCst);
                Ok(inputs.iter().flat_map(|b| b.to_vec()).collect())
            });
            graph
        }
        let counter = AtomicUsize::new(0);
        let serial = Engine::uncached(&ImageStore::new())
            .with_workers(1)
            .run(build_graph(&counter));
        let parallel = Engine::uncached(&ImageStore::new())
            .with_workers(8)
            .run(build_graph(&counter));
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        assert_eq!(serial.trace, parallel.trace);
        assert_eq!(serial.output(24), parallel.output(24));
        assert_eq!(serial.trace.stage_depth, 2);
        assert_eq!(serial.trace.len(), 25);
    }
}
