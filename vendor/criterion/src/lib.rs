//! Offline shim for the subset of `criterion` this workspace's benches use.
//!
//! It keeps the structure of the API — `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the `criterion_group!`
//! and `criterion_main!` macros — but replaces criterion's statistical engine
//! with a simple timed loop: each benchmark runs `sample_size` iterations (after
//! one warm-up) and reports min/mean timings on stdout. The benches therefore
//! still execute their workloads and print the regenerated figure data, and
//! `cargo bench --no-run` compiles them exactly as with the real crate.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Final hook, kept for API compatibility.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of measured iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Run a benchmark that receives a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        BenchmarkId {
            text: text.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine` over the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warm-up, also forces lazy setup
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(id: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {id:<60} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "bench {id:<60} min {:>12.3?}  mean {:>12.3?}  ({} samples)",
        min,
        mean,
        bencher.samples.len()
    );
}

/// Declare a benchmark group function, as in criterion.
///
/// Supports both the `name/config/targets` form and the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark binary entry point, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
