//! Regression tests for the vendored dependency shims (`vendor/`).
//!
//! The shims are hand-rolled stand-ins for crates the offline build cannot
//! fetch; these tests pin the behaviours the workspace relies on, plus the
//! edge cases found in review (range-checked integer deserialization, large
//! `u64` handling).

use serde_json::{json, Value};

#[test]
fn json_text_round_trips_through_value() {
    let value = json!({
        "name": "mini-gromacs",
        "gpu": true,
        "simd_width": 16,
        "scale": 1.5,
        "backends": ["CUDA", "SYCL"],
        "none": null
    });
    let text = serde_json::to_string(&value).unwrap();
    let back: Value = serde_json::from_str(&text).unwrap();
    assert_eq!(back, value);
    assert_eq!(back["backends"][1], json!("SYCL"));
    assert_eq!(back["simd_width"], json!(16));

    let pretty = serde_json::to_string_pretty(&value).unwrap();
    let back_pretty: Value = serde_json::from_str(&pretty).unwrap();
    assert_eq!(back_pretty, value);
}

#[test]
fn integer_deserialization_is_range_checked() {
    assert!(serde_json::from_str::<u64>("-5").is_err());
    assert!(serde_json::from_str::<u8>("300").is_err());
    assert!(serde_json::from_str::<i32>("4000000000").is_err());
    assert_eq!(serde_json::from_str::<u8>("255").unwrap(), 255);
    assert_eq!(serde_json::from_str::<i64>("-5").unwrap(), -5);
}

#[test]
fn large_u64_values_survive() {
    let max = u64::MAX;
    let text = serde_json::to_string(&max).unwrap();
    assert_eq!(serde_json::from_str::<u64>(&text).unwrap(), max);
    let value = serde_json::to_value(&max);
    assert_eq!(value.as_u64(), Some(max));
    assert_eq!(value.as_i64(), None);
}

#[test]
fn huge_integral_floats_are_not_conflated() {
    let a: Value = serde_json::from_str("1e300").unwrap();
    let b: Value = serde_json::from_str("2e300").unwrap();
    assert_ne!(a, b);
    assert_eq!(a.as_i64(), None);
    assert_eq!(a.as_u64(), None);
    assert!(serde_json::from_str::<i64>("1e300").is_err());
}

#[test]
fn string_escapes_round_trip() {
    let tricky = "quote \" backslash \\ newline \n tab \t unicode ✓";
    let text = serde_json::to_string(&tricky).unwrap();
    assert_eq!(serde_json::from_str::<String>(&text).unwrap(), tricky);
}

#[test]
fn missing_optional_fields_deserialize_as_none() {
    // Exercised end-to-end through a workspace type that has Option fields
    // with `skip_serializing_if`: an OCI descriptor without annotations.
    use xaas_container::prelude::*;
    let store = ImageStore::new();
    let image = Image::new("shim/test:1", Platform::linux(Architecture::Amd64));
    let descriptor = store.commit(&image);
    let text = serde_json::to_string(&descriptor).unwrap();
    let back: Descriptor = serde_json::from_str(&text).unwrap();
    assert_eq!(back, descriptor);
}
