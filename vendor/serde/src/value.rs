//! The serde data model used by this shim: a JSON value tree.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// JSON object map. `serde_json::Map` is re-exported as this type; unlike the
/// real crate it is key-ordered rather than insertion-ordered, which only
/// affects the order keys print in.
pub type Map = BTreeMap<String, Value>;

/// A JSON number. Mixed-representation comparisons (`Int(3) == UInt(3)`,
/// `Float(3.0) == Int(3)`) compare numerically, so values survive a
/// text round-trip even when the parser picks a different representation.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used for values that don't fit `i64` and by `u64` serialization).
    UInt(u64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// The numeric value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::Int(v) => *v as f64,
            Number::UInt(v) => *v as f64,
            Number::Float(v) => *v,
        }
    }

    /// The numeric value as `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::Int(v) => Some(*v),
            Number::UInt(v) => i64::try_from(*v).ok(),
            // Through i128 so out-of-range floats fail `try_from` instead of
            // saturating (f64 → i128 saturation only kicks in beyond ±2^127,
            // where try_from fails anyway).
            Number::Float(v) if v.fract() == 0.0 => i64::try_from(*v as i128).ok(),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) if !v.is_finite() => {
                // JSON has no NaN/inf; real serde_json maps them to null.
                write!(f, "null")
            }
            Number::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// A short name for the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::UInt(v)) => Some(*v),
            Value::Number(Number::Int(v)) => u64::try_from(*v).ok(),
            Value::Number(Number::Float(v)) if v.fract() == 0.0 => u64::try_from(*v as i128).ok(),
            _ => None,
        }
    }

    /// Object member by key, `Null` when absent or not an object (as with
    /// `serde_json`'s `Index`, but non-panicking via the `get` spelling too).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_compact(self, f)
    }
}

fn write_escaped(s: &str, out: &mut impl fmt::Write) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

fn write_compact(value: &Value, out: &mut impl fmt::Write) -> fmt::Result {
    match value {
        Value::Null => out.write_str("null"),
        Value::Bool(b) => write!(out, "{b}"),
        Value::Number(n) => write!(out, "{n}"),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_compact(item, out)?;
            }
            out.write_char(']')
        }
        Value::Object(entries) => {
            out.write_char('{')?;
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_escaped(k, out)?;
                out.write_char(':')?;
                write_compact(v, out)?;
            }
            out.write_char('}')
        }
    }
}

/// Pretty-print with two-space indentation, like `serde_json::to_string_pretty`.
pub fn write_pretty(value: &Value, indent: usize, out: &mut impl fmt::Write) -> fmt::Result {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.write_str("[\n")?;
            for (i, item) in items.iter().enumerate() {
                out.write_str(&pad_inner)?;
                write_pretty(item, indent + 1, out)?;
                if i + 1 < items.len() {
                    out.write_char(',')?;
                }
                out.write_char('\n')?;
            }
            write!(out, "{pad}]")
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.write_str("{\n")?;
            for (i, (k, v)) in entries.iter().enumerate() {
                out.write_str(&pad_inner)?;
                write_escaped(k, out)?;
                out.write_str(": ")?;
                write_pretty(v, indent + 1, out)?;
                if i + 1 < entries.len() {
                    out.write_char(',')?;
                }
                out.write_char('\n')?;
            }
            write!(out, "{pad}}}")
        }
        other => write_compact(other, out),
    }
}
