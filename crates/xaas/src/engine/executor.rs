//! The executor: runs the ready frontier of an [`ActionGraph`] across worker
//! threads, routing keyed nodes through the engine's cache backend.
//!
//! Scheduling goes through one shared, policy-driven ready queue: finished nodes
//! push their newly-ready dependents, and free workers pop the next node the
//! engine's [`SchedulingPolicy`] selects — readiness order under
//! [`Fifo`](super::policy::Fifo), descending critical-path weight under
//! [`CriticalPathFirst`](super::policy::CriticalPathFirst) — subject to the
//! policy's
//! per-kind concurrency caps (a node whose kind is at its cap is parked and
//! re-admitted when a slot frees). A failed node does **not** cancel the run —
//! independent subgraphs keep executing and only the failed node's transitive
//! dependents are skipped, which is what lets the fleet specializer isolate one
//! system's failure from the rest of the fleet.
//!
//! Results are assembled in node order, so everything observable from a run —
//! outputs, trace records, error attribution — is deterministic regardless of how
//! the workers interleaved. The *schedule itself* is additionally observable (and
//! policy-dependent) through each record's `schedule_seq` and `queue_wait_micros`
//! diagnostics, which are deliberately excluded from trace equality.

use super::graph::{ActionFn, ActionGraph, ActionId, ActionInputs, KeySpec};
use super::policy::SchedulingPolicy;
use super::trace::{ActionKind, ActionRecord, ActionTrace};
use parking_lot::Mutex;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;
use xaas_container::{CacheBackend, ComputeFailed};

/// Number of distinct [`ActionKind`]s (dense per-kind accounting arrays).
const KINDS: usize = ActionKind::ALL.len();

/// The terminal state of one node after a run.
#[derive(Debug)]
pub enum NodeOutcome<E> {
    /// The node completed (executed or cache-served) with these output bytes.
    Output(Arc<Vec<u8>>),
    /// The node's closure returned this error.
    Failed(E),
    /// The node was skipped because `root` (a transitive dependency) failed.
    Skipped {
        /// The failed ancestor that poisoned this node.
        root: ActionId,
    },
}

impl<E> NodeOutcome<E> {
    /// The output bytes, if the node completed.
    pub fn output(&self) -> Option<&[u8]> {
        match self {
            NodeOutcome::Output(bytes) => Some(bytes),
            _ => None,
        }
    }

    /// Whether the node completed successfully.
    pub fn is_ok(&self) -> bool {
        matches!(self, NodeOutcome::Output(_))
    }
}

/// The per-node output blobs of a completed run, in node order.
pub type ActionOutputs = Vec<Arc<Vec<u8>>>;

/// Static description of one node of a completed run: its stage, human-readable
/// label, and the job tag it was grafted under (see
/// [`ActionGraph::set_job`]). Available for *every* node — including failed and
/// skipped ones, which leave no [`ActionRecord`] behind — so callers can attribute
/// failures to the subgraph that planned them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// The pipeline stage of the node.
    pub kind: ActionKind,
    /// Human-readable identity (usually the file or unit the action worked on).
    pub label: String,
    /// The job tag in effect when the node was added, if any.
    pub job: Option<usize>,
}

/// The failure poisoning one job of a run: the root failing node (which may belong
/// to *another* job when a shared artifact's compute node failed), its static
/// description, and the typed error when the root carried one.
#[derive(Debug)]
pub struct JobFailure<'run, E> {
    /// The failed node every affected node of the job transitively depends on.
    pub node: ActionId,
    /// Static description of the failing node (kind, label, owning job).
    pub info: &'run NodeInfo,
    /// The typed error the failing node returned. `None` only when the node was
    /// itself skipped without a recorded failure (a cache-backend contract
    /// violation — the executor panics on that path before a caller can see it).
    pub error: Option<&'run E>,
}

/// The result of running one [`ActionGraph`] through the engine.
#[derive(Debug)]
pub struct GraphRun<E> {
    /// Per-node outcomes, indexed by [`ActionId`].
    pub outcomes: Vec<NodeOutcome<E>>,
    /// Deterministic trace of the completed actions (node order).
    pub trace: ActionTrace,
    /// Static per-node info (kind, label, job tag), indexed by [`ActionId`].
    infos: Vec<NodeInfo>,
}

impl<E> GraphRun<E> {
    /// Whether every node completed.
    pub fn succeeded(&self) -> bool {
        self.outcomes.iter().all(NodeOutcome::is_ok)
    }

    /// Static description of one node (available even for failed/skipped nodes).
    pub fn node_info(&self, id: ActionId) -> &NodeInfo {
        &self.infos[id]
    }

    /// The failure poisoning `job`'s subgraph, if any: scans the job's nodes in
    /// node order and resolves the first non-completed one to its root failing
    /// node. The root may belong to a different job when the jobs share a keyed
    /// artifact whose computation failed.
    pub fn job_failure(&self, job: usize) -> Option<JobFailure<'_, E>> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(id, _)| self.infos[*id].job == Some(job))
            .find_map(|(id, outcome)| {
                let root = match outcome {
                    NodeOutcome::Output(_) => return None,
                    NodeOutcome::Failed(_) => id,
                    NodeOutcome::Skipped { root } => *root,
                };
                Some(JobFailure {
                    node: root,
                    info: &self.infos[root],
                    error: match &self.outcomes[root] {
                        NodeOutcome::Failed(error) => Some(error),
                        _ => None,
                    },
                })
            })
    }

    /// The output of one node, if it completed.
    pub fn output(&self, id: ActionId) -> Option<&[u8]> {
        self.outcomes.get(id).and_then(NodeOutcome::output)
    }

    /// All outputs in node order, or the first (lowest node id) error.
    pub fn into_outputs(self) -> Result<(ActionOutputs, ActionTrace), E> {
        let mut outputs = Vec::with_capacity(self.outcomes.len());
        for outcome in self.outcomes {
            match outcome {
                NodeOutcome::Output(bytes) => outputs.push(bytes),
                NodeOutcome::Failed(error) => return Err(error),
                NodeOutcome::Skipped { root } => {
                    // Dependencies precede dependents in node order, so a skip's root
                    // failure is normally returned above. Reaching this arm means a
                    // cache backend failed a keyed action without invoking its compute
                    // closure, breaking the CacheBackend contract.
                    panic!(
                        "action {root} was skipped without a preceding failure: \
                         the cache backend failed without running the action"
                    )
                }
            }
        }
        Ok((outputs, self.trace))
    }
}

enum Slot<E> {
    Pending,
    Output(Arc<Vec<u8>>),
    Failed(E),
    Skipped { root: ActionId },
}

struct NodeMeta {
    kind: ActionKind,
    label: String,
    job: Option<usize>,
    deps: Vec<ActionId>,
}

/// A node's one-shot work: the run closure plus its cache-key specification
/// (static, derived from inputs, or none). Taken exactly once at dispatch.
struct NodeWork<'env, E> {
    run: ActionFn<'env, E>,
    key: KeySpec<'env>,
}

/// The ordering half of the ready queue: FIFO or priority-by-weight.
enum ReadyOrder {
    Fifo(VecDeque<ActionId>),
    /// Max-heap on (critical-path weight, lowest node id wins ties).
    Weighted(BinaryHeap<(u64, Reverse<ActionId>)>),
}

impl ReadyOrder {
    fn push(&mut self, id: ActionId, weight: u64) {
        match self {
            ReadyOrder::Fifo(queue) => queue.push_back(id),
            ReadyOrder::Weighted(heap) => heap.push((weight, Reverse(id))),
        }
    }

    fn pop(&mut self) -> Option<ActionId> {
        match self {
            ReadyOrder::Fifo(queue) => queue.pop_front(),
            ReadyOrder::Weighted(heap) => heap.pop().map(|(_, Reverse(id))| id),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            ReadyOrder::Fifo(queue) => queue.is_empty(),
            ReadyOrder::Weighted(heap) => heap.is_empty(),
        }
    }
}

/// The shared ready queue: policy ordering, per-kind admission, queue-wait clocks.
struct Ready {
    order: ReadyOrder,
    /// Nodes popped while their kind was at its concurrency cap; re-admitted when an
    /// in-flight action of that kind finishes.
    deferred: [Vec<ActionId>; KINDS],
    /// In-flight actions per kind.
    in_flight: [usize; KINDS],
    /// When each node entered the ready queue (for `queue_wait_micros`).
    enqueued_at: Vec<Option<Instant>>,
}

struct ExecState<'env, E> {
    metas: Vec<NodeMeta>,
    tasks: Vec<Mutex<Option<NodeWork<'env, E>>>>,
    slots: Vec<Mutex<Slot<E>>>,
    records: Vec<Mutex<Option<ActionRecord>>>,
    dependents: Vec<Vec<ActionId>>,
    pending: Vec<AtomicUsize>,
    ready: Mutex<Ready>,
    /// Critical-path weight per node (policy cost of the heaviest chain to a sink);
    /// all zeros under FIFO ordering.
    weights: Vec<u64>,
    /// Per-kind concurrency caps from the policy (`usize::MAX` = unbounded, zero
    /// clamped to one — the executor refuses to deadlock; the orchestrator turns a
    /// zero cap into a typed error before a graph ever gets here).
    caps: [usize; KINDS],
    /// Engine-global dispatch counter; assigned under the ready lock so the relative
    /// order of `schedule_seq` values equals the policy's pop order.
    seq: Arc<AtomicU64>,
    remaining: AtomicUsize,
    /// The first caught action panic; re-raised on the caller thread after the run
    /// completes, so a panicking action behaves like it would on a serial executor
    /// instead of hanging the worker pool.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    /// Idle workers park here instead of spinning; a finishing node wakes them.
    idle: StdMutex<()>,
    wakeup: Condvar,
}

impl<'env, E> ExecState<'env, E> {
    /// Pop the next runnable node per the policy: skip (and defer) ready nodes whose
    /// kind is at its concurrency cap. Returns the node, its queue wait, and its
    /// dispatch sequence number.
    fn pop_task(&self) -> Option<(ActionId, u64, u64)> {
        let mut ready = self.ready.lock();
        loop {
            let id = ready.order.pop()?;
            let kind = self.metas[id].kind.index();
            if ready.in_flight[kind] < self.caps[kind] {
                ready.in_flight[kind] += 1;
                let wait_micros = ready.enqueued_at[id]
                    .map(|t| t.elapsed().as_micros() as u64)
                    .unwrap_or(0);
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                return Some((id, wait_micros, seq));
            }
            ready.deferred[kind].push(id);
        }
    }

    /// Whether any queue entry is currently poppable (deferred nodes only come back
    /// through `finish`, which notifies, so checking the order queue suffices).
    fn has_ready_work(&self) -> bool {
        !self.ready.lock().order.is_empty()
    }

    fn finish(&self, id: ActionId, slot: Slot<E>, record: Option<ActionRecord>) {
        *self.slots[id].lock() = slot;
        if let Some(record) = record {
            *self.records[id].lock() = Some(record);
        }
        let mut made_ready = 0usize;
        {
            let mut ready = self.ready.lock();
            let kind = self.metas[id].kind.index();
            ready.in_flight[kind] -= 1;
            // A freed slot re-admits every deferred node of this kind; only one can
            // claim the slot, the rest simply defer again on their next pop.
            let deferred = std::mem::take(&mut ready.deferred[kind]);
            made_ready += deferred.len();
            for deferred_id in deferred {
                ready.order.push(deferred_id, self.weights[deferred_id]);
            }
            for &dependent in &self.dependents[id] {
                if self.pending[dependent].fetch_sub(1, Ordering::AcqRel) == 1 {
                    ready.enqueued_at[dependent] = Some(Instant::now());
                    ready.order.push(dependent, self.weights[dependent]);
                    made_ready += 1;
                }
            }
        }
        let last = self.remaining.fetch_sub(1, Ordering::AcqRel) == 1;
        if last || made_ready > 0 {
            // Notify under the idle lock: a parking worker re-checks the queue after
            // acquiring it, so the notification can never land in the window between
            // a failed pop and the wait. The last node releases the whole pool.
            let _guard = self.idle.lock().unwrap_or_else(|e| e.into_inner());
            if last || made_ready > 1 {
                self.wakeup.notify_all();
            } else {
                self.wakeup.notify_one();
            }
        }
    }

    /// Run one node's closure, converting a panic into a recorded payload (first
    /// panic wins). Returns `None` when the closure panicked.
    fn run_task(
        &self,
        task: ActionFn<'env, E>,
        inputs: &ActionInputs,
    ) -> Option<Result<Vec<u8>, E>> {
        match std::panic::catch_unwind(AssertUnwindSafe(|| task(inputs))) {
            Ok(result) => Some(result),
            Err(payload) => {
                let mut slot = self.panic_payload.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                None
            }
        }
    }
}

pub(crate) fn run_graph<'env, E: Send>(
    graph: ActionGraph<'env, E>,
    cache: &dyn CacheBackend,
    workers: usize,
    policy: &dyn SchedulingPolicy,
    seq: Arc<AtomicU64>,
) -> GraphRun<E> {
    let node_count = graph.nodes.len();
    let stage_depth = graph.depth();
    if node_count == 0 {
        return GraphRun {
            outcomes: Vec::new(),
            trace: ActionTrace {
                policy: policy.name().to_string(),
                ..ActionTrace::default()
            },
            infos: Vec::new(),
        };
    }

    let workers = workers.clamp(1, node_count.max(1));
    let mut metas = Vec::with_capacity(node_count);
    let mut tasks = Vec::with_capacity(node_count);
    let mut dependents: Vec<Vec<ActionId>> = vec![Vec::new(); node_count];
    let mut pending = Vec::with_capacity(node_count);
    for (id, node) in graph.nodes.into_iter().enumerate() {
        for &dep in &node.deps {
            dependents[dep].push(id);
        }
        pending.push(AtomicUsize::new(node.deps.len()));
        metas.push(NodeMeta {
            kind: node.kind,
            label: node.label,
            job: node.job,
            deps: node.deps,
        });
        tasks.push(Mutex::new(Some(NodeWork {
            run: node.run,
            key: node.key,
        })));
    }

    // Critical-path weights: the policy cost of the heaviest chain from each node to
    // a sink (computed bottom-up; dependents always have higher ids than their deps).
    let weights = if policy.critical_path_first() {
        let mut weights = vec![0u64; node_count];
        for id in (0..node_count).rev() {
            let downstream = dependents[id]
                .iter()
                .map(|&d| weights[d])
                .max()
                .unwrap_or(0);
            weights[id] = policy.action_cost(metas[id].kind) + downstream;
        }
        weights
    } else {
        vec![0u64; node_count]
    };
    let mut caps = [usize::MAX; KINDS];
    for kind in ActionKind::ALL {
        if let Some(cap) = policy.concurrency_cap(kind) {
            // A zero cap would deadlock; the Orchestrator rejects it as a typed
            // PolicyError before submission, the raw executor clamps defensively.
            caps[kind.index()] = cap.max(1);
        }
    }

    let order = if policy.critical_path_first() {
        ReadyOrder::Weighted(BinaryHeap::with_capacity(node_count))
    } else {
        ReadyOrder::Fifo(VecDeque::with_capacity(node_count))
    };
    let state = ExecState {
        metas,
        tasks,
        slots: (0..node_count).map(|_| Mutex::new(Slot::Pending)).collect(),
        records: (0..node_count).map(|_| Mutex::new(None)).collect(),
        dependents,
        pending,
        ready: Mutex::new(Ready {
            order,
            deferred: std::array::from_fn(|_| Vec::new()),
            in_flight: [0; KINDS],
            enqueued_at: vec![None; node_count],
        }),
        weights,
        caps,
        seq,
        remaining: AtomicUsize::new(node_count),
        panic_payload: Mutex::new(None),
        idle: StdMutex::new(()),
        wakeup: Condvar::new(),
    };
    // Seed the initial frontier in node order.
    {
        let mut ready = state.ready.lock();
        let now = Instant::now();
        for id in 0..node_count {
            if state.pending[id].load(Ordering::Relaxed) == 0 {
                ready.enqueued_at[id] = Some(now);
                ready.order.push(id, state.weights[id]);
            }
        }
    }

    if workers == 1 {
        worker_loop(&state, cache);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let state = &state;
                scope.spawn(move || worker_loop(state, cache));
            }
        });
    }

    let ExecState {
        metas,
        slots,
        records,
        panic_payload,
        ..
    } = state;
    if let Some(payload) = panic_payload.into_inner() {
        // Re-raise the first action panic on the caller thread, as a serial
        // executor would have.
        std::panic::resume_unwind(payload);
    }
    let outcomes = slots
        .into_iter()
        .map(|slot| match slot.into_inner() {
            Slot::Output(bytes) => NodeOutcome::Output(bytes),
            Slot::Failed(error) => NodeOutcome::Failed(error),
            Slot::Skipped { root } => NodeOutcome::Skipped { root },
            Slot::Pending => unreachable!("executor drained every node"),
        })
        .collect();
    let trace = ActionTrace {
        records: records
            .into_iter()
            .filter_map(|record| record.into_inner())
            .collect(),
        stage_depth,
        policy: policy.name().to_string(),
    };
    let infos = metas
        .into_iter()
        .map(|meta| NodeInfo {
            kind: meta.kind,
            label: meta.label,
            job: meta.job,
        })
        .collect();
    GraphRun {
        outcomes,
        trace,
        infos,
    }
}

fn worker_loop<E: Send>(state: &ExecState<'_, E>, cache: &dyn CacheBackend) {
    loop {
        if state.remaining.load(Ordering::Acquire) == 0 {
            break;
        }
        match state.pop_task() {
            Some((id, wait_micros, seq)) => execute_node(state, cache, id, wait_micros, seq),
            None => {
                // Nothing runnable right now: other workers hold the frontier (or
                // every ready node's kind is at its cap). Park until new work is
                // admitted. Re-checking readiness under the idle lock pairs with
                // finish() notifying under it, so wakeups are not lost; the timeout
                // is only a backstop.
                let guard = state.idle.lock().unwrap_or_else(|e| e.into_inner());
                if state.remaining.load(Ordering::Acquire) != 0 && !state.has_ready_work() {
                    let _ = state
                        .wakeup
                        .wait_timeout(guard, std::time::Duration::from_millis(10));
                }
            }
        }
    }
}

fn execute_node<E: Send>(
    state: &ExecState<'_, E>,
    cache: &dyn CacheBackend,
    id: ActionId,
    wait_micros: u64,
    seq: u64,
) {
    let meta = &state.metas[id];
    // Gather dependency outputs; a poisoned dependency skips this node.
    let mut inputs = Vec::with_capacity(meta.deps.len());
    let mut poisoned: Option<ActionId> = None;
    for &dep in &meta.deps {
        match &*state.slots[dep].lock() {
            Slot::Output(bytes) => inputs.push(bytes.clone()),
            Slot::Failed(_) => {
                poisoned = Some(dep);
                break;
            }
            Slot::Skipped { root } => {
                poisoned = Some(*root);
                break;
            }
            Slot::Pending => unreachable!("node scheduled before dependency finished"),
        }
    }
    if let Some(root) = poisoned {
        state.finish(id, Slot::Skipped { root }, None);
        return;
    }

    let NodeWork { run: task, key } = state.tasks[id]
        .lock()
        .take()
        .expect("every node executes exactly once");
    let inputs = ActionInputs::new(inputs);
    let started = Instant::now();

    // Resolve the cache key: static keys pass through; derived keys are computed
    // from the dependency outputs now that they exist. A panicking key derivation
    // behaves like a panicking action (payload recorded, dependents poisoned).
    let key = match key {
        KeySpec::None => None,
        KeySpec::Static(key) => Some(key),
        KeySpec::Derived(key_of) => {
            match std::panic::catch_unwind(AssertUnwindSafe(|| key_of(&inputs))) {
                Ok(key) => Some(key),
                Err(payload) => {
                    let mut slot = state.panic_payload.lock();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    state.finish(id, Slot::Skipped { root: id }, None);
                    return;
                }
            }
        }
    };

    let (slot, completed): (Slot<E>, Option<bool>) = match &key {
        Some(key) => {
            let mut task = Some(task);
            let mut captured: Option<E> = None;
            let result = cache.get_or_compute_action(key, &mut || {
                // At most one in-flight node per key per graph (the ActionGraph
                // contract — a repeated key must be ordered after the first by a
                // dependency edge), so the closure runs at most once even under
                // single-flight coalescing.
                match task.take() {
                    Some(task) => match state.run_task(task, &inputs) {
                        Some(Ok(bytes)) => Ok(bytes),
                        Some(Err(error)) => {
                            captured = Some(error);
                            Err(ComputeFailed)
                        }
                        // Panicked: the payload is recorded, re-raised after the run.
                        None => Err(ComputeFailed),
                    },
                    None => Err(ComputeFailed),
                }
            });
            match result {
                Ok((bytes, hit)) => (Slot::Output(Arc::new(bytes)), Some(hit)),
                Err(ComputeFailed) => match captured {
                    Some(error) => (Slot::Failed(error), None),
                    // The action panicked, or the backend failed without running
                    // it; the node poisons its dependents with itself as the root.
                    None => (Slot::Skipped { root: id }, None),
                },
            }
        }
        None => match state.run_task(task, &inputs) {
            Some(Ok(bytes)) => (Slot::Output(Arc::new(bytes)), Some(false)),
            Some(Err(error)) => (Slot::Failed(error), None),
            None => (Slot::Skipped { root: id }, None),
        },
    };
    let record = completed.map(|cached| ActionRecord {
        kind: meta.kind,
        label: meta.label.clone(),
        key_digest: key.as_ref().map(|k| k.digest().hex().to_string()),
        cached,
        queue_wait_micros: wait_micros,
        exec_micros: started.elapsed().as_micros() as u64,
        schedule_seq: seq,
        job: meta.job,
    });
    state.finish(id, slot, record);
}
