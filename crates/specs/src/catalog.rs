//! The HPC application catalogue of Table 1: the specialization points of nine
//! representative applications and benchmarks.
//!
//! This is reference data (not derived from the synthetic projects): the `reproduce
//! table1` harness prints it, and tests use it to check that the synthetic applications
//! in `xaas-apps` cover the same categories as their real counterparts.

use serde::Serialize;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CatalogEntry {
    /// Scientific domain.
    pub domain: &'static str,
    /// Application name.
    pub name: &'static str,
    /// Architecture-specific specialization mechanism.
    pub architecture_specialization: &'static str,
    /// GPU acceleration backends.
    pub gpu_acceleration: &'static [&'static str],
    /// Parallelism models.
    pub parallelism: &'static [&'static str],
    /// Vectorization approach.
    pub vectorization: &'static str,
    /// Performance libraries used.
    pub performance_libraries: &'static [&'static str],
}

/// The nine applications of Table 1.
pub fn table1() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            domain: "Molecular Dynamics",
            name: "GROMACS",
            architecture_specialization: "Architecture-specific FFT",
            gpu_acceleration: &["OpenCL", "CUDA", "SYCL", "HIP"],
            parallelism: &["OpenMP", "MPI"],
            vectorization: "Automatic, many ISAs",
            performance_libraries: &["BLAS/LAPACK", "FFT (many)"],
        },
        CatalogEntry {
            domain: "Hydrodynamics",
            name: "LULESH",
            architecture_specialization: "-",
            gpu_acceleration: &[],
            parallelism: &["OpenMP", "MPI"],
            vectorization: "-",
            performance_libraries: &[],
        },
        CatalogEntry {
            domain: "Electronic Structure",
            name: "Quantum Espresso",
            architecture_specialization: "Compiler adaptations",
            gpu_acceleration: &["CUDA", "OpenACC"],
            parallelism: &["OpenMP", "MPI"],
            vectorization: "-",
            performance_libraries: &["BLAS/LAPACK", "ELPA", "ScaLAPACK", "FFT (many)"],
        },
        CatalogEntry {
            domain: "Lattice QCD",
            name: "MILC",
            architecture_specialization: "Compiler adaptations",
            gpu_acceleration: &["CUDA", "HIP", "SYCL"],
            parallelism: &["OpenMP", "MPI"],
            vectorization: "Compiler flags, many ISAs (Intel, AMD, PowerPC)",
            performance_libraries: &["LAPACK", "PRIMME", "FFTW", "QUDA"],
        },
        CatalogEntry {
            domain: "Lattice QCD",
            name: "OpenQCD",
            architecture_specialization: "Optimized for x86 CPUs",
            gpu_acceleration: &[],
            parallelism: &["OpenMP", "MPI"],
            vectorization: "Assembly (SSE, AVX, FMA3)",
            performance_libraries: &[],
        },
        CatalogEntry {
            domain: "Particle-in-Cell",
            name: "VPIC / VPIC 2.0",
            architecture_specialization: "Kokkos portability",
            gpu_acceleration: &["CUDA"],
            parallelism: &["OpenMP", "MPI"],
            vectorization: "OpenMP and V4 library (many ISAs)",
            performance_libraries: &[],
        },
        CatalogEntry {
            domain: "Cloud Physics",
            name: "CloudSC",
            architecture_specialization: "System-specific toolchains",
            gpu_acceleration: &["CUDA", "SYCL", "HIP", "OpenACC"],
            parallelism: &["OpenMP", "MPI"],
            vectorization: "-",
            performance_libraries: &["Atlas"],
        },
        CatalogEntry {
            domain: "Weather & Climate",
            name: "ICON",
            architecture_specialization: "System-specific toolchains",
            gpu_acceleration: &["CUDA", "HIP", "OpenACC"],
            parallelism: &["OpenMP", "MPI"],
            vectorization: "System-specific compiler flags",
            performance_libraries: &["BLAS/LAPACK"],
        },
        CatalogEntry {
            domain: "LLM Inference",
            name: "llama.cpp",
            architecture_specialization: "Optimization flags",
            gpu_acceleration: &[
                "CUDA", "HIP", "SYCL", "Vulkan", "Metal", "OpenCL", "CANN", "MUSA",
            ],
            parallelism: &["OpenMP", "pthreads"],
            vectorization: "Intrinsics (AVX, AVX2, AVX512, AMX, NEON, ...)",
            performance_libraries: &["OpenBLAS", "MKL", "BLIS"],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_nine_applications() {
        let entries = table1();
        assert_eq!(entries.len(), 9);
        let names: Vec<_> = entries.iter().map(|e| e.name).collect();
        assert!(names.contains(&"GROMACS"));
        assert!(names.contains(&"LULESH"));
        assert!(names.contains(&"llama.cpp"));
    }

    #[test]
    fn gromacs_supports_four_gpu_backends_and_llamacpp_eight() {
        let entries = table1();
        let gromacs = entries.iter().find(|e| e.name == "GROMACS").unwrap();
        assert_eq!(gromacs.gpu_acceleration.len(), 4);
        let llama = entries.iter().find(|e| e.name == "llama.cpp").unwrap();
        assert_eq!(llama.gpu_acceleration.len(), 8);
    }

    #[test]
    fn lulesh_has_no_gpu_and_no_libraries() {
        let entries = table1();
        let lulesh = entries.iter().find(|e| e.name == "LULESH").unwrap();
        assert!(lulesh.gpu_acceleration.is_empty());
        assert!(lulesh.performance_libraries.is_empty());
        assert_eq!(lulesh.parallelism, &["OpenMP", "MPI"]);
    }

    #[test]
    fn every_entry_names_a_domain_and_parallelism_model() {
        for entry in table1() {
            assert!(!entry.domain.is_empty());
            assert!(!entry.parallelism.is_empty());
        }
    }
}
