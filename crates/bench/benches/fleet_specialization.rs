//! Fleet-specialization benchmark: cold per-system deployments vs the concurrent
//! fleet request over a shared content-addressed action cache, across the four
//! paper systems (Ault23, Ault25, Ault01-04, Clariden) — plus the strategy A/B:
//! one union `ActionGraph` per wave (a single engine submission interleaving all
//! systems) vs the sequential per-job submissions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xaas::prelude::*;
use xaas_apps::gromacs;
use xaas_bench::fleet_specialization;
use xaas_buildsys::OptionAssignment;
use xaas_container::{ActionCache, ImageStore};
use xaas_hpcsim::SystemModel;

fn fleet_targets() -> Vec<FleetTarget> {
    [
        SystemModel::ault23(),
        SystemModel::ault25(),
        SystemModel::ault01_04(),
        SystemModel::clariden(),
    ]
    .into_iter()
    .map(|system| {
        let simd = system.cpu.best_simd();
        FleetTarget::new(
            system,
            OptionAssignment::new().with("GMX_SIMD", simd.gmx_name()),
            simd,
        )
    })
    .collect()
}

fn bench_fleet(c: &mut Criterion) {
    // The experiment JSON is the artifact the acceptance criteria ask for: action
    // counts and cache hit rates of cold vs fleet vs warm-rerun specialization.
    let experiment = fleet_specialization();
    println!(
        "{}",
        serde_json::to_string_pretty(&experiment).expect("fleet experiment serialises")
    );

    let project = gromacs::project();
    let store = ImageStore::new();
    let orch = Orchestrator::uncached(&store);
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"]).with_values(
        "GMX_SIMD",
        &["SSE4.1", "AVX2_256", "AVX_512", "ARM_NEON_ASIMD"],
    );
    let build = IrBuildRequest::new(&project, &pipeline)
        .reference("bench:fleet")
        .submit(&orch)
        .unwrap();
    let targets = fleet_targets();

    let mut group = c.benchmark_group("fleet/specialization");
    group.bench_function("cold_independent_deployments", |b| {
        b.iter(|| {
            for target in &targets {
                black_box(
                    IrDeployRequest::new(&build, &project, &target.system)
                        .selection(target.selection.clone())
                        .simd(target.simd)
                        .submit(&orch)
                        .unwrap(),
                );
            }
        });
    });
    // Strategy A/B on a cold shared cache per iteration: the union graph submits
    // the whole wave to the engine once; the sequential strategy submits one
    // graph per job. Byte-identity between the two is pinned by the
    // `fleet_union` test suite; here the comparison is wall-clock.
    group.bench_function("fleet_union_graph_cold", |b| {
        b.iter(|| {
            let session = Orchestrator::builder()
                .action_cache(ActionCache::new(store.clone()))
                .fleet_strategy(FleetStrategy::UnionGraph)
                .build();
            black_box(
                FleetRequest::new(&build, &project)
                    .targets(targets.iter().cloned())
                    .submit(&session),
            );
        });
    });
    group.bench_function("fleet_sequential_cold", |b| {
        b.iter(|| {
            let session = Orchestrator::builder()
                .action_cache(ActionCache::new(store.clone()))
                .fleet_strategy(FleetStrategy::Sequential)
                .build();
            black_box(
                FleetRequest::new(&build, &project)
                    .targets(targets.iter().cloned())
                    .submit(&session),
            );
        });
    });
    // Steady state: the cache already holds every action of the fleet.
    let warm = Orchestrator::with_cache(&ActionCache::new(store.clone()));
    FleetRequest::new(&build, &project)
        .targets(targets.iter().cloned())
        .submit(&warm);
    group.bench_function("fleet_warm_cache", |b| {
        b.iter(|| {
            black_box(
                FleetRequest::new(&build, &project)
                    .targets(targets.iter().cloned())
                    .submit(&warm),
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet
}
criterion_main!(benches);
