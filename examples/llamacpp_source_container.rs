//! llama.cpp-style deployment: the same source container specialises to a CUDA system
//! (Ault23), a SYCL system (Aurora), and a Grace-Hopper system (Clariden), reproducing
//! the Figure 11 comparison against naive and specialized builds.
//!
//! ```sh
//! cargo run --example llamacpp_source_container
//! ```

use xaas::prelude::*;
use xaas_apps::llamacpp;
use xaas_hpcsim::{ExecutionEngine, SystemModel};

fn main() {
    let project = llamacpp::project();
    let store = ImageStore::new();
    let workload = llamacpp::benchmark_workload(512, 128);
    println!("workload: {}", workload.name);

    for system in [
        SystemModel::ault23(),
        SystemModel::aurora(),
        SystemModel::clariden(),
    ] {
        let image = build_source_container(
            &project,
            xaas::source_container::architecture_of(&system),
            &store,
            &format!(
                "spcl/mini-llamacpp:src-{}",
                system.name.to_ascii_lowercase()
            ),
        );
        let deployment = SourceDeployRequest::new(&project, &image, &system)
            .submit(&Orchestrator::uncached(&store))
            .expect("deployment succeeds");

        let engine = ExecutionEngine::new(&system);
        let mut rows: Vec<(String, f64, bool)> = Vec::new();
        for profile in xaas_apps::make_executable(xaas_apps::llamacpp_baselines(&system), &system) {
            if let Ok(report) = engine.execute(&workload, &profile) {
                rows.push((
                    profile.label.clone(),
                    report.compute_seconds,
                    report.used_gpu,
                ));
            }
        }
        let deployed = engine
            .execute(&workload, &deployment.build_profile)
            .unwrap();
        rows.push((
            "XaaS Source (deployed)".to_string(),
            deployed.compute_seconds,
            deployed.used_gpu,
        ));

        println!("\n=== {} ===", system.name);
        println!(
            "  selected configuration: {}",
            deployment.assignment.label()
        );
        for (label, seconds, gpu) in rows {
            println!(
                "  {:<26} {:>8.3} s{}",
                label,
                seconds,
                if gpu { "   [GPU]" } else { "" }
            );
        }
    }
}
