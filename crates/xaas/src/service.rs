//! The multi-tenant service layer: one engine, many sessions.
//!
//! An [`Orchestrator`] is a single caller's view of the execution stack. The
//! paper's XaaS vision, though, is a *service*: many users submitting source/IR
//! container builds and fleet deployments against shared infrastructure. This
//! module is that front door. An [`OrchestratorService`] owns one orchestrator
//! (engine + cache + store + policy) and hands out [`Session`]s — one per
//! tenant — that multiplex typed requests onto the shared engine:
//!
//! ```text
//!   Session("alice") ─┐  admit   ┌────────────┐  queue  ┌─────────────┐
//!   Session("bob")   ─┼─────────►│ admission  ├────────►│ shared pool │──► trace
//!   Session("carol") ─┘  (or     │ control    │ (fair   │ (interleaved│
//!                        typed   └────────────┘  lanes) │  actions)   │
//!                        error)                         └─────────────┘
//! ```
//!
//! Every request a session submits is tagged with the session's tenant: the
//! engine's fair-queuing policies lane by it (see
//! [`WeightedFair`](crate::engine::WeightedFair)), and the run's
//! [`ActionTrace`](crate::engine::ActionTrace) records it. Actions from
//! concurrent sessions interleave on the shared worker pool at action
//! granularity, while the action cache keeps results byte-identical to
//! sequential execution — cross-session submissions of the same
//! [`BuildKey`](xaas_container::BuildKey) are single-flight.
//!
//! Admission control bounds the damage any tenant (or everyone at once) can do:
//!
//! * a tenant over its own in-flight allowance gets
//!   [`AdmissionError::Backpressure`] — *your* lane is full, retry later;
//! * a saturated service (global in-flight limit, or the engine's ready queue
//!   past its depth bound) gets [`AdmissionError::Rejected`];
//! * a draining service gets [`AdmissionError::Draining`].
//!
//! All three are typed errors returned *before* any action runs — never a
//! panic, never an unbounded queue. [`Session::submit_wait`] turns backpressure
//! into blocking for callers that prefer waiting to retry loops, and
//! [`OrchestratorService::drain`] / [`drain_wait`](OrchestratorService::drain_wait)
//! give the service a graceful shutdown: stop admitting, let in-flight requests
//! finish.

#![deny(clippy::unwrap_used, clippy::dbg_macro)]
use crate::engine::QueueStats;
use crate::orchestrator::{
    FleetReport, FleetRequest, IrBuildRequest, IrDeployRequest, Orchestrator, SourceDeployRequest,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use xaas_container::{CacheStats, ImageStore};

/// Bounds enforced by [`OrchestratorService`] admission control.
///
/// The defaults (8 in-flight requests per tenant, 64 globally, 4096 queued
/// actions) are sized for the simulated pipelines in this repository; a real
/// deployment would derive them from worker count and memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceLimits {
    /// In-flight requests allowed per tenant before [`AdmissionError::Backpressure`].
    pub max_in_flight_per_tenant: usize,
    /// In-flight requests allowed service-wide before [`AdmissionError::Rejected`].
    pub max_in_flight_global: usize,
    /// Engine ready-queue depth ([`QueueStats::queued_actions`]) beyond which new
    /// requests are [`AdmissionError::Rejected`] even under the in-flight limits.
    pub max_queued_actions: usize,
    /// Byte budget for the persistent disk tier when the service is built with
    /// [`OrchestratorServiceBuilder::cache_tiers`] (applied via
    /// [`TierConfig::cap_disk_bytes`](xaas_container::TierConfig::cap_disk_bytes)
    /// at build time); `None` leaves the tier config's own budget in place.
    pub max_disk_cache_bytes: Option<u64>,
}

impl Default for ServiceLimits {
    fn default() -> Self {
        Self {
            max_in_flight_per_tenant: 8,
            max_in_flight_global: 64,
            max_queued_actions: 4096,
            max_disk_cache_bytes: None,
        }
    }
}

impl ServiceLimits {
    /// Override the per-tenant in-flight bound (clamped to at least 1).
    pub fn per_tenant(mut self, limit: usize) -> Self {
        self.max_in_flight_per_tenant = limit.max(1);
        self
    }

    /// Override the global in-flight bound (clamped to at least 1).
    pub fn global(mut self, limit: usize) -> Self {
        self.max_in_flight_global = limit.max(1);
        self
    }

    /// Override the ready-queue saturation bound (clamped to at least 1).
    pub fn queued_actions(mut self, limit: usize) -> Self {
        self.max_queued_actions = limit.max(1);
        self
    }

    /// Cap the persistent disk tier's byte budget (see
    /// [`Self::max_disk_cache_bytes`]).
    pub fn disk_cache_bytes(mut self, bytes: u64) -> Self {
        self.max_disk_cache_bytes = Some(bytes);
        self
    }
}

/// Why admission control refused a request. Returned before any action runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The submitting tenant is at its own in-flight allowance. The rest of the
    /// service may be idle — retry after one of this tenant's requests
    /// completes (or use [`Session::submit_wait`]).
    Backpressure {
        /// The tenant that hit its allowance.
        tenant: String,
        /// The tenant's in-flight requests at refusal time.
        in_flight: usize,
        /// The per-tenant limit ([`ServiceLimits::max_in_flight_per_tenant`]).
        limit: usize,
    },
    /// The service as a whole is saturated: the global in-flight limit is
    /// reached, or the engine's shared ready queue is past its depth bound.
    Rejected {
        /// In-flight requests service-wide at refusal time.
        in_flight: usize,
        /// Ready-queue depth at refusal time.
        queued_actions: usize,
        /// The limit that was hit (global in-flight or queued-action bound).
        limit: usize,
    },
    /// The service is draining: no new requests are admitted, in-flight
    /// requests are finishing.
    Draining,
    /// The engine's pre-submission static analyzer rejected the request's
    /// action graph with deny-level diagnostics before any of its actions ran
    /// (see [`GraphAnalyzer`](crate::engine::GraphAnalyzer)). The report lists
    /// every finding; resubmitting the same graph under the same policy will
    /// fail the same way.
    Invalid(Box<crate::engine::AnalysisReport>),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Backpressure {
                tenant,
                in_flight,
                limit,
            } => write!(
                f,
                "tenant `{tenant}` is at its in-flight allowance ({in_flight}/{limit}); retry later"
            ),
            AdmissionError::Rejected {
                in_flight,
                queued_actions,
                limit,
            } => write!(
                f,
                "service saturated ({in_flight} requests in flight, {queued_actions} actions queued, limit {limit})"
            ),
            AdmissionError::Draining => f.write_str("service is draining; no new requests admitted"),
            AdmissionError::Invalid(report) => {
                write!(f, "request graph rejected by pre-submission analysis: {report}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A request refused by admission control or failed by the pipeline it ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError<E> {
    /// Admission control refused the request before any action ran.
    Admission(AdmissionError),
    /// The request was admitted and its pipeline returned a typed error.
    Request(E),
}

impl<E> ServiceError<E> {
    /// The admission error, if that is what this is.
    pub fn admission(&self) -> Option<&AdmissionError> {
        match self {
            ServiceError::Admission(error) => Some(error),
            ServiceError::Request(_) => None,
        }
    }

    /// Whether this is per-tenant backpressure (worth retrying later).
    pub fn is_backpressure(&self) -> bool {
        matches!(
            self,
            ServiceError::Admission(AdmissionError::Backpressure { .. })
        )
    }
}

impl<E: fmt::Display> fmt::Display for ServiceError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Admission(error) => write!(f, "admission refused: {error}"),
            ServiceError::Request(error) => error.fmt(f),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for ServiceError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Admission(error) => Some(error),
            ServiceError::Request(error) => Some(error),
        }
    }
}

/// A typed request the service can admit and execute on a tenant's behalf.
///
/// Implemented for the orchestrator request types ([`IrBuildRequest`],
/// [`IrDeployRequest`], [`SourceDeployRequest`], [`FleetRequest`]), so one
/// [`Session::submit`] serves every pipeline.
pub trait ServiceRequest {
    /// What the pipeline produces.
    type Output;
    /// The pipeline's typed error ([`std::convert::Infallible`] for fleet
    /// requests, whose reports carry per-outcome errors instead).
    type Error;

    /// Execute on the session's tenant-tagged orchestrator. Called only after
    /// admission succeeded.
    fn execute(self, orch: &Orchestrator) -> Result<Self::Output, Self::Error>;

    /// If `error` is the engine's pre-submission analyzer rejecting the
    /// request's graph, extract the report so the service surfaces it as
    /// [`AdmissionError::Invalid`] — the refusal happened before any of the
    /// request's actions ran, exactly like the other admission errors.
    /// Default: not an analysis rejection.
    fn analysis_rejection(
        error: Self::Error,
    ) -> Result<Box<crate::engine::AnalysisReport>, Self::Error> {
        Err(error)
    }
}

impl ServiceRequest for IrBuildRequest<'_> {
    type Output = crate::ir_container::IrContainerBuild;
    type Error = crate::ir_container::IrPipelineError;

    fn execute(self, orch: &Orchestrator) -> Result<Self::Output, Self::Error> {
        self.submit(orch)
    }

    fn analysis_rejection(
        error: Self::Error,
    ) -> Result<Box<crate::engine::AnalysisReport>, Self::Error> {
        match error {
            crate::ir_container::IrPipelineError::Analysis(report) => Ok(report),
            other => Err(other),
        }
    }
}

impl ServiceRequest for IrDeployRequest<'_> {
    type Output = crate::deploy::IrDeployment;
    type Error = crate::deploy::DeployError;

    fn execute(self, orch: &Orchestrator) -> Result<Self::Output, Self::Error> {
        self.submit(orch)
    }

    fn analysis_rejection(
        error: Self::Error,
    ) -> Result<Box<crate::engine::AnalysisReport>, Self::Error> {
        match error {
            crate::deploy::DeployError::Analysis(report) => Ok(report),
            other => Err(other),
        }
    }
}

impl ServiceRequest for SourceDeployRequest<'_> {
    type Output = crate::source_container::SourceDeployment;
    type Error = crate::source_container::SourceContainerError;

    fn execute(self, orch: &Orchestrator) -> Result<Self::Output, Self::Error> {
        self.submit(orch)
    }

    fn analysis_rejection(
        error: Self::Error,
    ) -> Result<Box<crate::engine::AnalysisReport>, Self::Error> {
        match error {
            crate::source_container::SourceContainerError::Analysis(report) => Ok(report),
            other => Err(other),
        }
    }
}

impl ServiceRequest for FleetRequest<'_> {
    type Output = FleetReport;
    type Error = std::convert::Infallible;

    fn execute(self, orch: &Orchestrator) -> Result<Self::Output, Self::Error> {
        Ok(self.submit(orch))
    }
}

/// Admission counters, guarded by one mutex so refusal decisions are atomic.
#[derive(Default)]
struct AdmitState {
    in_flight_global: usize,
    in_flight_by_tenant: BTreeMap<String, usize>,
    draining: bool,
}

/// Monotonic outcome counters (outside the lock; totals, never read-modify-write).
#[derive(Default)]
struct AdmitCounters {
    admitted: AtomicU64,
    backpressured: AtomicU64,
    rejected: AtomicU64,
    refused_draining: AtomicU64,
}

struct ServiceInner {
    orch: Orchestrator,
    limits: ServiceLimits,
    state: Mutex<AdmitState>,
    changed: Condvar,
    counters: AdmitCounters,
}

impl ServiceInner {
    fn lock_state(&self) -> MutexGuard<'_, AdmitState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// One admission decision under the lock. `Err` never mutates counts.
    fn try_admit_locked(&self, state: &mut AdmitState, tenant: &str) -> Result<(), AdmissionError> {
        if state.draining {
            self.counters
                .refused_draining
                .fetch_add(1, Ordering::Relaxed);
            return Err(AdmissionError::Draining);
        }
        let queued_actions = self.orch.engine().queue_stats().queued_actions;
        if state.in_flight_global >= self.limits.max_in_flight_global {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(AdmissionError::Rejected {
                in_flight: state.in_flight_global,
                queued_actions,
                limit: self.limits.max_in_flight_global,
            });
        }
        if queued_actions >= self.limits.max_queued_actions {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(AdmissionError::Rejected {
                in_flight: state.in_flight_global,
                queued_actions,
                limit: self.limits.max_queued_actions,
            });
        }
        let tenant_in_flight = state.in_flight_by_tenant.get(tenant).copied().unwrap_or(0);
        if tenant_in_flight >= self.limits.max_in_flight_per_tenant {
            self.counters.backpressured.fetch_add(1, Ordering::Relaxed);
            return Err(AdmissionError::Backpressure {
                tenant: tenant.to_string(),
                in_flight: tenant_in_flight,
                limit: self.limits.max_in_flight_per_tenant,
            });
        }
        state.in_flight_global += 1;
        *state
            .in_flight_by_tenant
            .entry(tenant.to_string())
            .or_insert(0) += 1;
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn admit<'a>(&'a self, tenant: &'a str) -> Result<AdmitPermit<'a>, AdmissionError> {
        let mut state = self.lock_state();
        self.try_admit_locked(&mut state, tenant)?;
        Ok(AdmitPermit {
            inner: self,
            tenant,
        })
    }

    /// Like [`admit`](Self::admit), but blocks through `Backpressure` and
    /// `Rejected` until a slot frees. Still fails fast on `Draining`.
    fn admit_wait<'a>(&'a self, tenant: &'a str) -> Result<AdmitPermit<'a>, AdmissionError> {
        let mut state = self.lock_state();
        loop {
            match self.try_admit_locked(&mut state, tenant) {
                Ok(()) => {
                    return Ok(AdmitPermit {
                        inner: self,
                        tenant,
                    })
                }
                Err(AdmissionError::Draining) => return Err(AdmissionError::Draining),
                Err(_) => {
                    state = self.changed.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    fn release(&self, tenant: &str) {
        let mut state = self.lock_state();
        state.in_flight_global = state.in_flight_global.saturating_sub(1);
        if let Some(count) = state.in_flight_by_tenant.get_mut(tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                state.in_flight_by_tenant.remove(tenant);
            }
        }
        drop(state);
        self.changed.notify_all();
    }
}

/// RAII admission slot: holds one in-flight count for `tenant`, released on drop
/// (so a panicking pipeline still frees its slot).
struct AdmitPermit<'a> {
    inner: &'a ServiceInner,
    tenant: &'a str,
}

impl fmt::Debug for AdmitPermit<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdmitPermit")
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl Drop for AdmitPermit<'_> {
    fn drop(&mut self) {
        self.inner.release(self.tenant);
    }
}

/// Point-in-time service counters (see [`OrchestratorService::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted since the service was created.
    pub admitted: u64,
    /// Requests refused with [`AdmissionError::Backpressure`].
    pub backpressured: u64,
    /// Requests refused with [`AdmissionError::Rejected`].
    pub rejected: u64,
    /// Requests refused with [`AdmissionError::Draining`].
    pub refused_draining: u64,
    /// Requests in flight right now, service-wide.
    pub in_flight: usize,
    /// Requests in flight right now, per tenant (empty entries omitted).
    pub in_flight_by_tenant: BTreeMap<String, usize>,
    /// Whether the service is draining.
    pub draining: bool,
    /// The engine's shared ready-queue occupancy.
    pub queue: QueueStats,
}

/// A multi-tenant orchestrator service: one shared [`Orchestrator`] (engine,
/// cache, store, policy), many [`Session`]s, admission control in front.
///
/// Cloning is cheap and shares the whole service (the admission state included).
///
/// ```
/// use xaas::engine::WeightedFair;
/// use xaas::orchestrator::{IrBuildRequest, Orchestrator};
/// use xaas::service::{OrchestratorService, ServiceLimits};
///
/// let service = OrchestratorService::builder()
///     .policy(WeightedFair::new().with_weight("alice", 3))
///     .limits(ServiceLimits::default().per_tenant(2))
///     .build();
/// let alice = service.session("alice");
/// let project = xaas_apps::lulesh::project();
/// let config = xaas::ir_container::IrPipelineConfig::sweep_options(
///     &project,
///     &["WITH_MPI", "WITH_OPENMP"],
/// );
/// let build = alice.submit(IrBuildRequest::new(&project, &config)).unwrap();
/// assert_eq!(build.trace.tenant.as_deref(), Some("alice"));
/// ```
#[derive(Clone)]
pub struct OrchestratorService {
    inner: Arc<ServiceInner>,
}

impl OrchestratorService {
    /// A service over `orch` with [`ServiceLimits::default`].
    pub fn new(orch: Orchestrator) -> Self {
        Self::with_limits(orch, ServiceLimits::default())
    }

    /// A service over `orch` with explicit limits. The engine's pre-submission
    /// analyzer is told the queued-action bound, so graphs that alone would
    /// overflow it are flagged ([`DiagnosticCode::QueueOverflow`](crate::engine::DiagnosticCode))
    /// at analysis time instead of only tripping admission at run time.
    pub fn with_limits(orch: Orchestrator, limits: ServiceLimits) -> Self {
        let orch = orch.with_queue_bound(Some(limits.max_queued_actions));
        Self {
            inner: Arc::new(ServiceInner {
                orch,
                limits,
                state: Mutex::new(AdmitState::default()),
                changed: Condvar::new(),
                counters: AdmitCounters::default(),
            }),
        }
    }

    /// A builder over [`OrchestratorBuilder`](crate::orchestrator::OrchestratorBuilder)
    /// plus [`ServiceLimits`].
    pub fn builder() -> OrchestratorServiceBuilder {
        OrchestratorServiceBuilder::default()
    }

    /// Open a session for `tenant`. Sessions are cheap, cloneable, and `Send` —
    /// open one per concurrent caller. Every request the session submits runs
    /// tenant-tagged on the shared engine.
    pub fn session(&self, tenant: impl Into<String>) -> Session {
        let tenant = tenant.into();
        let orch = self.inner.orch.for_tenant(&tenant);
        Session {
            inner: Arc::clone(&self.inner),
            orch,
            tenant,
        }
    }

    /// The shared orchestrator (untenanted view).
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.inner.orch
    }

    /// The content-addressed store behind the shared cache.
    pub fn store(&self) -> &ImageStore {
        self.inner.orch.store()
    }

    /// The shared cache backend's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.orch.cache_stats()
    }

    /// The admission limits in force.
    pub fn limits(&self) -> ServiceLimits {
        self.inner.limits
    }

    /// Current counters: admissions, refusals by kind, in-flight by tenant, and
    /// the engine queue snapshot.
    pub fn stats(&self) -> ServiceStats {
        let state = self.inner.lock_state();
        ServiceStats {
            admitted: self.inner.counters.admitted.load(Ordering::Relaxed),
            backpressured: self.inner.counters.backpressured.load(Ordering::Relaxed),
            rejected: self.inner.counters.rejected.load(Ordering::Relaxed),
            refused_draining: self.inner.counters.refused_draining.load(Ordering::Relaxed),
            in_flight: state.in_flight_global,
            in_flight_by_tenant: state.in_flight_by_tenant.clone(),
            draining: state.draining,
            queue: self.inner.orch.engine().queue_stats(),
        }
    }

    /// Stop admitting new requests. In-flight requests keep running; new
    /// submissions get [`AdmissionError::Draining`]. Idempotent.
    pub fn drain(&self) {
        let mut state = self.inner.lock_state();
        state.draining = true;
        drop(state);
        self.inner.changed.notify_all();
    }

    /// [`drain`](Self::drain), then block until every in-flight request has
    /// completed. After this returns the service is quiescent: nothing is in
    /// flight and nothing new can be admitted until [`resume`](Self::resume).
    pub fn drain_wait(&self) {
        self.drain();
        let mut state = self.inner.lock_state();
        while state.in_flight_global > 0 {
            state = self
                .inner
                .changed
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Re-open a drained service for new admissions.
    pub fn resume(&self) {
        let mut state = self.inner.lock_state();
        state.draining = false;
        drop(state);
        self.inner.changed.notify_all();
    }

    /// Whether the service is draining.
    pub fn is_draining(&self) -> bool {
        self.inner.lock_state().draining
    }
}

impl fmt::Debug for OrchestratorService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.inner.lock_state();
        f.debug_struct("OrchestratorService")
            .field("limits", &self.inner.limits)
            .field("in_flight", &state.in_flight_global)
            .field("tenants", &state.in_flight_by_tenant.len())
            .field("draining", &state.draining)
            .finish()
    }
}

/// Fluent construction of an [`OrchestratorService`]: the orchestrator knobs
/// (workers, cache, policy, fleet strategy) plus [`ServiceLimits`].
#[derive(Debug, Default)]
pub struct OrchestratorServiceBuilder {
    orch: crate::orchestrator::OrchestratorBuilder,
    limits: ServiceLimits,
    tiers: Option<xaas_container::TierConfig>,
}

impl OrchestratorServiceBuilder {
    /// Fix the engine worker count (default: host parallelism clamped to `[2, 8]`).
    pub fn workers(mut self, workers: usize) -> Self {
        self.orch = self.orch.workers(workers);
        self
    }

    /// Route every keyed action through an existing shared
    /// [`ActionCache`](xaas_container::ActionCache).
    pub fn action_cache(mut self, cache: xaas_container::ActionCache) -> Self {
        self.orch = self.orch.action_cache(cache);
        self
    }

    /// Never cache: every action executes, artifacts and images land in `store`.
    pub fn uncached(mut self, store: ImageStore) -> Self {
        self.orch = self.orch.uncached(store);
        self
    }

    /// Route every keyed action through a persistent tiered cache (see
    /// [`OrchestratorBuilder::cache_tiers`](crate::orchestrator::OrchestratorBuilder::cache_tiers)).
    /// The stack is constructed at build time so that
    /// [`ServiceLimits::max_disk_cache_bytes`] — settable before *or* after
    /// this call — is applied to the disk tier's byte budget; use
    /// [`try_build`](Self::try_build) to observe tier-construction errors as a
    /// [`TierError`](xaas_container::TierError) instead of a panic.
    pub fn cache_tiers(mut self, config: xaas_container::TierConfig) -> Self {
        self.tiers = Some(config);
        self
    }

    /// Set the scheduling policy (e.g. [`WeightedFair`](crate::engine::WeightedFair)
    /// for tenant-fair lanes).
    pub fn policy(mut self, policy: impl crate::engine::SchedulingPolicy + 'static) -> Self {
        self.orch = self.orch.policy(policy);
        self
    }

    /// How fleet requests execute (default:
    /// [`FleetStrategy::UnionGraph`](crate::orchestrator::FleetStrategy::UnionGraph)).
    pub fn fleet_strategy(mut self, strategy: crate::orchestrator::FleetStrategy) -> Self {
        self.orch = self.orch.fleet_strategy(strategy);
        self
    }

    /// Set the admission limits (default: [`ServiceLimits::default`]).
    pub fn limits(mut self, limits: ServiceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Set the engine's pre-submission analysis mode (default:
    /// [`AnalysisMode::Strict`](crate::engine::AnalysisMode)). Under `Strict`,
    /// deny-level diagnostics refuse the request as
    /// [`AdmissionError::Invalid`] before any of its actions run.
    pub fn analysis(mut self, mode: crate::engine::AnalysisMode) -> Self {
        self.orch = self.orch.analysis(mode);
        self
    }

    /// Build the service.
    ///
    /// # Panics
    ///
    /// When a tiered stack was requested ([`cache_tiers`](Self::cache_tiers))
    /// and could not be constructed (unwritable disk root, zero L1 capacity).
    /// Use [`try_build`](Self::try_build) to handle that case as a value.
    pub fn build(self) -> OrchestratorService {
        #[allow(clippy::expect_used)]
        self.try_build()
            .expect("tiered cache stack failed to initialize")
    }

    /// Build the service, surfacing tier-construction failures as a
    /// [`TierError`](xaas_container::TierError). Identical to
    /// [`build`](Self::build) when no tiered stack was requested.
    pub fn try_build(mut self) -> Result<OrchestratorService, xaas_container::TierError> {
        if let Some(mut config) = self.tiers.take() {
            if let Some(cap) = self.limits.max_disk_cache_bytes {
                config = config.cap_disk_bytes(cap);
            }
            self.orch = self.orch.cache_tiers(config)?;
        }
        Ok(OrchestratorService::with_limits(
            self.orch.build(),
            self.limits,
        ))
    }
}

/// One tenant's handle onto the shared service.
///
/// A session is cheap to clone and `Send`: hand one to each concurrent caller
/// thread. Submissions block the calling thread until the request's actions
/// have drained through the shared pool (the *engine* is nonblocking across
/// submissions — actions from other sessions interleave with this one), so a
/// session held by N threads contributes up to N in-flight requests.
#[derive(Clone)]
pub struct Session {
    inner: Arc<ServiceInner>,
    orch: Orchestrator,
    tenant: String,
}

impl Session {
    /// The tenant this session submits as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The tenant-tagged orchestrator requests run on. Exposed for read access
    /// (store, cache stats, policy); submitting directly to it bypasses
    /// admission control.
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orch
    }

    /// The service this session belongs to.
    pub fn service(&self) -> OrchestratorService {
        OrchestratorService {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Admit and execute `request`, returning its output or a typed
    /// [`ServiceError`]: admission refusals ([`AdmissionError`]) before any
    /// action runs, pipeline errors after.
    pub fn submit<R: ServiceRequest>(
        &self,
        request: R,
    ) -> Result<R::Output, ServiceError<R::Error>> {
        let permit = self
            .inner
            .admit(&self.tenant)
            .map_err(ServiceError::Admission)?;
        let result = request.execute(&self.orch);
        drop(permit);
        result.map_err(Self::classify::<R>)
    }

    /// Like [`submit`](Self::submit), but blocks through backpressure and
    /// saturation until a slot frees instead of returning the refusal. Still
    /// fails fast with [`AdmissionError::Draining`] on a draining service.
    pub fn submit_wait<R: ServiceRequest>(
        &self,
        request: R,
    ) -> Result<R::Output, ServiceError<R::Error>> {
        let permit = self
            .inner
            .admit_wait(&self.tenant)
            .map_err(ServiceError::Admission)?;
        let result = request.execute(&self.orch);
        drop(permit);
        result.map_err(Self::classify::<R>)
    }

    /// Fold a pipeline error back into the service's error taxonomy: a
    /// pre-submission analysis rejection is an *admission* refusal
    /// ([`AdmissionError::Invalid`] — no action of the request ran), anything
    /// else a pipeline failure.
    fn classify<R: ServiceRequest>(error: R::Error) -> ServiceError<R::Error> {
        match R::analysis_rejection(error) {
            Ok(report) => ServiceError::Admission(AdmissionError::Invalid(report)),
            Err(error) => ServiceError::Request(error),
        }
    }

    /// Convenience for fleet requests, whose reports are always produced (per-
    /// outcome errors live on the report): unwraps the impossible request error.
    pub fn submit_fleet(&self, request: FleetRequest<'_>) -> Result<FleetReport, AdmissionError> {
        self.submit(request).map_err(|error| match error {
            ServiceError::Admission(admission) => admission,
            ServiceError::Request(impossible) => match impossible {},
        })
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("tenant", &self.tenant)
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::ir_container::IrPipelineConfig;
    use std::sync::mpsc;
    use std::time::Duration;

    fn lulesh_sweep() -> (xaas_buildsys::ProjectSpec, IrPipelineConfig) {
        let project = xaas_apps::lulesh::project();
        let config = IrPipelineConfig::sweep_options(&project, &["WITH_MPI", "WITH_OPENMP"]);
        (project, config)
    }

    #[test]
    fn session_submissions_are_tenant_tagged_and_counted() {
        let (project, config) = lulesh_sweep();
        let service = OrchestratorService::builder().workers(2).build();
        let session = service.session("alice");
        let build = session
            .submit(IrBuildRequest::new(&project, &config).reference("svc:ir"))
            .unwrap();
        assert_eq!(build.trace.tenant.as_deref(), Some("alice"));
        for record in &build.trace.records {
            assert_eq!(record.tenant.as_deref(), Some("alice"));
        }
        let stats = service.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.in_flight, 0);
        assert!(stats.in_flight_by_tenant.is_empty());
    }

    #[test]
    fn per_tenant_backpressure_is_typed_and_global_saturation_rejects() {
        let service = OrchestratorService::builder()
            .workers(1)
            .limits(ServiceLimits::default().per_tenant(1).global(2))
            .build();
        // Occupy alice's only slot by hand.
        let permit = service.inner.admit("alice").unwrap();
        let error = service.inner.admit("alice").unwrap_err();
        assert_eq!(
            error,
            AdmissionError::Backpressure {
                tenant: "alice".into(),
                in_flight: 1,
                limit: 1,
            }
        );
        // A different tenant still gets in — backpressure is per-lane.
        let other = service.inner.admit("bob").unwrap();
        // Global limit (2) now reached: even a fresh tenant is rejected.
        let error = service.inner.admit("carol").unwrap_err();
        assert!(matches!(
            error,
            AdmissionError::Rejected {
                in_flight: 2,
                limit: 2,
                ..
            }
        ));
        drop(other);
        drop(permit);
        let stats = service.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.backpressured, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn drain_refuses_new_requests_and_drain_wait_quiesces() {
        let (project, config) = lulesh_sweep();
        let service = OrchestratorService::builder().workers(2).build();
        let session = service.session("alice");
        service.drain();
        let error = session
            .submit(IrBuildRequest::new(&project, &config))
            .unwrap_err();
        assert!(matches!(
            error,
            ServiceError::Admission(AdmissionError::Draining)
        ));
        assert_eq!(service.stats().refused_draining, 1);
        service.drain_wait();
        assert_eq!(service.stats().in_flight, 0);
        // Resume re-opens the front door.
        service.resume();
        session
            .submit(IrBuildRequest::new(&project, &config).reference("svc:after-drain"))
            .unwrap();
    }

    #[test]
    fn submit_wait_blocks_through_backpressure_until_a_slot_frees() {
        let (project, config) = lulesh_sweep();
        let service = OrchestratorService::builder()
            .workers(2)
            .limits(ServiceLimits::default().per_tenant(1))
            .build();
        let session = service.session("alice");
        let permit = service.inner.admit("alice").unwrap();
        let (tx, rx) = mpsc::channel();
        let waiting = {
            let session = session.clone();
            let (project, config) = (project.clone(), config.clone());
            std::thread::spawn(move || {
                let result = session
                    .submit_wait(IrBuildRequest::new(&project, &config).reference("svc:waited"));
                tx.send(()).ok();
                result
            })
        };
        // The waiter must be parked, not failed: nothing arrives while the
        // permit is held.
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        drop(permit);
        rx.recv_timeout(Duration::from_secs(30))
            .expect("waiter admitted after the slot freed");
        waiting.join().unwrap().unwrap();
    }
}
