//! # xaas-specs
//!
//! Specialization-point discovery for the XaaS Containers reproduction (Sections 3.2 and
//! 6.2 of the paper).
//!
//! * [`model`] — the specialization-point document (Figure 4a / Appendix B schema);
//! * [`extract`] — rule-based extraction from project definitions (ground truth) and from
//!   build-script text;
//! * [`llm`] — simulated LLM discovery with per-model error/latency/cost profiles,
//!   reproducing Table 4 and the llama.cpp generalization experiment deterministically;
//! * [`metrics`] — precision/recall/F1 scoring with the normalisation ablation;
//! * [`intersect`](mod@intersect) — intersection of application specialization points with discovered
//!   system features (Figure 4c);
//! * [`catalog`] — the Table 1 application catalogue.

#![warn(missing_docs)]

pub mod catalog;
pub mod extract;
pub mod intersect;
pub mod llm;
pub mod metrics;
pub mod model;

/// Commonly used types re-exported together.
pub mod prelude {
    pub use crate::catalog::{table1, CatalogEntry};
    pub use crate::extract::{from_project, from_script, guess_category};
    pub use crate::intersect::{intersect, CommonSpecialization, Exclusion};
    pub use crate::llm::{analyze, AnalysisConfig, ErrorProfile, LlmRunResult, SimulatedLlm};
    pub use crate::metrics::{min_med_max, normalize_name, score, Metrics, MinMedMax};
    pub use crate::model::{SpecCategory, SpecEntry, SpecializationDocument};
}

pub use prelude::*;
