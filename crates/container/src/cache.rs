//! Content-addressed action cache: memoized build steps keyed by input digests.
//!
//! The paper's deduplication economics (Figures 7–8, 12–13) come from never redoing a
//! build step whose inputs were already seen: translation units are deduplicated by the
//! hash of their *preprocessed* content, and shared IR is lowered once per target ISA.
//! This module supplies the substrate for that reuse, in the style of Nix/Bazel
//! derivation stores: a [`BuildKey`] names one build action by the digests of everything
//! that determines its output, and the [`ActionCache`] maps key digests to output blobs
//! stored in the content-addressed [`ImageStore`].
//!
//! # `BuildKey` derivation
//!
//! A key is the canonical tuple
//!
//! ```text
//! (tu_digest, target_isa, options, toolchain)
//! ```
//!
//! * `tu_digest` — content digest of the *preprocessed* translation unit (or of the
//!   stored IR unit when lowering): two configurations whose definitions do not change
//!   the token stream share this digest, exactly the stage-2 identity of Figure 7;
//! * `target_isa` — the code-generation target (`xir.ir` while building
//!   target-independent IR; the concrete ISA name when lowering at deployment);
//! * `options` — the IR-relevant option/flag assignment (definitions, OpenMP,
//!   optimisation level — never the delayed `-m…` flags);
//! * `toolchain` — an identifier pinning the compiler that runs the action.
//!
//! The key digest is the SHA-256 of the canonical rendering, so it is stable across
//! processes and sessions. Because every component is itself a content digest or a
//! canonical string, a cache hit is sound: equal keys imply byte-identical outputs.
//!
//! The cache is safe for concurrent use and *single-flight*: when several workers race
//! on the same key (the fleet specializer does this deliberately), exactly one computes
//! the action and the rest block and reuse its output, so no [`BuildKey`] is ever built
//! twice.

use crate::blob::Blob;
use crate::digest::Digest;
use crate::image::{ImageError, ImageStore};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// The identity of one memoizable build action. See the module docs for the derivation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BuildKey {
    /// Content digest of the preprocessed translation unit or stored IR unit.
    pub tu_digest: String,
    /// Code-generation target (`xir.ir` for IR builds, the ISA name for lowering).
    pub target_isa: String,
    /// Canonical IR-relevant option assignment (definitions, OpenMP, opt level).
    pub options: String,
    /// Toolchain identifier pinning the compiler.
    pub toolchain: String,
}

impl BuildKey {
    /// Build a key from its four components.
    pub fn new(
        tu_digest: impl Into<String>,
        target_isa: impl Into<String>,
        options: impl Into<String>,
        toolchain: impl Into<String>,
    ) -> Self {
        Self {
            tu_digest: tu_digest.into(),
            target_isa: target_isa.into(),
            options: options.into(),
            toolchain: toolchain.into(),
        }
    }

    /// Canonical textual rendering (field-tagged so components can never collide by
    /// shifting bytes between fields).
    pub fn canonical(&self) -> String {
        format!(
            "tu={}\nisa={}\nopts={}\ntoolchain={}\n",
            self.tu_digest, self.target_isa, self.options, self.toolchain
        )
    }

    /// The stable SHA-256 digest of the canonical rendering.
    pub fn digest(&self) -> Digest {
        Digest::of_str(&self.canonical())
    }
}

/// Counters describing cache effectiveness. Snapshots are cheap copies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the action.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Lookups that blocked on a concurrent in-flight computation of the same key and
    /// then reused its result (counted in `hits` as well).
    pub coalesced: u64,
    /// Live entries currently in the cache.
    pub entries: usize,
}

impl CacheStats {
    /// Total number of compile/lower actions actually executed through this cache.
    pub fn actions_executed(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; zero when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A cache report combining action-cache counters with the backing store's blob-level
/// deduplication statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheReport {
    /// Action-cache counters.
    pub actions: CacheStats,
    /// Blobs held by the backing content-addressed store.
    pub blob_count: usize,
    /// Bytes held by the backing store (deduplicated by digest).
    pub stored_bytes: u64,
    /// Bytes that were offered to the store but already present (duplicate puts).
    pub dedup_bytes: u64,
}

/// Marker error returned by [`CacheBackend::get_or_compute_action`] when the compute
/// closure fails. The closure is expected to capture the *typed* error on the side (the
/// `xaas::engine` executor does exactly that), so the trait stays object-safe without
/// erasing error types through `Box<dyn Any>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeFailed;

impl std::fmt::Display for ComputeFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "action computation failed")
    }
}

impl std::error::Error for ComputeFailed {}

/// A pluggable action-cache backend: the seam between the `xaas::engine` executor and
/// artifact storage.
///
/// Two implementations ship with the crate: [`ActionCache`] (content-addressed
/// memoization with single-flight semantics) and [`NoCache`] (always compute — the
/// honest replacement for the old "private empty cache" trick the uncached pipeline
/// entry points used). Both are backed by an [`ImageStore`] so the executor can commit
/// images through the same handle it routes actions through.
pub trait CacheBackend: Send + Sync {
    /// The content-addressed store backing this cache (also used to commit images).
    fn store(&self) -> &ImageStore;

    /// Return the cached output for `key`, or run `compute` and (for memoizing
    /// backends) store its output. The boolean is `true` on a cache hit.
    ///
    /// The output travels as a [`Blob`] handle: a hit hands back the store's own
    /// allocation, and a computed `Vec<u8>` is converted exactly once — downstream
    /// consumers (the engine executor, dependent graph nodes) clone the handle, not
    /// the bytes.
    ///
    /// **Contract:** `compute` is invoked at most once per call, and an
    /// implementation may only return `Err(ComputeFailed)` when `compute` itself
    /// returned it — backend-internal failures (a lost blob, a network error for a
    /// remote cache) must fall back to running `compute`, never fail the action.
    /// The `xaas::engine` executor relies on this: it captures the typed error
    /// inside the closure, and treats `Err` without a captured error as a backend
    /// contract violation (a panic at result collection, not a typed error).
    fn get_or_compute_action(
        &self,
        key: &BuildKey,
        compute: &mut dyn FnMut() -> Result<Vec<u8>, ComputeFailed>,
    ) -> Result<(Blob, bool), ComputeFailed>;

    /// A snapshot of the backend's counters (all zeros for backends that do not track).
    fn backend_stats(&self) -> CacheStats;
}

impl CacheBackend for ActionCache {
    fn store(&self) -> &ImageStore {
        ActionCache::store(self)
    }

    fn get_or_compute_action(
        &self,
        key: &BuildKey,
        compute: &mut dyn FnMut() -> Result<Vec<u8>, ComputeFailed>,
    ) -> Result<(Blob, bool), ComputeFailed> {
        self.get_or_compute(key, compute)
    }

    fn backend_stats(&self) -> CacheStats {
        self.stats()
    }
}

/// A cache backend that never caches: every action executes, nothing is memoized.
///
/// This replaces the former pattern of handing the uncached pipeline entry points a
/// private, empty [`ActionCache`] — the intent ("run everything") is now explicit, and
/// the executed-action counters stay meaningful.
#[derive(Clone)]
pub struct NoCache {
    store: ImageStore,
    stats: Arc<Mutex<CacheStats>>,
}

impl NoCache {
    /// An always-compute backend whose images and blobs land in `store`.
    pub fn new(store: ImageStore) -> Self {
        Self {
            store,
            stats: Arc::new(Mutex::new(CacheStats::default())),
        }
    }

    /// Counters: every routed action is a miss, hits stay zero.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }
}

impl CacheBackend for NoCache {
    fn store(&self) -> &ImageStore {
        &self.store
    }

    fn get_or_compute_action(
        &self,
        _key: &BuildKey,
        compute: &mut dyn FnMut() -> Result<Vec<u8>, ComputeFailed>,
    ) -> Result<(Blob, bool), ComputeFailed> {
        let bytes = compute()?;
        self.stats.lock().misses += 1;
        Ok((Blob::new(bytes), false))
    }

    fn backend_stats(&self) -> CacheStats {
        self.stats()
    }
}

impl std::fmt::Debug for NoCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NoCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[derive(Default)]
struct CacheInner {
    entries: BTreeMap<Digest, Digest>,
    /// Insertion order for FIFO eviction under a capacity bound.
    order: VecDeque<Digest>,
    in_flight: BTreeMap<Digest, Arc<Mutex<()>>>,
    stats: CacheStats,
}

/// A digest-keyed action cache backed by a content-addressed [`ImageStore`].
///
/// Cloning the cache shares its state: builders, deployers, and fleet workers all see
/// the same memoized actions. The blob payloads live in the (also shared) store, so an
/// action output and an identical image layer occupy the bytes only once.
#[derive(Clone)]
pub struct ActionCache {
    store: ImageStore,
    capacity: Option<usize>,
    inner: Arc<Mutex<CacheInner>>,
}

impl ActionCache {
    /// An unbounded cache backed by `store`.
    pub fn new(store: ImageStore) -> Self {
        Self {
            store,
            capacity: None,
            inner: Arc::new(Mutex::new(CacheInner::default())),
        }
    }

    /// A cache that evicts (FIFO) beyond `capacity` entries.
    ///
    /// The bound applies to the key→blob *index* only: eviction drops the memoization
    /// entry, not the output blob, because the backing store is a shared CAS whose
    /// blobs may also be referenced by committed image layers. Reclaiming unreferenced
    /// blobs is a store-level garbage-collection concern, not a cache one.
    pub fn with_capacity(store: ImageStore, capacity: usize) -> Self {
        Self {
            capacity: Some(capacity.max(1)),
            ..Self::new(store)
        }
    }

    /// The backing content-addressed store.
    pub fn store(&self) -> &ImageStore {
        &self.store
    }

    /// Look up an action output without running anything. Does not touch hit/miss
    /// counters — use [`ActionCache::get_or_compute`] for the accounted path. The
    /// returned handle shares the store's allocation.
    pub fn peek(&self, key: &BuildKey) -> Option<Blob> {
        let digest = key.digest();
        let blob = self.inner.lock().entries.get(&digest).cloned()?;
        self.store.blob(&blob).ok()
    }

    /// Whether the cache currently holds an output for `key`.
    pub fn contains(&self, key: &BuildKey) -> bool {
        self.inner.lock().entries.contains_key(&key.digest())
    }

    /// Memoize: return the cached output for `key`, or run `compute`, store its output,
    /// and return it. The boolean is `true` on a cache hit.
    ///
    /// Concurrent callers with the same key are single-flighted: one computes, the
    /// others block until the result is stored and then read it as a (coalesced) hit.
    /// Every caller — the computing worker, each coalesced waiter, and later hits —
    /// receives a [`Blob`] handle onto the *same* stored allocation.
    pub fn get_or_compute<E>(
        &self,
        key: &BuildKey,
        compute: impl FnOnce() -> Result<Vec<u8>, E>,
    ) -> Result<(Blob, bool), E> {
        let digest = key.digest();
        let flight: Arc<Mutex<()>>;
        let guard;
        loop {
            let mut inner = self.inner.lock();
            if let Some(blob) = inner.entries.get(&digest).cloned() {
                if let Ok(bytes) = self.store.blob(&blob) {
                    inner.stats.hits += 1;
                    return Ok((bytes, true));
                }
                // The backing blob disappeared (store swapped/garbage-collected):
                // fall through and recompute.
                inner.entries.remove(&digest);
                inner.order.retain(|d| d != &digest);
                inner.stats.entries = inner.entries.len();
            }
            match inner.in_flight.get(&digest).cloned() {
                Some(existing) => {
                    // Another worker is computing this key right now. Release the cache
                    // lock, wait for the computation by acquiring the flight lock, then
                    // retry the lookup (which will hit).
                    drop(inner);
                    drop(existing.lock());
                    self.inner.lock().stats.coalesced += 1;
                }
                None => {
                    flight = Arc::new(Mutex::new(()));
                    inner.in_flight.insert(digest.clone(), flight.clone());
                    // Lock the flight before releasing the cache lock so no waiter can
                    // acquire it ahead of the computation.
                    guard = flight.lock();
                    break;
                }
            }
        }

        // We own the flight: compute while holding its lock so racers block above.
        let result = compute();
        let mut inner = self.inner.lock();
        inner.in_flight.remove(&digest);
        let bytes = match result {
            Ok(bytes) => bytes,
            Err(error) => {
                drop(guard);
                return Err(error);
            }
        };
        inner.stats.misses += 1;
        // Convert the computed bytes into a shared handle once; the store keeps a
        // clone of the handle (a refcount bump), not a copy of the payload.
        let bytes = Blob::new(bytes);
        let blob = self.store.put_blob(bytes.clone());
        self.record_entry(&mut inner, digest, blob);
        drop(guard);
        Ok((bytes, false))
    }

    /// Insert an action output directly (used when the output was produced elsewhere).
    pub fn insert(&self, key: &BuildKey, bytes: impl Into<Blob>) -> Digest {
        let blob = self.store.put_blob(bytes);
        let mut inner = self.inner.lock();
        self.record_entry(&mut inner, key.digest(), blob.clone());
        blob
    }

    /// Register `digest → blob` in the index and enforce the capacity bound (shared by
    /// [`ActionCache::get_or_compute`] and [`ActionCache::insert`]).
    fn record_entry(&self, inner: &mut CacheInner, digest: Digest, blob: Digest) {
        if inner.entries.insert(digest.clone(), blob).is_none() {
            inner.order.push_back(digest);
        }
        if let Some(capacity) = self.capacity {
            while inner.entries.len() > capacity {
                let Some(oldest) = inner.order.pop_front() else {
                    break;
                };
                inner.entries.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
        inner.stats.entries = inner.entries.len();
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Reset the counters (entries are kept) — used to separate warm from cold phases
    /// in experiments.
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        let entries = inner.entries.len();
        inner.stats = CacheStats {
            entries,
            ..CacheStats::default()
        };
    }

    /// Combined report: action counters plus the backing store's dedup statistics.
    pub fn report(&self) -> CacheReport {
        let store_stats = self.store.stats();
        CacheReport {
            actions: self.stats(),
            blob_count: store_stats.blob_count,
            stored_bytes: store_stats.total_bytes,
            dedup_bytes: store_stats.dedup_bytes,
        }
    }

    /// Convenience for callers that want the raw blob digest of a cached action.
    pub fn action_blob(&self, key: &BuildKey) -> Result<Digest, ImageError> {
        self.inner
            .lock()
            .entries
            .get(&key.digest())
            .cloned()
            .ok_or_else(|| ImageError::MissingBlob(key.digest()))
    }
}

impl std::fmt::Debug for ActionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ActionCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn key(n: u32) -> BuildKey {
        BuildKey::new(
            format!("tu{n}"),
            "xir.ir",
            "defs=;openmp=false;opt=O2",
            "xirc",
        )
    }

    #[test]
    fn key_digest_is_stable_and_field_sensitive() {
        let a = key(1);
        assert_eq!(a.digest(), key(1).digest());
        let mut b = key(1);
        b.target_isa = "x86-avx_512".into();
        assert_ne!(a.digest(), b.digest());
        // Field-tagged canonical form: moving bytes between fields changes the digest.
        let c = BuildKey::new("tu1x", "ir", "o", "t");
        let d = BuildKey::new("tu1", "xir", "o", "t");
        assert_ne!(c.digest(), d.digest());
    }

    #[test]
    fn get_or_compute_memoizes_and_counts() {
        let cache = ActionCache::new(ImageStore::new());
        let calls = AtomicUsize::new(0);
        let compute = || -> Result<Vec<u8>, ()> {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(b"artifact".to_vec())
        };
        let (first, hit1) = cache.get_or_compute(&key(1), compute).unwrap();
        let (second, hit2) = cache
            .get_or_compute(&key(1), || -> Result<Vec<u8>, ()> {
                calls.fetch_add(1, Ordering::SeqCst);
                Ok(b"never-run".to_vec())
            })
            .unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first, second);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hits_and_the_store_share_one_allocation() {
        let cache = ActionCache::new(ImageStore::new());
        let (first, _) = cache
            .get_or_compute(&key(3), || -> Result<Vec<u8>, ()> {
                Ok(b"shared".to_vec())
            })
            .unwrap();
        let (second, hit) = cache
            .get_or_compute(&key(3), || -> Result<Vec<u8>, ()> { unreachable!() })
            .unwrap();
        assert!(hit);
        let stored = cache
            .store()
            .blob(&cache.action_blob(&key(3)).unwrap())
            .unwrap();
        assert!(Blob::ptr_eq(&first, &stored), "miss returns store's handle");
        assert!(Blob::ptr_eq(&second, &stored), "hit returns store's handle");
        let peeked = cache.peek(&key(3)).unwrap();
        assert!(
            Blob::ptr_eq(&peeked, &stored),
            "peek returns store's handle"
        );
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ActionCache::new(ImageStore::new());
        let failed: Result<(Blob, bool), &str> = cache.get_or_compute(&key(2), || Err("boom"));
        assert_eq!(failed.unwrap_err(), "boom");
        assert_eq!(cache.stats().entries, 0);
        let (bytes, hit) = cache
            .get_or_compute(&key(2), || -> Result<Vec<u8>, &str> { Ok(vec![7]) })
            .unwrap();
        assert_eq!(bytes, vec![7]);
        assert!(!hit);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let cache = ActionCache::with_capacity(ImageStore::new(), 2);
        for n in 0..3 {
            cache
                .get_or_compute(&key(n), || -> Result<Vec<u8>, ()> { Ok(vec![n as u8]) })
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(!cache.contains(&key(0)), "oldest entry evicted");
        assert!(cache.contains(&key(2)));
        // Evicted key recomputes (a second miss), others still hit.
        let (_, hit) = cache
            .get_or_compute(&key(0), || -> Result<Vec<u8>, ()> { Ok(vec![0]) })
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = ActionCache::new(ImageStore::new());
        let calls = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = cache.clone();
                let calls = calls.clone();
                scope.spawn(move || {
                    let (bytes, _) = cache
                        .get_or_compute(&key(9), || -> Result<Vec<u8>, ()> {
                            calls.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so coalescing is actually exercised.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(b"once".to_vec())
                        })
                        .unwrap();
                    assert_eq!(bytes, b"once");
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "single-flight");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn nocache_always_computes_and_counts_misses() {
        let backend = NoCache::new(ImageStore::new());
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let (bytes, hit) = backend
                .get_or_compute_action(&key(1), &mut || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    Ok(b"fresh".to_vec())
                })
                .unwrap();
            assert_eq!(bytes, b"fresh");
            assert!(!hit, "NoCache never reports a hit");
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3, "every action executes");
        let stats = backend.backend_stats();
        assert_eq!((stats.hits, stats.misses), (0, 3));
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn action_cache_and_nocache_agree_through_the_backend_trait() {
        let store = ImageStore::new();
        let cached: &dyn CacheBackend = &ActionCache::new(store.clone());
        let uncached: &dyn CacheBackend = &NoCache::new(store.clone());
        for backend in [cached, uncached] {
            let (bytes, hit) = backend
                .get_or_compute_action(&key(7), &mut || Ok(vec![7, 7]))
                .unwrap();
            assert_eq!(bytes, vec![7, 7]);
            assert!(!hit);
        }
        // Second round: the memoizing backend hits, the no-op backend recomputes.
        let (_, hit) = cached
            .get_or_compute_action(&key(7), &mut || Ok(vec![7, 7]))
            .unwrap();
        assert!(hit);
        let (_, hit) = uncached
            .get_or_compute_action(&key(7), &mut || Ok(vec![7, 7]))
            .unwrap();
        assert!(!hit);
        // Failures pass through as the marker error.
        assert_eq!(
            uncached
                .get_or_compute_action(&key(8), &mut || Err(ComputeFailed))
                .unwrap_err(),
            ComputeFailed
        );
    }

    #[test]
    fn report_combines_action_and_store_dedup_stats() {
        let store = ImageStore::new();
        let cache = ActionCache::new(store.clone());
        cache
            .get_or_compute(&key(1), || -> Result<Vec<u8>, ()> { Ok(vec![1, 2, 3]) })
            .unwrap();
        // Same payload offered again directly to the store: dedup_bytes grows.
        store.put_blob(vec![1, 2, 3]);
        let report = cache.report();
        assert_eq!(report.actions.misses, 1);
        assert_eq!(report.blob_count, 1);
        assert_eq!(report.stored_bytes, 3);
        assert_eq!(report.dedup_bytes, 3);
    }
}
