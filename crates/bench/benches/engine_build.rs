//! Action-graph engine benchmark: the same multi-configuration IR-container build
//! executed serially (1 worker — the pre-engine pipeline's schedule) and with the
//! worker pool, plus the warm-cache steady state, and a `Fifo` vs
//! `CriticalPathFirst` scheduling-policy comparison on the GROMACS deployment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xaas::engine::ActionKind;
use xaas::prelude::*;
use xaas_container::{ActionCache, ImageStore};
use xaas_hpcsim::{SimdLevel, SystemModel};

fn sweep(project: &xaas_buildsys::ProjectSpec) -> IrPipelineConfig {
    IrPipelineConfig::sweep_options(project, &["GMX_SIMD", "GMX_GPU"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"])
        .with_values("GMX_GPU", &["OFF", "CUDA"])
}

fn bench_engine(c: &mut Criterion) {
    // The experiment JSON is the artifact the acceptance criteria ask for: action
    // counts, stage depths, the wall-clock speedup of parallel vs serial builds,
    // and the Fifo vs CriticalPathFirst comparison.
    let experiment = xaas_bench::engine_parallelism();
    println!(
        "{}",
        serde_json::to_string_pretty(&experiment).expect("engine experiment serialises")
    );

    let project = xaas_apps::gromacs::project();
    let pipeline = sweep(&project);

    let mut group = c.benchmark_group("engine/ir_build");
    group.bench_function("serial_1_worker", |b| {
        b.iter(|| {
            let orch = Orchestrator::builder()
                .uncached(ImageStore::new())
                .workers(1)
                .build();
            black_box(
                IrBuildRequest::new(&project, &pipeline)
                    .reference("bench:engine-serial")
                    .submit(&orch)
                    .unwrap(),
            );
        });
    });
    group.bench_function("parallel_4_workers", |b| {
        b.iter(|| {
            let orch = Orchestrator::builder()
                .uncached(ImageStore::new())
                .workers(4)
                .build();
            black_box(
                IrBuildRequest::new(&project, &pipeline)
                    .reference("bench:engine-parallel")
                    .submit(&orch)
                    .unwrap(),
            );
        });
    });
    // Steady state: every compile action served from the shared cache.
    let cache = ActionCache::new(ImageStore::new());
    let warm_orch = Orchestrator::builder()
        .action_cache(cache)
        .workers(4)
        .build();
    IrBuildRequest::new(&project, &pipeline)
        .reference("bench:engine-warm")
        .submit(&warm_orch)
        .unwrap();
    group.bench_function("parallel_warm_cache", |b| {
        b.iter(|| {
            black_box(
                IrBuildRequest::new(&project, &pipeline)
                    .reference("bench:engine-warm")
                    .submit(&warm_orch)
                    .unwrap(),
            );
        });
    });
    group.finish();

    // Scheduling policies on the deployment graph (mixed machine-lower/sd-compile
    // frontier): Fifo vs CriticalPathFirst with one bounded sd-compile slot.
    let mpi_pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_MPI"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"]);
    let build_orch = Orchestrator::new();
    let build = IrBuildRequest::new(&project, &mpi_pipeline)
        .reference("bench:policy-ir")
        .submit(&build_orch)
        .unwrap();
    let system = SystemModel::ault23();
    let mut group = c.benchmark_group("engine/scheduling_policy");
    group.bench_function("deploy_fifo", |b| {
        b.iter(|| {
            let orch = Orchestrator::builder()
                .uncached(ImageStore::new())
                .workers(4)
                .build();
            black_box(
                IrDeployRequest::new(&build, &project, &system)
                    .select("GMX_SIMD", "AVX_512")
                    .select("GMX_MPI", "ON")
                    .simd(SimdLevel::Avx512)
                    .submit(&orch)
                    .unwrap(),
            );
        });
    });
    group.bench_function("deploy_critical_path_first_capped_sd", |b| {
        b.iter(|| {
            let orch = Orchestrator::builder()
                .uncached(ImageStore::new())
                .workers(4)
                .policy(CriticalPathFirst::new().with_cap(ActionKind::SdCompile, 1))
                .build();
            black_box(
                IrDeployRequest::new(&build, &project, &system)
                    .select("GMX_SIMD", "AVX_512")
                    .select("GMX_MPI", "ON")
                    .simd(SimdLevel::Avx512)
                    .submit(&orch)
                    .unwrap(),
            );
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
