//! Union fleet graphs: one `ActionGraph` per fleet wave.
//!
//! These tests pin the acceptance criteria of the union-graph fleet strategy:
//! byte-identity with the sequential strategy (images, per-job traces, dedup
//! counts, cache hit/miss deltas — property-tested over random fleets), exactly
//! one engine submission per wave with cross-job shared `BuildKey`s executed
//! once, per-job failure isolation with the failing action named, and the
//! per-job partition of the merged wave trace.

use proptest::prelude::*;
use std::collections::BTreeMap;
use xaas::engine::ActionKind;
use xaas::prelude::*;
use xaas_buildsys::{
    BuildOption, OptionAssignment, OptionCategory, OptionEffects, ProjectSpec, SourceSpec,
    TargetKind, TargetSpec,
};
use xaas_container::{ActionCache, ImageStore};
use xaas_hpcsim::{SimdLevel, SystemModel};

/// The four paper systems, used as the random-fleet universe.
fn systems() -> [SystemModel; 4] {
    [
        SystemModel::ault23(),
        SystemModel::ault25(),
        SystemModel::ault01_04(),
        SystemModel::clariden(),
    ]
}

/// A fleet session over `cache` running `strategy`.
fn session(cache: &ActionCache, strategy: FleetStrategy, workers: usize) -> Orchestrator {
    Orchestrator::builder()
        .action_cache(cache.clone())
        .workers(workers)
        .fleet_strategy(strategy)
        .build()
}

/// Submit the same targets under both strategies, each over its own fresh cache
/// (sharing the IR build's store so images land in one place), and return the
/// two reports.
fn run_both(
    build: &IrContainerBuild,
    project: &ProjectSpec,
    store: &ImageStore,
    targets: &[FleetTarget],
    workers: usize,
) -> (FleetReport, FleetReport) {
    let union = FleetRequest::new(build, project)
        .targets(targets.iter().cloned())
        .submit(&session(
            &ActionCache::new(store.clone()),
            FleetStrategy::UnionGraph,
            workers,
        ));
    let sequential = FleetRequest::new(build, project)
        .targets(targets.iter().cloned())
        .submit(&session(
            &ActionCache::new(store.clone()),
            FleetStrategy::Sequential,
            workers,
        ));
    (union, sequential)
}

/// Assert the two reports are observably identical up to scheduling: same
/// per-target images, per-job traces, dedup counts, and cache hit/miss deltas.
fn assert_strategy_equivalence(union: &FleetReport, sequential: &FleetReport) {
    assert_eq!(union.strategy, FleetStrategy::UnionGraph);
    assert_eq!(sequential.strategy, FleetStrategy::Sequential);
    assert_eq!(union.jobs_executed, sequential.jobs_executed);
    assert_eq!(union.jobs_deduplicated, sequential.jobs_deduplicated);
    // One engine submission per wave vs one per distinct job.
    assert_eq!(union.submissions, 1);
    assert_eq!(sequential.submissions, sequential.jobs_executed);
    // Identical cache deltas: the union's cache-probe aliases replay exactly the
    // hits the sequential strategy's per-job submissions observe.
    assert_eq!(union.cache.hits, sequential.cache.hits);
    assert_eq!(union.cache.misses, sequential.cache.misses);
    assert_eq!(union.cache.entries, sequential.cache.entries);
    // The union wave never runs more actions than the sequential submissions.
    assert!(union.trace.len() <= sequential.trace.len());
    assert_eq!(union.outcomes.len(), sequential.outcomes.len());
    for (u, s) in union.outcomes.iter().zip(&sequential.outcomes) {
        assert_eq!(u.system, s.system);
        assert_eq!(u.deduplicated, s.deduplicated);
        let u = u.deployment.as_ref().expect("union target succeeded");
        let s = s.deployment.as_ref().expect("sequential target succeeded");
        // Byte-identical images and artifacts per target.
        assert_eq!(u.reference, s.reference);
        assert_eq!(u.image.layers, s.image.layers);
        assert_eq!(u.machine_modules, s.machine_modules);
        assert_eq!(u.stats, s.stats);
        // Per-job traces are equal traces: same records (identities and cached
        // flags), same stage depth, same policy.
        assert_eq!(u.trace, s.trace);
        assert_eq!(u.actions, s.actions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random fleets over the GROMACS SIMD sweep, the union-graph and
    /// sequential strategies produce byte-identical images per target, identical
    /// dedup counts, and identical cache hit/miss deltas.
    #[test]
    fn union_and_sequential_strategies_match_on_random_gromacs_fleets(
        picks in proptest::collection::vec(0usize..4, 1..7),
        workers in 1usize..5,
    ) {
        let project = xaas_apps::gromacs::project();
        let store = ImageStore::new();
        let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"]).with_values(
            "GMX_SIMD",
            &["SSE4.1", "AVX2_256", "AVX_512", "ARM_NEON_ASIMD"],
        );
        let build = IrBuildRequest::new(&project, &pipeline)
            .reference("union:gmx")
            .submit(&Orchestrator::uncached(&store))
            .unwrap();
        let universe = systems();
        let targets: Vec<FleetTarget> = picks
            .iter()
            .map(|&index| {
                let system = universe[index].clone();
                let simd = system.cpu.best_simd();
                FleetTarget::new(
                    system,
                    OptionAssignment::new().with("GMX_SIMD", simd.gmx_name()),
                    simd,
                )
            })
            .collect();
        let (union, sequential) = run_both(&build, &project, &store, &targets, workers);
        prop_assert!(union.all_succeeded());
        assert_strategy_equivalence(&union, &sequential);
    }

    /// The same equivalence over random fleets of the LULESH MPI × OpenMP sweep,
    /// whose deployments mix machine-lower and sd-compile actions (MPI files ship
    /// as source), exercising the derived-key sd-compile path across jobs.
    #[test]
    fn union_and_sequential_strategies_match_on_random_lulesh_fleets(
        picks in proptest::collection::vec(0usize..4, 1..6),
        flags in proptest::collection::vec(any::<bool>(), 12),
        workers in 1usize..5,
    ) {
        let project = xaas_apps::lulesh::project();
        let store = ImageStore::new();
        let pipeline =
            IrPipelineConfig::sweep_options(&project, &["WITH_MPI", "WITH_OPENMP"]);
        let build = IrBuildRequest::new(&project, &pipeline)
            .reference("union:lulesh")
            .submit(&Orchestrator::uncached(&store))
            .unwrap();
        let universe = systems();
        let flag = |on: bool| if on { "ON" } else { "OFF" };
        let targets: Vec<FleetTarget> = picks
            .iter()
            .enumerate()
            .map(|(slot, &index)| {
                let system = universe[index].clone();
                FleetTarget::best_for(
                    system,
                    OptionAssignment::new()
                        .with("WITH_MPI", flag(flags[2 * slot]))
                        .with("WITH_OPENMP", flag(flags[2 * slot + 1])),
                )
            })
            .collect();
        let (union, sequential) = run_both(&build, &project, &store, &targets, workers);
        prop_assert!(union.all_succeeded());
        assert_strategy_equivalence(&union, &sequential);
    }
}

/// Cross-job shared `BuildKey`s execute once per wave: two systems with the same
/// ISA contribute one compute node per lowered unit, the second job's nodes are
/// cache-probe aliases (hits), and the whole wave is one engine submission.
#[test]
fn shared_keys_execute_once_per_wave_in_one_submission() {
    let project = xaas_apps::gromacs::project();
    let cache = ActionCache::new(ImageStore::new());
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"])
        .with_values("GMX_SIMD", &["AVX_512"]);
    let build = IrBuildRequest::new(&project, &pipeline)
        .reference("union:shared")
        .submit(&Orchestrator::with_cache(&cache))
        .unwrap();
    cache.reset_stats();
    let selection = OptionAssignment::new().with("GMX_SIMD", "AVX_512");
    let report = FleetRequest::new(&build, &project)
        .target(FleetTarget::new(
            SystemModel::ault23(),
            selection.clone(),
            SimdLevel::Avx512,
        ))
        .target(FleetTarget::new(
            SystemModel::ault01_04(),
            selection,
            SimdLevel::Avx512,
        ))
        .submit(&session(&cache, FleetStrategy::UnionGraph, 4));
    assert!(report.all_succeeded());
    assert_eq!(report.submissions, 1, "one engine submission per wave");
    assert_eq!(report.jobs_executed, 2);
    let first = report.outcomes[0].deployment.as_ref().unwrap();
    let second = report.outcomes[1].deployment.as_ref().unwrap();
    // Same ISA: every keyed action of the second job is served by the first
    // job's compute node — executed once, observed as hits.
    assert_eq!(report.cache.misses, first.actions.total() as u64);
    assert_eq!(second.actions.executed, 0);
    assert_eq!(second.actions.cached, first.actions.total());
    assert_eq!(report.cache.hits, second.actions.cached as u64);
}

/// A one-source project with a syntactically broken MPI-tagged source: the IR
/// build succeeds (system-dependent files ship as source), and any deployment
/// selecting `WITH_MPI=ON` fails its `sd-compile` at specialization time.
fn poisoned_mpi_project() -> ProjectSpec {
    let mpi_on = OptionEffects {
        definitions: vec!["-DWITH_MPI".into()],
        enables_tags: vec!["mpi".into()],
        ..Default::default()
    };
    let sources = vec![
        SourceSpec::new(
            "src/ok.ck",
            "kernel void zero(float* x, int n) { for (int i = 0; i < n; i = i + 1) { x[i] = 0.0; } }",
        ),
        SourceSpec::new("src/mpi_bad.ck", "kernel void broken(float* x { this is not ck }")
            .with_tag("mpi"),
    ];
    let paths = vec!["src/ok.ck".into(), "src/mpi_bad.ck".into()];
    ProjectSpec {
        name: "poisoned".into(),
        version: "1.0".into(),
        build_script: "project(poisoned)\n".into(),
        options: vec![BuildOption::boolean(
            "WITH_MPI",
            "MPI halo exchange",
            OptionCategory::Parallelism,
            false,
            mpi_on,
        )],
        sources,
        headers: BTreeMap::new(),
        targets: vec![TargetSpec::new("poisoned", TargetKind::Executable, paths)],
        custom_targets: Vec::new(),
        global_flags: vec!["-O2".into()],
        mpi_abi: Some("mpich".into()),
    }
}

/// Failure isolation inside one union wave: a job whose `sd-compile` fails (a
/// poisoned compile) fails alone, with the failing action named in its
/// `FleetError`; every other job's deployment is delivered with a complete
/// per-job trace (no unrelated node was skipped).
#[test]
fn poisoned_compile_fails_only_its_job_and_names_the_action() {
    let project = poisoned_mpi_project();
    let cache = ActionCache::new(ImageStore::new());
    let pipeline = IrPipelineConfig::sweep_options(&project, &["WITH_MPI"]);
    let build = IrBuildRequest::new(&project, &pipeline)
        .reference("union:poisoned")
        .submit(&Orchestrator::with_cache(&cache))
        .unwrap();
    let report = FleetRequest::new(&build, &project)
        .target(FleetTarget::best_for(
            SystemModel::ault23(),
            OptionAssignment::new().with("WITH_MPI", "OFF"),
        ))
        .target(FleetTarget::best_for(
            SystemModel::ault23(),
            OptionAssignment::new().with("WITH_MPI", "ON"),
        ))
        .target(FleetTarget::best_for(
            SystemModel::ault25(),
            OptionAssignment::new().with("WITH_MPI", "OFF"),
        ))
        .submit(&session(&cache, FleetStrategy::UnionGraph, 4));
    assert_eq!(report.submissions, 1);
    assert!(!report.all_succeeded());

    // The poisoned job names its failing sd-compile action.
    let error = report.outcomes[1].deployment.as_ref().unwrap_err();
    assert_eq!(error.system, "Ault23");
    assert_eq!(error.action.as_deref(), Some("src/mpi_bad.ck"));
    assert!(error.message.contains("src/mpi_bad.ck"), "{error}");
    assert!(error.to_string().contains("action `src/mpi_bad.ck`"));

    // Every other job delivered, with a complete trace (preprocessing through
    // commit — nothing unrelated was skipped by the failing job).
    for index in [0usize, 2] {
        let deployment = report.outcomes[index]
            .deployment
            .as_ref()
            .unwrap_or_else(|e| panic!("job {index} must survive the wave: {e}"));
        let kinds = deployment.trace.by_kind();
        assert!(kinds[&ActionKind::MachineLower] > 0);
        assert_eq!(kinds[&ActionKind::Link], 1);
        assert_eq!(kinds[&ActionKind::Commit], 1);
        assert!(cache.store().load(&deployment.reference).is_ok());
    }

    // The sequential strategy attributes the same engine failure identically:
    // the error shape is strategy-independent, not just the artifacts.
    let sequential = FleetRequest::new(&build, &project)
        .target(FleetTarget::best_for(
            SystemModel::ault23(),
            OptionAssignment::new().with("WITH_MPI", "ON"),
        ))
        .submit(&session(&cache, FleetStrategy::Sequential, 4));
    let error = sequential.outcomes[0].deployment.as_ref().unwrap_err();
    assert_eq!(error.action.as_deref(), Some("src/mpi_bad.ck"));
    assert!(error.message.contains("src/mpi_bad.ck"), "{error}");
}

/// Plan-time failures — a manifest referencing a source the project does not
/// provide (the deploy-side unknown-source shape) and an unsupported SIMD level —
/// also stay per-job: they claim no graph nodes and every other job delivers.
#[test]
fn plan_time_failures_are_isolated_and_carry_no_action() {
    let project = xaas_apps::gromacs::project();
    let cache = ActionCache::new(ImageStore::new());
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"]);
    let mut build = IrBuildRequest::new(&project, &pipeline)
        .reference("union:plan-failures")
        .submit(&Orchestrator::with_cache(&cache))
        .unwrap();
    // Doctor one configuration's manifest to reference a source that does not
    // exist: only jobs selecting that configuration fail.
    let doctored = build
        .manifests
        .iter()
        .position(|m| m.label.contains("SSE4.1"))
        .expect("SSE4.1 manifest");
    build.manifests[doctored].units[0].artifact = "src:ghost.ck".into();

    let report = FleetRequest::new(&build, &project)
        .target(FleetTarget::new(
            SystemModel::ault01_04(),
            OptionAssignment::new().with("GMX_SIMD", "SSE4.1"),
            SimdLevel::Sse41,
        ))
        .target(FleetTarget::new(
            SystemModel::ault25(), // EPYC 7742: no AVX-512 — an UnsupportedSimd plan failure
            OptionAssignment::new().with("GMX_SIMD", "AVX_512"),
            SimdLevel::Avx512,
        ))
        .target(FleetTarget::new(
            SystemModel::ault23(),
            OptionAssignment::new().with("GMX_SIMD", "AVX_512"),
            SimdLevel::Avx512,
        ))
        .submit(&session(&cache, FleetStrategy::UnionGraph, 3));
    assert!(!report.all_succeeded());
    let ghost = report.outcomes[0].deployment.as_ref().unwrap_err();
    assert!(ghost.message.contains("ghost.ck"), "{ghost}");
    assert_eq!(ghost.action, None, "plan-time failures name no action");
    let simd = report.outcomes[1].deployment.as_ref().unwrap_err();
    assert!(simd.message.contains("not supported"), "{simd}");
    // The healthy job delivered despite two failing jobs in the same wave.
    let healthy = report.outcomes[2].deployment.as_ref().unwrap();
    assert!(healthy.stats.lowered_units > 0);
    assert_eq!(report.submissions, 1);

    // Under the sequential strategy only jobs that pass validation reach the
    // engine: the unsupported-SIMD job plan-fails, so 1 of 2 jobs submits.
    let sequential = FleetRequest::new(&build, &project)
        .target(FleetTarget::new(
            SystemModel::ault25(),
            OptionAssignment::new().with("GMX_SIMD", "AVX_512"),
            SimdLevel::Avx512,
        ))
        .target(FleetTarget::new(
            SystemModel::ault23(),
            OptionAssignment::new().with("GMX_SIMD", "AVX_512"),
            SimdLevel::Avx512,
        ))
        .submit(&session(&cache, FleetStrategy::Sequential, 3));
    assert!(!sequential.all_succeeded());
    assert_eq!(sequential.jobs_executed, 2);
    assert_eq!(
        sequential.submissions, 1,
        "plan-time failures never reach the engine"
    );
}

/// The per-job traces partition the merged wave trace (per-kind counts sum to
/// the union trace), and under `CriticalPathFirst` with a bounded `sd-compile`
/// slot the wave's dispatch order *interleaves* jobs — extending the PR 4
/// reorder property to fleets — while images stay byte-identical to FIFO.
#[test]
fn wave_trace_partitions_per_job_and_critical_path_first_interleaves_jobs() {
    let project = xaas_apps::gromacs::project();
    let store = ImageStore::new();
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_MPI"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"]);
    let build = IrBuildRequest::new(&project, &pipeline)
        .reference("union:interleave")
        .submit(&Orchestrator::uncached(&store))
        .unwrap();
    let targets = [
        FleetTarget::new(
            SystemModel::ault23(),
            OptionAssignment::new()
                .with("GMX_SIMD", "AVX_512")
                .with("GMX_MPI", "ON"),
            SimdLevel::Avx512,
        ),
        FleetTarget::new(
            SystemModel::ault01_04(),
            OptionAssignment::new()
                .with("GMX_SIMD", "SSE4.1")
                .with("GMX_MPI", "ON"),
            SimdLevel::Sse41,
        ),
    ];
    let submit = |policy: Option<CriticalPathFirst>| {
        let mut builder = Orchestrator::builder()
            .action_cache(ActionCache::new(store.clone()))
            .workers(1) // deterministic dispatch order
            .fleet_strategy(FleetStrategy::UnionGraph);
        if let Some(policy) = policy {
            builder = builder.policy(policy);
        }
        FleetRequest::new(&build, &project)
            .targets(targets.iter().cloned())
            .submit(&builder.build())
    };
    let fifo = submit(None);
    let cpf = submit(Some(
        CriticalPathFirst::new().with_cap(ActionKind::SdCompile, 1),
    ));
    assert!(fifo.all_succeeded() && cpf.all_succeeded());

    for report in [&fifo, &cpf] {
        // The per-job traces partition the wave trace: per-kind counts sum up.
        let mut summed: BTreeMap<ActionKind, usize> = BTreeMap::new();
        for deployment in report.deployments() {
            for (kind, count) in deployment.trace.by_kind() {
                *summed.entry(kind).or_insert(0) += count;
            }
        }
        assert_eq!(summed, report.trace.by_kind());
        assert_eq!(
            report.trace.len(),
            report.deployments().map(|d| d.trace.len()).sum::<usize>()
        );
        // Every record carries its job tag.
        assert!(report.trace.records.iter().all(|r| r.job.is_some()));
    }

    // Dispatch-order job sequence: FIFO visits jobs in grafting blocks
    // (job 0's frontier first); critical-path-first interleaves the jobs'
    // heavy machine-lower chains ahead of job 0's cheap preprocess.
    let job_sequence = |report: &FleetReport| -> Vec<usize> {
        let mut records: Vec<_> = report.trace.records.iter().collect();
        records.sort_by_key(|r| r.schedule_seq);
        records.iter().map(|r| r.job.unwrap()).collect()
    };
    let switches = |sequence: &[usize]| sequence.windows(2).filter(|w| w[0] != w[1]).count();
    let fifo_sequence = job_sequence(&fifo);
    let cpf_sequence = job_sequence(&cpf);
    assert_ne!(fifo_sequence, cpf_sequence, "policies reorder the wave");
    assert!(
        switches(&cpf_sequence) > switches(&fifo_sequence).max(1),
        "critical-path-first must interleave jobs: fifo {fifo_sequence:?} vs cpf {cpf_sequence:?}"
    );

    // ...while producing byte-identical images.
    for (f, c) in fifo.outcomes.iter().zip(&cpf.outcomes) {
        let f = f.deployment.as_ref().unwrap();
        let c = c.deployment.as_ref().unwrap();
        assert_eq!(f.image.layers, c.image.layers);
        assert_eq!(f.trace.records, c.trace.records);
    }
}

/// The measured-costs scheduling seam on the GROMACS sweep: a cost table derived
/// from a trace whose per-kind timings mirror the default table reproduces the
/// default `CriticalPathFirst` dispatch order exactly, and a table derived from
/// the sweep's *actually recorded* timings still yields byte-identical images.
#[test]
fn measured_costs_reproduce_the_default_ordering_on_the_gromacs_sweep() {
    use xaas::engine::{ActionRecord, ActionTrace, SchedulingPolicy};
    let project = xaas_apps::gromacs::project();
    let store = ImageStore::new();
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_MPI"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"]);
    let build = IrBuildRequest::new(&project, &pipeline)
        .reference("union:measured")
        .submit(&Orchestrator::uncached(&store))
        .unwrap();
    let deploy = |policy: CriticalPathFirst| {
        IrDeployRequest::new(&build, &project, &SystemModel::ault23())
            .select("GMX_SIMD", "AVX_512")
            .select("GMX_MPI", "ON")
            .simd(SimdLevel::Avx512)
            .submit(
                &Orchestrator::builder()
                    .uncached(store.clone())
                    .workers(1)
                    .policy(policy)
                    .build(),
            )
            .unwrap()
    };
    let default_cpf = deploy(CriticalPathFirst::new());

    // A trace whose per-kind exec_micros are proportional to the default cost
    // table derives *exactly* the default costs — and therefore the same order.
    let defaults = CriticalPathFirst::new();
    let mirrored = ActionTrace {
        records: ActionKind::ALL
            .iter()
            .map(|&kind| ActionRecord {
                kind,
                label: "measured".into(),
                key_digest: None,
                cached: false,
                hit_tier: None,
                coalesced: false,
                queue_wait_micros: 0,
                parked_micros: 0,
                parks: 0,
                exec_micros: defaults.action_cost(kind) * 250,
                schedule_seq: 0,
                job: None,
                tenant: None,
                ready_submissions: 0,
            })
            .collect(),
        stage_depth: 1,
        policy: String::new(),
        tenant: None,
    };
    let measured = CriticalPathFirst::new().with_measured_costs(&mirrored);
    for kind in ActionKind::ALL {
        assert_eq!(measured.action_cost(kind), defaults.action_cost(kind));
    }
    let measured_run = deploy(measured);
    assert_eq!(
        measured_run.trace.execution_order(),
        default_cpf.trace.execution_order(),
        "mirrored measurements reproduce the default dispatch order"
    );

    // Costs derived from the *recorded* timings of the sweep deploy are a valid
    // policy and never change artifacts, only scheduling.
    let recorded = CriticalPathFirst::new().with_measured_costs(&default_cpf.trace);
    assert!(recorded.validate().is_ok());
    let recorded_run = deploy(recorded);
    assert_eq!(recorded_run.image.layers, default_cpf.image.layers);
    assert_eq!(recorded_run.trace.records, default_cpf.trace.records);
}
