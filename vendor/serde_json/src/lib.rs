//! Minimal, offline, API-compatible subset of `serde_json` for this workspace:
//! the [`Value`] tree (shared with the vendored `serde`), JSON text
//! parsing/printing, and the [`json!`] macro.

pub use serde::value::write_pretty;
pub use serde::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Result alias, as in `serde_json`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serialize to pretty-printed JSON text (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out).expect("writing to String cannot fail");
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a typed value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    T::from_value(&parse(text)?)
}

/// Deserialize a typed value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Build a [`Value`] from a JSON-like literal.
///
/// Object values and array elements may be `null`, nested `{...}` objects, or
/// arbitrary expressions implementing `Serialize`; object keys must be string
/// literals. (Subset of the real `serde_json::json!` grammar: `null` inside
/// array literals is not supported.)
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$element) ),* ])
    };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __object = $crate::Map::new();
        $crate::json!(@entry __object $($body)*);
        $crate::Value::Object(__object)
    }};
    // Object-body muncher: one `"key": value` entry per step. `null` and
    // nested `{...}` are not valid Rust expressions, so they get dedicated
    // arms ahead of the generic `expr` ones.
    (@entry $map:ident) => {};
    (@entry $map:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $( $crate::json!(@entry $map $($rest)*); )?
    };
    (@entry $map:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $( $crate::json!(@entry $map $($rest)*); )?
    };
    (@entry $map:ident $key:literal : $value:expr, $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
        $crate::json!(@entry $map $($rest)*);
    };
    (@entry $map:ident $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// JSON text parser
// ---------------------------------------------------------------------------

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this shim's printer;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let slice = &self.bytes[start..];
                    let ch = std::str::from_utf8(&slice[..slice.len().min(4)])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .or_else(|| {
                            (1..=4).find_map(|n| {
                                std::str::from_utf8(slice.get(..n)?).ok()?.chars().next()
                            })
                        })
                        .ok_or_else(|| Error::custom("invalid UTF-8 in string"))?;
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(|v| Value::Number(Number::Float(v)))
                .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::Number(Number::Int(v)))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::Number(Number::UInt(v)))
        } else {
            text.parse::<f64>()
                .map(|v| Value::Number(Number::Float(v)))
                .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
        }
    }
}
