//! End-to-end: the full XaaS story on one system — discovery, both container types,
//! deployment, execution model, and the performance claims of the evaluation section.

use xaas::prelude::*;
use xaas_apps::gromacs;
use xaas_buildsys::OptionAssignment;
use xaas_hpcsim::{BuildProfile, ExecutionEngine, LibraryQuality, SimdLevel, SystemModel};

/// Source container and IR container of the same application, deployed on the same
/// system, deliver equivalent performance — and both clearly beat the portable container.
#[test]
fn source_and_ir_deployments_agree_and_beat_portable_containers() {
    let project = gromacs::project();
    let store = ImageStore::new();
    let system = SystemModel::ault01_04();
    let workload = gromacs::workload_test_b(200);
    let engine = ExecutionEngine::new(&system);

    let orch = Orchestrator::uncached(&store);
    // Source-container path.
    let source_image = build_source_container(&project, Architecture::Amd64, &store, "e2e:src");
    let source_deployment = SourceDeployRequest::new(&project, &source_image, &system)
        .prefer("GMX_FFT_LIBRARY", "mkl")
        .submit(&orch)
        .unwrap();
    let source_time = engine
        .execute(&workload, &source_deployment.build_profile)
        .unwrap()
        .compute_seconds;

    // IR-container path, deployed at the same SIMD level with the same FFT choice.
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_FFT_LIBRARY"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"])
        .with_values("GMX_FFT_LIBRARY", &["fftw3", "mkl"]);
    let ir_build = IrBuildRequest::new(&project, &pipeline)
        .reference("e2e:ir")
        .submit(&orch)
        .unwrap();
    let ir_deployment = IrDeployRequest::new(&ir_build, &project, &system)
        .select("GMX_SIMD", "AVX_512")
        .select("GMX_FFT_LIBRARY", "mkl")
        .simd(SimdLevel::Avx512)
        .submit(&orch)
        .unwrap();
    let ir_time = engine
        .execute(&workload, &ir_deployment.build_profile)
        .unwrap()
        .compute_seconds;

    // Portable, performance-oblivious container (lowest common denominator).
    let portable = BuildProfile::new("portable", SimdLevel::Sse41, 36)
        .with_libraries(LibraryQuality::Generic, LibraryQuality::Generic)
        .with_container_overhead(1.01);
    let portable_time = engine
        .execute(&workload, &portable)
        .unwrap()
        .compute_seconds;

    let agreement = (source_time / ir_time - 1.0).abs();
    assert!(agreement < 0.05, "source {source_time} vs IR {ir_time}");
    assert!(
        portable_time / ir_time > 1.4,
        "specialization should win by >1.4x: {portable_time} vs {ir_time}"
    );
}

/// The combinatorial-explosion argument: a registry of specialized binary images needs
/// one image per configuration, while XaaS stores one source image and one IR image and
/// still serves every configuration.
#[test]
fn registry_stores_one_xaas_image_instead_of_one_per_configuration() {
    let project = gromacs::project();
    let store = ImageStore::new();
    let registry = Registry::new();

    // XaaS: one source container + one IR container.
    build_source_container(&project, Architecture::Amd64, &store, "spcl/gmx:src");
    registry.push(&store, "spcl/gmx:src").unwrap();
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_GPU"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"])
        .with_values("GMX_GPU", &["OFF", "CUDA"]);
    let ir_build = IrBuildRequest::new(&project, &pipeline)
        .reference("spcl/gmx:ir")
        .submit(&Orchestrator::uncached(&store))
        .unwrap();
    registry.push(&store, "spcl/gmx:ir").unwrap();
    assert_eq!(registry.tags_of("spcl/gmx").len(), 2);

    // The IR container alone serves all four configurations on the target system.
    let system = SystemModel::ault23();
    for (simd, gpu) in [
        ("SSE4.1", "OFF"),
        ("SSE4.1", "CUDA"),
        ("AVX_512", "OFF"),
        ("AVX_512", "CUDA"),
    ] {
        let selection = OptionAssignment::new()
            .with("GMX_SIMD", simd)
            .with("GMX_GPU", gpu);
        let level = SimdLevel::parse(simd).unwrap();
        let deployment = IrDeployRequest::new(&ir_build, &project, &system)
            .selection(selection)
            .simd(level)
            .submit(&Orchestrator::uncached(&store))
            .unwrap();
        assert!(store.load(&deployment.reference).is_ok());
    }
    // Four deployed images now exist locally, but the registry still holds only two.
    assert_eq!(registry.tags_of("spcl/gmx").len(), 2);
    assert!(store.references().len() >= 6);
}

/// The fleet specializer: concurrent specialization of duplicate-heavy request sets
/// never double-builds a `BuildKey` (every cache miss is a distinct key) and is
/// deterministic across runs — same requests, same outcomes, same cache totals.
#[test]
fn fleet_specializer_never_double_builds_and_is_deterministic() {
    let project = gromacs::project();
    let avx512 = OptionAssignment::new().with("GMX_SIMD", "AVX_512");
    let sse41 = OptionAssignment::new().with("GMX_SIMD", "SSE4.1");

    let run = || {
        let cache = ActionCache::new(ImageStore::new());
        let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"])
            .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"]);
        let build = IrBuildRequest::new(&project, &pipeline)
            .reference("fleet:e2e")
            .submit(&Orchestrator::with_cache(&cache))
            .unwrap();
        cache.reset_stats();
        let entries_before_fleet = cache.stats().entries;
        // 9 targets, heavy on duplicates: 3 distinct jobs, 2 of which share every
        // lowering key (same ISA on different systems).
        let mut targets = Vec::new();
        for _ in 0..3 {
            targets.push(FleetTarget::new(
                SystemModel::ault23(),
                avx512.clone(),
                SimdLevel::Avx512,
            ));
            targets.push(FleetTarget::new(
                SystemModel::ault01_04(),
                avx512.clone(),
                SimdLevel::Avx512,
            ));
            targets.push(FleetTarget::new(
                SystemModel::ault01_04(),
                sse41.clone(),
                SimdLevel::Sse41,
            ));
        }
        let report = FleetSpecializer::new(cache.clone())
            .with_workers(4)
            .specialize_fleet(&build, &project, &targets);
        assert!(report.all_succeeded());
        let new_entries = cache.stats().entries - entries_before_fleet;
        (report, cache.stats(), new_entries)
    };

    let (report_a, stats_a, new_entries_a) = run();
    let (report_b, stats_b, _) = run();

    // Duplicate requests collapse into 3 jobs.
    assert_eq!(report_a.jobs_executed, 3);
    assert_eq!(report_a.jobs_deduplicated, 6);
    // No BuildKey is ever built twice: every executed action created a distinct cache
    // entry (single-flight), even with 4 workers racing on the shared ISA.
    assert_eq!(
        stats_a.misses, new_entries_a as u64,
        "misses must equal distinct keys built: {stats_a:?}"
    );
    // The two AVX-512 systems share every lowering key, so the fleet executes exactly
    // one ISA's worth of actions per distinct ISA — not one per job.
    let actions_per_job = report_a.outcomes[0]
        .deployment
        .as_ref()
        .unwrap()
        .actions
        .total() as u64;
    assert_eq!(stats_a.misses, 2 * actions_per_job);

    // Deterministic across runs: same references in the same order, same cache totals
    // (the coalesced counter is scheduling-dependent and deliberately excluded).
    let references = |report: &FleetReport| -> Vec<String> {
        report
            .outcomes
            .iter()
            .map(|o| o.deployment.as_ref().unwrap().reference.clone())
            .collect()
    };
    assert_eq!(references(&report_a), references(&report_b));
    assert_eq!(stats_a.hits, stats_b.hits);
    assert_eq!(stats_a.misses, stats_b.misses);
    assert_eq!(stats_a.entries, stats_b.entries);
}

/// The deployment-time image is OCI-shaped: committed manifests resolve, layers are
/// content-addressed, and annotations carry the specialization metadata.
#[test]
fn deployed_images_are_oci_consistent() {
    let project = gromacs::project();
    let store = ImageStore::new();
    let system = SystemModel::ault23();
    let image = build_source_container(&project, Architecture::Amd64, &store, "oci:src");
    let deployment = SourceDeployRequest::new(&project, &image, &system)
        .submit(&Orchestrator::uncached(&store))
        .unwrap();

    let digest = store.resolve(&deployment.reference).unwrap();
    let manifest = store.manifest(&digest).unwrap();
    assert_eq!(manifest.layers.len(), deployment.image.layer_count());
    for layer in &manifest.layers {
        assert!(store.has_blob(&layer.digest));
    }
    let config = store.config(&manifest.config.digest).unwrap();
    assert_eq!(config.rootfs_diff_ids.len(), manifest.layers.len());
    assert_eq!(
        manifest
            .annotations
            .get(annotation_keys::TARGET_SYSTEM)
            .map(String::as_str),
        Some("Ault23")
    );
    assert!(manifest
        .annotations
        .contains_key(annotation_keys::SELECTED_CONFIGURATION));
}
