//! Recursive-descent parser for the CK kernel language.

use crate::ast::{BinOp, Expr, Function, LValue, Param, Stmt, TranslationUnit, Type};
use crate::lex::{lex, Keyword, LexError, Punct, Token};
use std::fmt;

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant payload fields are documented by the Display impl
pub enum ParseError {
    /// Lexing failed.
    Lex(LexError),
    /// Unexpected token (with a description of what was expected).
    Unexpected {
        expected: String,
        found: String,
        position: usize,
    },
    /// Input ended unexpectedly.
    UnexpectedEof { expected: String },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                expected,
                found,
                position,
            } => {
                write!(
                    f,
                    "parse error at token {position}: expected {expected}, found {found}"
                )
            }
            ParseError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(value: LexError) -> Self {
        ParseError::Lex(value)
    }
}

/// Parse a preprocessed CK source file into a [`TranslationUnit`].
pub fn parse(file: &str, source: &str) -> Result<TranslationUnit, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut unit = TranslationUnit {
        file: file.to_string(),
        functions: Vec::new(),
    };
    while !parser.at_end() {
        // Pragmas before a function definition are ignored at this level (they attach to loops).
        while matches!(parser.peek(), Some(Token::Pragma(_))) {
            parser.advance();
        }
        if parser.at_end() {
            break;
        }
        unit.functions.push(parser.function()?);
    }
    Ok(unit)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::Unexpected {
                expected: expected.to_string(),
                found: t.to_string(),
                position: self.pos,
            },
            None => ParseError::UnexpectedEof {
                expected: expected.to_string(),
            },
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Punct(found)) if *found == p => {
                self.advance();
                Ok(())
            }
            _ => Err(self.unexpected(&format!("{p:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(name)) => {
                let name = name.clone();
                self.advance();
                Ok(name)
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let base = match self.peek() {
            Some(Token::Keyword(Keyword::Void)) => Type::Void,
            Some(Token::Keyword(Keyword::Int)) => Type::Int,
            Some(Token::Keyword(Keyword::Float)) | Some(Token::Keyword(Keyword::Double)) => {
                Type::Float
            }
            _ => return Err(self.unexpected("type")),
        };
        self.advance();
        if matches!(self.peek(), Some(Token::Punct(Punct::Star))) {
            self.advance();
            return match base {
                Type::Int => Ok(Type::IntPtr),
                Type::Float => Ok(Type::FloatPtr),
                _ => Err(self.unexpected("pointer to int or float")),
            };
        }
        Ok(base)
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let is_kernel = if matches!(self.peek(), Some(Token::Keyword(Keyword::Kernel))) {
            self.advance();
            true
        } else {
            false
        };
        let return_type = self.parse_type()?;
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Some(Token::Punct(Punct::RParen))) {
            loop {
                let ty = self.parse_type()?;
                let pname = self.expect_ident()?;
                params.push(Param { name: pname, ty });
                if matches!(self.peek(), Some(Token::Punct(Punct::Comma))) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RParen)?;
        let body = self.block()?;
        Ok(Function {
            name,
            is_kernel,
            return_type,
            params,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        let mut pending_pragmas: Vec<String> = Vec::new();
        while !matches!(self.peek(), Some(Token::Punct(Punct::RBrace))) {
            if self.at_end() {
                return Err(ParseError::UnexpectedEof {
                    expected: "`}`".into(),
                });
            }
            if let Some(Token::Pragma(p)) = self.peek() {
                pending_pragmas.push(p.clone());
                self.advance();
                continue;
            }
            let stmt = self.statement(std::mem::take(&mut pending_pragmas))?;
            stmts.push(stmt);
        }
        self.expect_punct(Punct::RBrace)?;
        Ok(stmts)
    }

    fn statement(&mut self, pragmas: Vec<String>) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::Keyword(Keyword::For)) => self.for_statement(pragmas),
            Some(Token::Keyword(Keyword::While)) => {
                self.advance();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Some(Token::Keyword(Keyword::If)) => {
                self.advance();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let then_body = self.block()?;
                let else_body = if matches!(self.peek(), Some(Token::Keyword(Keyword::Else))) {
                    self.advance();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Some(Token::Keyword(Keyword::Return)) => {
                self.advance();
                if matches!(self.peek(), Some(Token::Punct(Punct::Semi))) {
                    self.advance();
                    return Ok(Stmt::Return(None));
                }
                let value = self.expression()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Return(Some(value)))
            }
            Some(Token::Keyword(Keyword::Int))
            | Some(Token::Keyword(Keyword::Float))
            | Some(Token::Keyword(Keyword::Double)) => {
                let ty = self.parse_type()?;
                let name = self.expect_ident()?;
                let init = if matches!(self.peek(), Some(Token::Punct(Punct::Assign))) {
                    self.advance();
                    Some(self.expression()?)
                } else {
                    None
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Decl { ty, name, init })
            }
            Some(Token::Ident(_)) => {
                // Assignment (scalar or indexed) or expression statement (call).
                let is_assignment = match (self.peek_at(1), self.peek_at(2)) {
                    (Some(Token::Punct(Punct::Assign)), _) => true,
                    (Some(Token::Punct(Punct::LBracket)), _) => {
                        // Find the matching `]` and check the following token is `=`.
                        let mut depth = 0usize;
                        let mut idx = self.pos + 1;
                        let mut assign = false;
                        while let Some(tok) = self.tokens.get(idx) {
                            match tok {
                                Token::Punct(Punct::LBracket) => depth += 1,
                                Token::Punct(Punct::RBracket) => {
                                    depth -= 1;
                                    if depth == 0 {
                                        assign = matches!(
                                            self.tokens.get(idx + 1),
                                            Some(Token::Punct(Punct::Assign))
                                        );
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            idx += 1;
                        }
                        assign
                    }
                    _ => false,
                };
                if is_assignment {
                    let base = self.expect_ident()?;
                    let target = if matches!(self.peek(), Some(Token::Punct(Punct::LBracket))) {
                        self.advance();
                        let index = self.expression()?;
                        self.expect_punct(Punct::RBracket)?;
                        LValue::Index { base, index }
                    } else {
                        LValue::Var(base)
                    };
                    self.expect_punct(Punct::Assign)?;
                    let value = self.expression()?;
                    self.expect_punct(Punct::Semi)?;
                    Ok(Stmt::Assign { target, value })
                } else {
                    let expr = self.expression()?;
                    self.expect_punct(Punct::Semi)?;
                    Ok(Stmt::ExprStmt(expr))
                }
            }
            _ => Err(self.unexpected("statement")),
        }
    }

    fn for_statement(&mut self, pragmas: Vec<String>) -> Result<Stmt, ParseError> {
        self.advance(); // for
        self.expect_punct(Punct::LParen)?;
        // init: `int i = expr` or `i = expr`
        if matches!(self.peek(), Some(Token::Keyword(Keyword::Int))) {
            self.advance();
        }
        let var = self.expect_ident()?;
        self.expect_punct(Punct::Assign)?;
        let init = self.expression()?;
        self.expect_punct(Punct::Semi)?;
        let cond = self.expression()?;
        self.expect_punct(Punct::Semi)?;
        // step: `i = expr`
        let step_var = self.expect_ident()?;
        if step_var != var {
            return Err(ParseError::Unexpected {
                expected: format!("step assignment to loop variable `{var}`"),
                found: step_var,
                position: self.pos,
            });
        }
        self.expect_punct(Punct::Assign)?;
        let step = self.expression()?;
        self.expect_punct(Punct::RParen)?;
        let body = self.block()?;
        Ok(Stmt::For {
            var,
            init,
            cond,
            step,
            body,
            pragmas,
        })
    }

    // Expression parsing with precedence climbing.
    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Some(Token::Punct(Punct::OrOr))) {
            self.advance();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_comparison()?;
        while matches!(self.peek(), Some(Token::Punct(Punct::AndAnd))) {
            self.advance();
            let rhs = self.parse_comparison()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Some(Token::Punct(Punct::Eq)) => BinOp::Eq,
                Some(Token::Punct(Punct::Ne)) => BinOp::Ne,
                Some(Token::Punct(Punct::Lt)) => BinOp::Lt,
                Some(Token::Punct(Punct::Le)) => BinOp::Le,
                Some(Token::Punct(Punct::Gt)) => BinOp::Gt,
                Some(Token::Punct(Punct::Ge)) => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Punct(Punct::Plus)) => BinOp::Add,
                Some(Token::Punct(Punct::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Punct(Punct::Star)) => BinOp::Mul,
                Some(Token::Punct(Punct::Slash)) => BinOp::Div,
                Some(Token::Punct(Punct::Percent)) => BinOp::Rem,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Punct(Punct::Minus)) => {
                self.advance();
                let operand = self.parse_unary()?;
                Ok(Expr::Unary {
                    not: false,
                    operand: Box::new(operand),
                })
            }
            Some(Token::Punct(Punct::Not)) => {
                self.advance();
                let operand = self.parse_unary()?;
                Ok(Expr::Unary {
                    not: true,
                    operand: Box::new(operand),
                })
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::IntLit(v)) => {
                self.advance();
                Ok(Expr::IntLit(v))
            }
            Some(Token::FloatLit(v)) => {
                self.advance();
                Ok(Expr::FloatLit(v))
            }
            Some(Token::Punct(Punct::LParen)) => {
                self.advance();
                let inner = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                self.advance();
                match self.peek() {
                    Some(Token::Punct(Punct::LParen)) => {
                        self.advance();
                        let mut args = Vec::new();
                        if !matches!(self.peek(), Some(Token::Punct(Punct::RParen))) {
                            loop {
                                args.push(self.expression()?);
                                if matches!(self.peek(), Some(Token::Punct(Punct::Comma))) {
                                    self.advance();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect_punct(Punct::RParen)?;
                        Ok(Expr::Call { callee: name, args })
                    }
                    Some(Token::Punct(Punct::LBracket)) => {
                        self.advance();
                        let index = self.expression()?;
                        self.expect_punct(Punct::RBracket)?;
                        Ok(Expr::Index {
                            base: name,
                            index: Box::new(index),
                        })
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            _ => Err(self.unexpected("expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, Stmt};

    const AXPY: &str = r#"
kernel void axpy(float* y, float* x, float a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i = i + 1) {
        y[i] = y[i] + a * x[i];
    }
}
"#;

    #[test]
    fn parses_axpy_kernel() {
        let unit = parse("axpy.ck", AXPY).unwrap();
        assert_eq!(unit.functions.len(), 1);
        let f = &unit.functions[0];
        assert!(f.is_kernel);
        assert_eq!(f.params.len(), 4);
        match &f.body[0] {
            Stmt::For {
                var, pragmas, body, ..
            } => {
                assert_eq!(var, "i");
                assert_eq!(pragmas, &vec!["omp parallel for".to_string()]);
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected for loop, got {other:?}"),
        }
    }

    #[test]
    fn parses_multiple_functions_and_calls() {
        let src = r#"
float square(float v) { return v * v; }
kernel void apply(float* out, float* in, int n) {
    for (int i = 0; i < n; i = i + 1) {
        out[i] = square(in[i]);
    }
}
"#;
        let unit = parse("sq.ck", src).unwrap();
        assert_eq!(unit.functions.len(), 2);
        assert_eq!(unit.kernel_names(), vec!["apply"]);
        assert!(unit.external_calls().is_empty());
    }

    #[test]
    fn operator_precedence_is_respected() {
        let src = "kernel void f(float* o, float a, float b, float c) { o[0] = a + b * c; }";
        let unit = parse("p.ck", src).unwrap();
        let Stmt::Assign { value, .. } = &unit.functions[0].body[0] else {
            panic!()
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = value
        else {
            panic!("expected add at top level: {value:?}")
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_if_else_while_and_return() {
        let src = r#"
int clampsum(int* v, int n, int limit) {
    int total = 0;
    int i = 0;
    while (i < n) {
        if (total + v[i] > limit) {
            total = limit;
        } else {
            total = total + v[i];
        }
        i = i + 1;
    }
    return total;
}
"#;
        let unit = parse("c.ck", src).unwrap();
        let f = &unit.functions[0];
        assert!(!f.is_kernel);
        assert!(matches!(f.body[2], Stmt::While { .. }));
        assert!(matches!(f.body.last(), Some(Stmt::Return(Some(_)))));
    }

    #[test]
    fn nested_index_assignment_detection() {
        let src = "kernel void t(float* b, float* a, int n) { b[n - 1] = a[n - 1]; }";
        let unit = parse("t.ck", src).unwrap();
        assert!(matches!(unit.functions[0].body[0], Stmt::Assign { .. }));
    }

    #[test]
    fn reports_errors_with_context() {
        let err = parse("bad.ck", "kernel void f( { }").unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }));
        let err = parse("bad.ck", "kernel void f()").unwrap_err();
        assert!(matches!(
            err,
            ParseError::UnexpectedEof { .. } | ParseError::Unexpected { .. }
        ));
    }

    #[test]
    fn for_loop_step_must_use_loop_variable() {
        let src = "kernel void f(int n) { for (int i = 0; i < n; j = j + 1) { } }";
        assert!(parse("f.ck", src).is_err());
    }

    #[test]
    fn unary_and_logical_operators() {
        let src = "kernel void f(float* o, float a, int flag) { if (!(flag == 0) && a > -1.0) { o[0] = -a; } }";
        let unit = parse("u.ck", src).unwrap();
        assert!(matches!(unit.functions[0].body[0], Stmt::If { .. }));
    }
}
