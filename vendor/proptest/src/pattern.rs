//! A tiny regex-shaped string generator.
//!
//! Real proptest compiles full regexes into strategies; this shim supports the
//! subset that appears in string strategies in practice: literal characters,
//! character classes with ranges (`[A-Za-z0-9_.-]`), groups, and the `{n}`,
//! `{m,n}`, `?`, `*`, `+` quantifiers.

use super::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    Class(Vec<char>),
    Group(Vec<Node>),
    Repeat(Box<Node>, usize, usize),
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let nodes = parse_sequence(&chars, &mut pos, false);
    assert_eq!(pos, chars.len(), "unbalanced pattern: {pattern}");
    let mut out = String::new();
    for node in &nodes {
        emit(node, rng, &mut out);
    }
    out
}

fn parse_sequence(chars: &[char], pos: &mut usize, in_group: bool) -> Vec<Node> {
    let mut nodes = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        let node = match c {
            ')' if in_group => {
                *pos += 1;
                return nodes;
            }
            '(' => {
                *pos += 1;
                Node::Group(parse_sequence(chars, pos, true))
            }
            '[' => {
                *pos += 1;
                Node::Class(parse_class(chars, pos))
            }
            '\\' => {
                *pos += 1;
                let escaped = chars.get(*pos).copied().expect("dangling escape");
                *pos += 1;
                Node::Literal(escaped)
            }
            c => {
                *pos += 1;
                Node::Literal(c)
            }
        };
        nodes.push(apply_quantifier(node, chars, pos));
    }
    assert!(!in_group, "unterminated group in pattern");
    nodes
}

fn apply_quantifier(node: Node, chars: &[char], pos: &mut usize) -> Node {
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut low = String::new();
            while chars[*pos].is_ascii_digit() {
                low.push(chars[*pos]);
                *pos += 1;
            }
            let low: usize = low.parse().expect("quantifier lower bound");
            let high = if chars[*pos] == ',' {
                *pos += 1;
                let mut high = String::new();
                while chars[*pos].is_ascii_digit() {
                    high.push(chars[*pos]);
                    *pos += 1;
                }
                high.parse().expect("quantifier upper bound")
            } else {
                low
            };
            assert_eq!(chars[*pos], '}', "unterminated quantifier");
            *pos += 1;
            Node::Repeat(Box::new(node), low, high)
        }
        Some('?') => {
            *pos += 1;
            Node::Repeat(Box::new(node), 0, 1)
        }
        Some('*') => {
            *pos += 1;
            Node::Repeat(Box::new(node), 0, 8)
        }
        Some('+') => {
            *pos += 1;
            Node::Repeat(Box::new(node), 1, 8)
        }
        _ => node,
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Vec<char> {
    let mut options = Vec::new();
    while chars[*pos] != ']' {
        let start = chars[*pos];
        *pos += 1;
        if chars[*pos] == '-' && chars[*pos + 1] != ']' {
            let end = chars[*pos + 1];
            *pos += 2;
            for code in (start as u32)..=(end as u32) {
                options.push(char::from_u32(code).expect("valid class range"));
            }
        } else {
            options.push(start);
        }
    }
    *pos += 1; // ']'
    assert!(!options.is_empty(), "empty character class");
    options
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(options) => {
            out.push(options[rng.usize_in(0, options.len())]);
        }
        Node::Group(nodes) => {
            for inner in nodes {
                emit(inner, rng, out);
            }
        }
        Node::Repeat(inner, low, high) => {
            let count = if high > low {
                rng.usize_in(*low, *high + 1)
            } else {
                *low
            };
            for _ in 0..count {
                emit(inner, rng, out);
            }
        }
    }
}
