//! # xaas-apps
//!
//! Synthetic HPC applications for the XaaS Containers reproduction.
//!
//! The paper evaluates on GROMACS 2025 and llama.cpp, and uses LULESH as the running
//! example for configuration explosion. Those codebases cannot be vendored here, so each
//! has a synthetic analogue written in the CK kernel language with the *same
//! specialization structure* (Table 1): the same categories of build options, the same
//! conditional source layout (GPU backends, MPI, FFT fallback), and workloads whose
//! scalar-reference timings are calibrated against the paper's measurements.
//!
//! * [`gromacs`] — mini-GROMACS (molecular dynamics).
//! * [`lulesh`] — mini-LULESH (hydrodynamics, the 2×2-configuration example).
//! * [`llamacpp`] — mini-llama.cpp (LLM inference).
//! * [`baselines`] — the build profiles the figures compare against (naive, native,
//!   Spack, specialized containers, modules, XaaS source).

#![warn(missing_docs)]

pub mod baselines;
pub mod gromacs;
pub mod llamacpp;
pub mod lulesh;

pub use baselines::{
    gromacs_baselines, gromacs_portable_sycl_container, llamacpp_baselines, make_executable,
    preferred_gpu_backend,
};
