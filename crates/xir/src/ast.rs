//! Abstract syntax tree of the CK kernel language.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar and pointer types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// `void` (function returns only).
    Void,
    /// 64-bit signed integer (`int`).
    Int,
    /// 64-bit float (`float` / `double` are both modelled as f64).
    Float,
    /// Pointer to int (`int*`).
    IntPtr,
    /// Pointer to float (`float*` / `double*`).
    FloatPtr,
}

impl Type {
    /// Whether the type is a pointer.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::IntPtr | Type::FloatPtr)
    }

    /// The element type of a pointer.
    pub fn element(&self) -> Option<Type> {
        match self {
            Type::IntPtr => Some(Type::Int),
            Type::FloatPtr => Some(Type::Float),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::Void => "void",
            Type::Int => "int",
            Type::Float => "float",
            Type::IntPtr => "int*",
            Type::FloatPtr => "float*",
        };
        f.write_str(s)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether the operator yields a boolean (0/1) result.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable reference.
    Var(String),
    /// Array index `base[index]`.
    Index {
        /// The pointer variable.
        base: String,
        /// The index expression.
        index: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation `-x` or logical not `!x`.
    Unary {
        /// True for logical not, false for arithmetic negation.
        not: bool,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Variables read by this expression.
    pub fn referenced_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(name) => out.push(name.clone()),
            Expr::Index { base, index } => {
                out.push(base.clone());
                index.referenced_vars(out);
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.referenced_vars(out);
                rhs.referenced_vars(out);
            }
            Expr::Unary { operand, .. } => operand.referenced_vars(out),
            Expr::Call { args, .. } => {
                for a in args {
                    a.referenced_vars(out);
                }
            }
            _ => {}
        }
    }

    /// Functions called (transitively within this expression).
    pub fn called_functions(&self, out: &mut Vec<String>) {
        match self {
            Expr::Call { callee, args } => {
                out.push(callee.clone());
                for a in args {
                    a.called_functions(out);
                }
            }
            Expr::Index { index, .. } => index.called_functions(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.called_functions(out);
                rhs.called_functions(out);
            }
            Expr::Unary { operand, .. } => operand.called_functions(out),
            _ => {}
        }
    }
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element.
    Index {
        /// The pointer variable.
        base: String,
        /// The index expression.
        index: Expr,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Variable declaration with optional initialiser.
    Decl {
        /// Declared type.
        ty: Type,
        /// Variable name.
        name: String,
        /// Initialiser.
        init: Option<Expr>,
    },
    /// Assignment.
    Assign {
        /// Target.
        target: LValue,
        /// Value.
        value: Expr,
    },
    /// `for (init; cond; step) body` — the canonical counted loop.
    For {
        /// Loop variable name (declared by the init clause).
        var: String,
        /// Initial value.
        init: Expr,
        /// Condition (must be a comparison involving the loop variable).
        cond: Expr,
        /// Step expression assigned back to the loop variable.
        step: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Pragmas attached to this loop (e.g. `omp parallel for`, `omp simd`).
        pragmas: Vec<String>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `if (cond) then else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
    },
    /// `return expr;`
    Return(Option<Expr>),
    /// Expression statement (usually a call).
    ExprStmt(Expr),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Whether the function is a `kernel` (exported entry point).
    pub is_kernel: bool,
    /// Return type.
    pub return_type: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A translation unit: the functions defined in one preprocessed source file.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TranslationUnit {
    /// Source file name (for diagnostics and provenance).
    pub file: String,
    /// Functions in definition order.
    pub functions: Vec<Function>,
}

impl TranslationUnit {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Names of all kernel (exported) functions.
    pub fn kernel_names(&self) -> Vec<&str> {
        self.functions
            .iter()
            .filter(|f| f.is_kernel)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// All external functions called but not defined in this unit.
    pub fn external_calls(&self) -> Vec<String> {
        let defined: Vec<&str> = self.functions.iter().map(|f| f.name.as_str()).collect();
        let mut calls = Vec::new();
        for f in &self.functions {
            for stmt in &f.body {
                collect_calls_stmt(stmt, &mut calls);
            }
        }
        calls.retain(|c| !defined.contains(&c.as_str()));
        calls.sort();
        calls.dedup();
        calls
    }
}

fn collect_calls_stmt(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Decl { init: Some(e), .. } => e.called_functions(out),
        Stmt::Decl { .. } => {}
        Stmt::Assign { value, target } => {
            value.called_functions(out);
            if let LValue::Index { index, .. } = target {
                index.called_functions(out);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            init.called_functions(out);
            cond.called_functions(out);
            step.called_functions(out);
            for s in body {
                collect_calls_stmt(s, out);
            }
        }
        Stmt::While { cond, body } => {
            cond.called_functions(out);
            for s in body {
                collect_calls_stmt(s, out);
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            cond.called_functions(out);
            for s in then_body.iter().chain(else_body) {
                collect_calls_stmt(s, out);
            }
        }
        Stmt::Return(Some(e)) => e.called_functions(out),
        Stmt::Return(None) => {}
        Stmt::ExprStmt(e) => e.called_functions(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_unit() -> TranslationUnit {
        TranslationUnit {
            file: "axpy.ck".into(),
            functions: vec![Function {
                name: "axpy".into(),
                is_kernel: true,
                return_type: Type::Void,
                params: vec![
                    Param {
                        name: "y".into(),
                        ty: Type::FloatPtr,
                    },
                    Param {
                        name: "x".into(),
                        ty: Type::FloatPtr,
                    },
                    Param {
                        name: "a".into(),
                        ty: Type::Float,
                    },
                    Param {
                        name: "n".into(),
                        ty: Type::Int,
                    },
                ],
                body: vec![Stmt::For {
                    var: "i".into(),
                    init: Expr::IntLit(0),
                    cond: Expr::Binary {
                        op: BinOp::Lt,
                        lhs: Box::new(Expr::Var("i".into())),
                        rhs: Box::new(Expr::Var("n".into())),
                    },
                    step: Expr::Binary {
                        op: BinOp::Add,
                        lhs: Box::new(Expr::Var("i".into())),
                        rhs: Box::new(Expr::IntLit(1)),
                    },
                    body: vec![Stmt::Assign {
                        target: LValue::Index {
                            base: "y".into(),
                            index: Expr::Var("i".into()),
                        },
                        value: Expr::Binary {
                            op: BinOp::Add,
                            lhs: Box::new(Expr::Index {
                                base: "y".into(),
                                index: Box::new(Expr::Var("i".into())),
                            }),
                            rhs: Box::new(Expr::Binary {
                                op: BinOp::Mul,
                                lhs: Box::new(Expr::Var("a".into())),
                                rhs: Box::new(Expr::Call {
                                    callee: "fetch".into(),
                                    args: vec![Expr::Var("i".into())],
                                }),
                            }),
                        },
                    }],
                    pragmas: vec!["omp parallel for".into()],
                }],
            }],
        }
    }

    #[test]
    fn type_properties() {
        assert!(Type::FloatPtr.is_pointer());
        assert_eq!(Type::FloatPtr.element(), Some(Type::Float));
        assert_eq!(Type::Int.element(), None);
        assert_eq!(Type::IntPtr.to_string(), "int*");
    }

    #[test]
    fn kernel_names_and_lookup() {
        let unit = sample_unit();
        assert_eq!(unit.kernel_names(), vec!["axpy"]);
        assert!(unit.function("axpy").is_some());
        assert!(unit.function("missing").is_none());
    }

    #[test]
    fn external_calls_are_collected() {
        let unit = sample_unit();
        assert_eq!(unit.external_calls(), vec!["fetch".to_string()]);
    }

    #[test]
    fn referenced_vars_walks_expressions() {
        let expr = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Index {
                base: "x".into(),
                index: Box::new(Expr::Var("i".into())),
            }),
            rhs: Box::new(Expr::Var("a".into())),
        };
        let mut vars = Vec::new();
        expr.referenced_vars(&mut vars);
        assert_eq!(vars, vec!["x", "i", "a"]);
    }

    #[test]
    fn comparison_operators_are_flagged() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::And.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn ast_serializes_roundtrip() {
        let unit = sample_unit();
        let json = serde_json::to_string(&unit).unwrap();
        let back: TranslationUnit = serde_json::from_str(&json).unwrap();
        assert_eq!(back, unit);
    }
}
