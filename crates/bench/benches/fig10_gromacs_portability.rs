//! Figure 10 benchmark: GROMACS portability — source-container deployment plus the
//! execution-model comparison against naive/native/Spack baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xaas::prelude::*;
use xaas_apps::gromacs;
use xaas_bench::{figure10, render};
use xaas_container::{Architecture, ImageStore};
use xaas_hpcsim::SystemModel;

fn bench_figure10(c: &mut Criterion) {
    println!(
        "{}",
        render::render_panels("Figure 10: GROMACS performance portability", &figure10())
    );

    c.bench_function("fig10/all_systems", |b| {
        b.iter(|| black_box(figure10()));
    });

    // The deployment step itself (discovery → intersection → selection → build) per system.
    let project = gromacs::project();
    let mut group = c.benchmark_group("fig10/source_container_deployment");
    for system in [
        SystemModel::ault23(),
        SystemModel::aurora(),
        SystemModel::clariden(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(system.name.clone()),
            &system,
            |b, system| {
                b.iter(|| {
                    let store = ImageStore::new();
                    let orch = Orchestrator::uncached(&store);
                    let image =
                        build_source_container(&project, Architecture::Amd64, &store, "bench:src");
                    black_box(
                        SourceDeployRequest::new(&project, &image, system)
                            .submit(&orch)
                            .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figure10
}
criterion_main!(benches);
