//! Project descriptions: sources, targets, dependencies, and custom targets.
//!
//! A [`ProjectSpec`] is the substrate's analogue of a CMake project checkout: the CK
//! source tree, headers, the build options it exposes, and the executable/library targets
//! assembled from those sources. Conditional sources carry *tags* that option values
//! enable (the "code modules that can be excluded during configuration" of Section 4.3).

use crate::options::{BuildOption, OptionAssignment};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A source file in the project tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceSpec {
    /// Repository-relative path (e.g. `src/nonbonded.ck`).
    pub path: String,
    /// File content (CK source).
    pub content: String,
    /// Tags that must be enabled for this file to be built; empty = always built.
    pub required_tags: Vec<String>,
    /// Extra per-file compile flags (e.g. a file-specific `-DGMX_DOUBLE`).
    pub extra_flags: Vec<String>,
}

impl SourceSpec {
    /// An unconditional source file.
    pub fn new(path: impl Into<String>, content: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            content: content.into(),
            required_tags: Vec::new(),
            extra_flags: Vec::new(),
        }
    }

    /// Require a tag (source is built only when an enabled option provides it).
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.required_tags.push(tag.into());
        self
    }

    /// Add a per-file flag.
    pub fn with_flag(mut self, flag: impl Into<String>) -> Self {
        self.extra_flags.push(flag.into());
        self
    }
}

/// Kind of build target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetKind {
    /// An executable.
    Executable,
    /// A (static) library.
    Library,
}

/// A build target: a named collection of sources plus link dependencies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetSpec {
    /// Target name (e.g. `gmx`, `libgromacs`).
    pub name: String,
    /// Kind.
    pub kind: TargetKind,
    /// Paths of sources belonging to this target (conditional sources are filtered at
    /// configure time).
    pub sources: Vec<String>,
    /// Names of project targets this target links against.
    pub link_targets: Vec<String>,
    /// Per-target extra compile flags.
    pub extra_flags: Vec<String>,
}

impl TargetSpec {
    /// Create a target.
    pub fn new(name: impl Into<String>, kind: TargetKind, sources: Vec<String>) -> Self {
        Self {
            name: name.into(),
            kind,
            sources,
            link_targets: Vec::new(),
            extra_flags: Vec::new(),
        }
    }

    /// Builder: link against another target.
    pub fn linking(mut self, target: impl Into<String>) -> Self {
        self.link_targets.push(target.into());
        self
    }

    /// Builder: add a per-target flag.
    pub fn with_flag(mut self, flag: impl Into<String>) -> Self {
        self.extra_flags.push(flag.into());
        self
    }
}

/// A custom target that generates a source file at build time (Section 5.1: "How to
/// handle custom targets?" — e.g. GROMACS building its own FFT implementation when none
/// is selected). The pipeline executes these before analysing build configurations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CustomTarget {
    /// Name of the custom target.
    pub name: String,
    /// Path of the file it generates.
    pub generates: String,
    /// Content of the generated file.
    pub content: String,
    /// Tags that trigger the generation (empty = always runs).
    pub required_tags: Vec<String>,
}

/// A complete project description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectSpec {
    /// Project name (e.g. `mini-gromacs`).
    pub name: String,
    /// Version string.
    pub version: String,
    /// The build script text (mini-CMake format) — what specialization discovery parses.
    pub build_script: String,
    /// Build options (specialization points).
    pub options: Vec<BuildOption>,
    /// Source files.
    pub sources: Vec<SourceSpec>,
    /// Header files available to `#include` (name → content).
    pub headers: BTreeMap<String, String>,
    /// Build targets.
    pub targets: Vec<TargetSpec>,
    /// Custom source-generating targets.
    pub custom_targets: Vec<CustomTarget>,
    /// Global compile flags applied to every target regardless of options (e.g. `-O3`).
    pub global_flags: Vec<String>,
    /// Whether the project's MPI code is compiled against the MPICH ABI (Section 4.3,
    /// "Compilation": MPI-dependent files are system-dependent).
    pub mpi_abi: Option<String>,
}

impl ProjectSpec {
    /// Look up an option by name.
    pub fn option(&self, name: &str) -> Option<&BuildOption> {
        self.options.iter().find(|o| o.name == name)
    }

    /// Look up a source by path.
    pub fn source(&self, path: &str) -> Option<&SourceSpec> {
        self.sources.iter().find(|s| s.path == path)
    }

    /// Look up a target by name.
    pub fn target(&self, name: &str) -> Option<&TargetSpec> {
        self.targets.iter().find(|t| t.name == name)
    }

    /// The default option assignment (every option at its default value).
    pub fn default_assignment(&self) -> OptionAssignment {
        let mut assignment = OptionAssignment::new();
        for option in &self.options {
            assignment.set(option.name.clone(), option.default_value());
        }
        assignment
    }

    /// Validate an assignment: unknown options or illegal values are reported.
    pub fn validate_assignment(&self, assignment: &OptionAssignment) -> Result<(), String> {
        for (name, value) in assignment.iter() {
            let Some(option) = self.option(name) else {
                return Err(format!("unknown option `{name}` for project {}", self.name));
            };
            if !option.accepts(value) {
                return Err(format!(
                    "option `{name}` does not accept `{value}` (choices: {})",
                    option.value_names().join(", ")
                ));
            }
        }
        Ok(())
    }

    /// Total number of source files (before configuration filtering).
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// All source content keyed by path (used when copying the tree into containers).
    pub fn source_tree(&self) -> BTreeMap<String, String> {
        self.sources
            .iter()
            .map(|s| (s.path.clone(), s.content.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{OptionCategory, OptionEffects, OptionValue};

    fn tiny_project() -> ProjectSpec {
        let mpi_on = OptionEffects {
            definitions: vec!["-DUSE_MPI".into()],
            enables_tags: vec!["mpi".into()],
            dependencies: vec!["mpich".into()],
            ..Default::default()
        };
        ProjectSpec {
            name: "tiny".into(),
            version: "1.0".into(),
            build_script: "project(tiny)\noption(USE_MPI \"Enable MPI\" OFF)\n".into(),
            options: vec![
                BuildOption::boolean("USE_MPI", "Enable MPI", OptionCategory::Parallelism, false, mpi_on),
                BuildOption::choice(
                    "SIMD",
                    "Vectorization",
                    OptionCategory::Vectorization,
                    vec![OptionValue::plain("None"), OptionValue::plain("AVX_512").with_flag("-mavx512f")],
                    "None",
                ),
            ],
            sources: vec![
                SourceSpec::new("src/core.ck", "kernel void core(float* x, int n) { for (int i = 0; i < n; i = i + 1) { x[i] = 1.0; } }"),
                SourceSpec::new("src/comm.ck", "kernel void halo(float* x, int n) { for (int i = 0; i < n; i = i + 1) { x[i] = 0.0; } }")
                    .with_tag("mpi"),
            ],
            headers: BTreeMap::new(),
            targets: vec![TargetSpec::new(
                "tiny",
                TargetKind::Executable,
                vec!["src/core.ck".into(), "src/comm.ck".into()],
            )],
            custom_targets: vec![],
            global_flags: vec!["-O3".into()],
            mpi_abi: Some("mpich".into()),
        }
    }

    #[test]
    fn lookups_and_defaults() {
        let project = tiny_project();
        assert!(project.option("USE_MPI").is_some());
        assert!(project.option("MISSING").is_none());
        assert!(project.source("src/core.ck").is_some());
        assert!(project.target("tiny").is_some());
        let defaults = project.default_assignment();
        assert_eq!(defaults.get("USE_MPI"), Some("OFF"));
        assert_eq!(defaults.get("SIMD"), Some("None"));
        assert_eq!(project.source_count(), 2);
    }

    #[test]
    fn assignment_validation() {
        let project = tiny_project();
        let good = OptionAssignment::new()
            .with("USE_MPI", "ON")
            .with("SIMD", "AVX_512");
        assert!(project.validate_assignment(&good).is_ok());
        let unknown = OptionAssignment::new().with("NOPE", "ON");
        assert!(project.validate_assignment(&unknown).is_err());
        let bad_value = OptionAssignment::new().with("SIMD", "AVX2_128");
        assert!(project.validate_assignment(&bad_value).is_err());
    }

    #[test]
    fn source_tree_and_builders() {
        let project = tiny_project();
        let tree = project.source_tree();
        assert_eq!(tree.len(), 2);
        assert!(tree["src/comm.ck"].contains("halo"));
        let spec = SourceSpec::new("a.ck", "x")
            .with_tag("gpu")
            .with_flag("-DF");
        assert_eq!(spec.required_tags, vec!["gpu"]);
        assert_eq!(spec.extra_flags, vec!["-DF"]);
        let target = TargetSpec::new("t", TargetKind::Library, vec![])
            .linking("core")
            .with_flag("-DLIB");
        assert_eq!(target.link_targets, vec!["core"]);
    }

    #[test]
    fn project_serde_roundtrip() {
        let project = tiny_project();
        let json = serde_json::to_string(&project).unwrap();
        let back: ProjectSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, project);
    }
}
