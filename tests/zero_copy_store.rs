//! Zero-copy invariants of the Arc-backed blob store and action cache.
//!
//! The tier-1 byte-identity properties (parallel vs serial, warm vs cold) live in
//! `property_pipeline.rs`; this file checks the *mechanism* behind them: handles
//! returned by the store and the cache share one allocation (proved by pointer
//! identity, not just byte equality), digest-known insertion never re-hashes, and
//! a store raced by many writers stores and hashes a payload exactly once.

use proptest::prelude::*;
use xaas_container::digest::Digest;
use xaas_container::{ActionCache, Blob, BuildKey, ImageStore};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every `blob()` handle shares the allocation inserted by `put_blob`, and a
    /// digest-known re-insertion dedups without computing a digest.
    #[test]
    fn store_handles_share_one_allocation(
        payload in proptest::collection::vec(any::<u8>(), 1..2048),
    ) {
        let store = ImageStore::new();
        let stored = Blob::new(payload.clone());
        let digest = store.put_blob(stored.clone());
        prop_assert_eq!(store.digests_computed(), 1);

        let first = store.blob(&digest).unwrap();
        let second = store.blob(&digest).unwrap();
        prop_assert!(Blob::ptr_eq(&first, &stored), "handle aliases the inserted allocation");
        prop_assert!(Blob::ptr_eq(&first, &second), "repeated reads alias each other");

        // Re-inserting under the known digest neither hashes nor stores again.
        store.put_blob_with_digest(digest.clone(), payload.clone());
        prop_assert_eq!(store.digests_computed(), 1);
        prop_assert_eq!(store.blob_count(), 1);
        prop_assert_eq!(store.stats().dedup_hits, 1);
        prop_assert!(Blob::ptr_eq(&store.blob(&digest).unwrap(), &stored));
    }

    /// Warm and cold cache lookups hand every consumer the store's allocation:
    /// the miss return value, the hit return value, and `peek` are all the same
    /// `Arc`, and the bytes match what the compute closure produced.
    #[test]
    fn cache_misses_and_hits_alias_the_stored_blob(
        payload in proptest::collection::vec(any::<u8>(), 1..2048),
        key_name in "[a-z]{1,12}",
    ) {
        let cache = ActionCache::new(ImageStore::new());
        let key = BuildKey::new(&key_name, "xir.ir", "-O3", "xirc-1");
        let (cold, cold_hit) = cache
            .get_or_compute::<std::convert::Infallible>(&key, || Ok(payload.clone()))
            .unwrap();
        prop_assert!(!cold_hit);
        let (warm, warm_hit) = cache
            .get_or_compute::<std::convert::Infallible>(&key, || unreachable!("cached"))
            .unwrap();
        prop_assert!(warm_hit);
        let peeked = cache.peek(&key).unwrap();
        let stored = cache
            .store()
            .blob(&cache.action_blob(&key).unwrap())
            .unwrap();
        prop_assert_eq!(&cold, &payload);
        prop_assert!(Blob::ptr_eq(&cold, &stored), "miss returns the stored handle");
        prop_assert!(Blob::ptr_eq(&warm, &stored), "hit returns the stored handle");
        prop_assert!(Blob::ptr_eq(&peeked, &stored), "peek returns the stored handle");
    }
}

/// Many writers racing the same payload — one plain `put_blob` plus digest-known
/// insertions from every other thread — leave exactly one stored blob and exactly
/// one digest computation, and every handle aliases that single allocation.
#[test]
fn concurrent_writers_store_and_hash_a_payload_exactly_once() {
    const WRITERS: usize = 8;
    const ROUNDS: usize = 25;
    for round in 0..ROUNDS {
        let store = ImageStore::new();
        let payload: Vec<u8> = (0..4096).map(|i| ((i + round) % 251) as u8).collect();
        let digest = Digest::of_bytes(&payload);
        let handles: Vec<Blob> = std::thread::scope(|scope| {
            let threads: Vec<_> = (0..WRITERS)
                .map(|writer| {
                    let store = &store;
                    let payload = &payload;
                    let digest = digest.clone();
                    scope.spawn(move || {
                        let stored = if writer == 0 {
                            store.put_blob(payload.clone())
                        } else {
                            store.put_blob_with_digest(digest, payload.clone())
                        };
                        store.blob(&stored).unwrap()
                    })
                })
                .collect();
            threads.into_iter().map(|t| t.join().unwrap()).collect()
        });
        assert_eq!(store.blob_count(), 1, "stored once");
        assert_eq!(store.digests_computed(), 1, "hashed once");
        assert_eq!(store.stats().dedup_hits as usize, WRITERS - 1);
        assert_eq!(
            store.stats().dedup_bytes as usize,
            (WRITERS - 1) * payload.len()
        );
        let winner = store.blob(&digest).unwrap();
        for handle in &handles {
            assert_eq!(handle, &winner);
            assert!(
                Blob::ptr_eq(handle, &winner),
                "every racer ends up holding the surviving allocation"
            );
        }
    }
}
