//! Compute-once memoization cell for content digests.
//!
//! `content_digest()` on [`PreprocessedUnit`](crate::preprocess::PreprocessedUnit),
//! [`IrModule`](crate::ir::IrModule), and [`MachineModule`](crate::target::MachineModule)
//! is on the build pipeline's hot path: cache keys are derived from it at every
//! dispatch, and recomputing it re-serialises the whole module each time. A
//! [`DigestCell`] caches the first computation.
//!
//! # Invalidation model: by construction, not by mutation
//!
//! The cell is reset by every operation that produces a *new* value — `Clone`,
//! `Default`, and deserialization all yield an empty cell — so a freshly built or
//! copied module always recomputes. Mutating a module in place *after* its digest
//! was observed does **not** reset the cell; the pipeline's contract is that
//! modules are frozen once their identity has been used (lowering and passes run
//! on fresh clones). This is the same rule Nix-style derivation stores apply: an
//! identity, once derived, names an immutable artifact.

use serde::{Deserialize, Serialize, Value};
use std::sync::OnceLock;

/// A lazily-computed, thread-safe digest slot.
///
/// Equality, ordering of the containing struct, serialization, and hashing all
/// ignore the cell entirely — it is a cache, not data. Serializing a struct with
/// a `#[serde(default, skip_serializing_if = "DigestCell::skip")]` cell field
/// produces byte-identical output to the struct without the field.
#[derive(Default)]
pub struct DigestCell {
    slot: OnceLock<String>,
}

impl DigestCell {
    /// An empty (not yet computed) cell.
    pub const fn new() -> Self {
        Self {
            slot: OnceLock::new(),
        }
    }

    /// Return the memoized digest, computing and storing it on first use.
    pub fn get_or_init(&self, compute: impl FnOnce() -> String) -> String {
        self.slot.get_or_init(compute).clone()
    }

    /// Whether the digest has been computed already (test/diagnostic hook).
    pub fn is_computed(&self) -> bool {
        self.slot.get().is_some()
    }

    /// Always `true`: used as `skip_serializing_if` so the cell never appears in
    /// serialized output, keeping module bytes identical with or without the cell.
    pub fn skip(&self) -> bool {
        true
    }
}

impl Clone for DigestCell {
    /// Cloning yields an *empty* cell: a clone is a new value whose bytes may be
    /// about to diverge (lowering clones then vectorises), so its identity must be
    /// recomputed from its own content.
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl PartialEq for DigestCell {
    /// Cells never influence the equality of their containing struct.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for DigestCell {}

impl std::fmt::Debug for DigestCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.slot.get() {
            Some(digest) => write!(f, "DigestCell({digest})"),
            None => write!(f, "DigestCell(<uncomputed>)"),
        }
    }
}

impl Serialize for DigestCell {
    /// Never called in practice (the field is always skipped), but required so the
    /// derive's skip codegen type-checks.
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for DigestCell {
    /// Deserialization always yields an empty cell — a decoded module recomputes
    /// its digest from the decoded content, never trusts a transported one.
    fn from_value(_value: &Value) -> Result<Self, serde::Error> {
        Ok(Self::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_once_and_memoizes() {
        let cell = DigestCell::new();
        assert!(!cell.is_computed());
        let mut calls = 0;
        let first = cell.get_or_init(|| {
            calls += 1;
            "abc123".to_string()
        });
        assert_eq!(first, "abc123");
        assert!(cell.is_computed());
        let second = cell.get_or_init(|| unreachable!("memoized"));
        assert_eq!(second, "abc123");
        assert_eq!(calls, 1);
    }

    #[test]
    fn clone_and_default_are_empty() {
        let cell = DigestCell::new();
        cell.get_or_init(|| "seen".to_string());
        assert!(!cell.clone().is_computed(), "clone invalidates");
        assert!(!DigestCell::default().is_computed());
    }

    #[test]
    fn equality_and_serde_ignore_the_cell() {
        let computed = DigestCell::new();
        computed.get_or_init(|| "x".to_string());
        let empty = DigestCell::new();
        assert_eq!(computed, empty);
        assert!(computed.skip() && empty.skip());
        assert_eq!(computed.to_value(), Value::Null);
        let back = DigestCell::from_value(&Value::Null).unwrap();
        assert!(!back.is_computed());
    }

    #[test]
    fn debug_shows_state() {
        let cell = DigestCell::new();
        assert_eq!(format!("{cell:?}"), "DigestCell(<uncomputed>)");
        cell.get_or_init(|| "beef".to_string());
        assert_eq!(format!("{cell:?}"), "DigestCell(beef)");
    }
}
