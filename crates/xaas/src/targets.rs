//! Mapping between the paper-facing vocabulary (GROMACS-style SIMD levels, option
//! assignments) and the substrates' types (XIR targets, performance build profiles).

use xaas_buildsys::OptionAssignment;
use xaas_hpcsim::{BuildProfile, GpuBackend, LibraryQuality, SimdLevel, SystemModel};
use xaas_xir::TargetIsa;

/// Translate a SIMD level into the XIR code-generation target used at deployment.
pub fn target_isa_for(level: SimdLevel) -> TargetIsa {
    let fma = matches!(
        level,
        SimdLevel::Avx2_128
            | SimdLevel::Avx2_256
            | SimdLevel::Avx512
            | SimdLevel::NeonAsimd
            | SimdLevel::Sve
    );
    match level {
        SimdLevel::None => TargetIsa::scalar("generic"),
        other => TargetIsa::vector(
            format!(
                "{}-{}",
                other.family().as_str(),
                other.gmx_name().to_ascii_lowercase()
            ),
            other.width_sp(),
            fma,
        ),
    }
}

/// Interpret an option assignment (of any of the synthetic applications) as a performance
/// build profile on a given system: SIMD level, GPU backend, library qualities, OpenMP.
pub fn derive_build_profile(
    label: impl Into<String>,
    assignment: &OptionAssignment,
    system: &SystemModel,
    threads: u32,
) -> BuildProfile {
    let mut simd: Option<SimdLevel> = None;
    let mut gpu: Option<GpuBackend> = None;
    let mut fft = LibraryQuality::Generic;
    let mut blas = LibraryQuality::Generic;

    for (name, value) in assignment.iter() {
        let upper_name = name.to_ascii_uppercase();
        if upper_name.contains("SIMD") || upper_name.contains("VECTOR") {
            if value.eq_ignore_ascii_case("AUTO") {
                simd = Some(system.cpu.best_simd());
            } else if let Some(level) = SimdLevel::parse(value) {
                simd = Some(level);
            }
        } else if upper_name.contains("GPU") || upper_name.contains("BACKEND") {
            gpu = GpuBackend::parse(value).or(gpu);
        } else if upper_name.contains("FFT") {
            fft = library_quality_of(value);
        } else if upper_name.contains("BLAS") || upper_name.contains("LINEAR") {
            blas = library_quality_of(value);
        } else if upper_name.contains("NATIVE") && value.eq_ignore_ascii_case("ON") {
            simd = simd.or(Some(system.cpu.best_simd()));
        } else if upper_name.contains("AVX512") && value.eq_ignore_ascii_case("ON") {
            simd = Some(SimdLevel::Avx512);
        }
    }

    let mut profile = BuildProfile::new(label, simd.unwrap_or(SimdLevel::Sse2), threads)
        .with_libraries(blas, fft);
    if let Some(backend) = gpu {
        profile = profile.with_gpu(backend);
    }
    profile
}

/// Classify a library option value into a quality tier.
pub fn library_quality_of(value: &str) -> LibraryQuality {
    let lower = value.to_ascii_lowercase();
    if lower.contains("mkl")
        || lower.contains("cufft")
        || lower.contains("onemath")
        || lower.contains("rocfft")
    {
        LibraryQuality::Vendor
    } else if lower.contains("fftw") || lower.contains("openblas") || lower.contains("blis") {
        LibraryQuality::Generic
    } else {
        LibraryQuality::Reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_levels_map_to_targets_with_expected_widths() {
        assert_eq!(target_isa_for(SimdLevel::None).vector_width, 1);
        assert_eq!(target_isa_for(SimdLevel::Sse41).vector_width, 4);
        assert_eq!(target_isa_for(SimdLevel::Avx512).vector_width, 16);
        assert!(target_isa_for(SimdLevel::Avx512).fma);
        assert!(!target_isa_for(SimdLevel::Sse2).fma);
        assert!(target_isa_for(SimdLevel::NeonAsimd)
            .name
            .contains("aarch64"));
    }

    #[test]
    fn assignment_derives_gpu_simd_and_libraries() {
        let system = SystemModel::ault23();
        let assignment = OptionAssignment::new()
            .with("GMX_GPU", "CUDA")
            .with("GMX_SIMD", "AVX_512")
            .with("GMX_FFT_LIBRARY", "mkl")
            .with("GMX_BLAS_LIBRARY", "openblas");
        let profile = derive_build_profile("test", &assignment, &system, 16);
        assert_eq!(profile.gpu_backend, Some(GpuBackend::Cuda));
        assert_eq!(profile.simd, SimdLevel::Avx512);
        assert_eq!(profile.fft, LibraryQuality::Vendor);
        assert_eq!(profile.blas, LibraryQuality::Generic);
        assert_eq!(profile.threads, 16);
    }

    #[test]
    fn auto_simd_resolves_to_the_system_best_level() {
        let assignment = OptionAssignment::new().with("GMX_SIMD", "AUTO");
        let on_ault = derive_build_profile("x", &assignment, &SystemModel::ault23(), 8);
        assert_eq!(on_ault.simd, SimdLevel::Avx512);
        let on_clariden = derive_build_profile("x", &assignment, &SystemModel::clariden(), 8);
        assert_eq!(on_clariden.simd, SimdLevel::NeonAsimd);
    }

    #[test]
    fn llamacpp_style_options_are_understood() {
        let system = SystemModel::clariden();
        let assignment = OptionAssignment::new()
            .with("GGML_GPU_BACKEND", "CUDA")
            .with("GGML_NATIVE", "ON")
            .with("GGML_BLAS_VENDOR", "MKL");
        let profile = derive_build_profile("llama", &assignment, &system, 72);
        assert_eq!(profile.gpu_backend, Some(GpuBackend::Cuda));
        assert_eq!(profile.simd, SimdLevel::NeonAsimd);
        assert_eq!(profile.blas, LibraryQuality::Vendor);
    }

    #[test]
    fn library_quality_classification() {
        assert_eq!(library_quality_of("mkl"), LibraryQuality::Vendor);
        assert_eq!(library_quality_of("fftw3"), LibraryQuality::Generic);
        assert_eq!(library_quality_of("fftpack"), LibraryQuality::Reference);
        assert_eq!(library_quality_of("internal"), LibraryQuality::Reference);
    }
}
