//! Container runtime with OCI-style hooks.
//!
//! HPC container runtimes (Sarus, Podman-HPC, Apptainer) re-specialize images at run time
//! by *injecting host libraries* — the MPI replacement, GPU driver mounts, and libfabric
//! swaps of Table 2. This module models that mechanism: a [`ContainerRuntime`] prepares a
//! container root filesystem from an image plus a list of [`Hook`]s, subject to the ABI
//! compatibility checks the paper identifies as the core limitation of runtime linking.

use crate::image::Image;
use crate::layer::{Layer, RootFs};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies the flavour of container runtime. Behaviour differences modelled:
/// whether MPI hooks are functional (Apptainer-on-Aurora is not, Section 6.5) and
/// whether images are flattened (losing OCI layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuntimeKind {
    /// Plain Docker: no HPC hooks.
    Docker,
    /// Sarus (CSCS): OCI hooks for MPI and GPU injection; flattens images.
    Sarus,
    /// Podman / Podman-HPC.
    Podman,
    /// Apptainer / Singularity: SIF images, semi-manual MPI binding.
    Apptainer,
}

impl RuntimeKind {
    /// Whether the runtime supports OCI hooks that replace MPI at run time.
    pub fn supports_mpi_hook(&self) -> bool {
        matches!(self, RuntimeKind::Sarus | RuntimeKind::Podman)
    }

    /// Whether the runtime preserves the original OCI layer structure.
    pub fn preserves_oci_layers(&self) -> bool {
        matches!(self, RuntimeKind::Docker | RuntimeKind::Podman)
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            RuntimeKind::Docker => "Docker",
            RuntimeKind::Sarus => "Sarus",
            RuntimeKind::Podman => "Podman",
            RuntimeKind::Apptainer => "Apptainer",
        }
    }
}

/// A library that a hook wants to inject, together with its ABI identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostLibrary {
    /// Path inside the container where the library will be placed.
    pub container_path: String,
    /// Name of the implementation (e.g. `cray-mpich`, `libcuda`).
    pub implementation: String,
    /// ABI family string; replacement requires the container's library to share it
    /// (e.g. `mpich` ABI vs `openmpi` ABI, or a BLAS/LAPACK Fortran ABI).
    pub abi: String,
    /// Version of the host implementation.
    pub version: String,
}

/// OCI-style hooks the runtime can apply when creating a container.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Hook {
    /// Replace an MPI library inside the container with the host implementation,
    /// contingent on ABI compatibility.
    MpiReplacement {
        /// The host MPI to inject.
        host: HostLibrary,
    },
    /// Inject GPU driver libraries and device nodes.
    GpuInjection {
        /// Host driver libraries to mount into the container.
        libraries: Vec<HostLibrary>,
    },
    /// Replace the libfabric installation to access a proprietary network provider.
    LibfabricReplacement {
        /// The host libfabric build.
        host: HostLibrary,
        /// Providers the host build supports (e.g. `cxi`).
        providers: Vec<String>,
    },
    /// Bind-mount an arbitrary host path.
    BindMount {
        /// Host path (recorded for provenance only).
        source: String,
        /// Path inside the container.
        destination: String,
        /// Content placed at the destination.
        content: String,
    },
}

/// The result of preparing a container: its root filesystem plus a record of which hooks
/// were applied and which were skipped (and why).
#[derive(Debug, Clone)]
pub struct PreparedContainer {
    /// Name assigned at creation.
    pub name: String,
    /// The runtime used.
    pub runtime: RuntimeKind,
    /// Flattened root filesystem after hook application.
    pub rootfs: RootFs,
    /// Environment from the image plus runtime additions.
    pub env: BTreeMap<String, String>,
    /// Applied hook descriptions.
    pub applied_hooks: Vec<String>,
    /// Skipped hooks with reasons (ABI mismatch, unsupported runtime, …).
    pub skipped_hooks: Vec<(String, String)>,
}

impl PreparedContainer {
    /// Convenience: whether a library implementation is visible at a path.
    pub fn library_at(&self, path: &str) -> Option<String> {
        self.rootfs.read_text(path)
    }
}

/// Errors when preparing containers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant payload fields are documented by the Display impl
pub enum RuntimeError {
    /// The image targets an architecture the host cannot execute.
    ArchitectureMismatch { image: String, host: String },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ArchitectureMismatch { image, host } => {
                write!(f, "image architecture {image} cannot run on host {host}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Description of the container declared inside the image that a hook may need to check
/// against (e.g. which MPI ABI the application was compiled for).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerAbiInfo {
    /// MPI ABI the application was linked against (e.g. `mpich`), if any.
    pub mpi_abi: Option<String>,
    /// Path of the MPI library inside the image.
    pub mpi_path: Option<String>,
}

/// The container runtime.
#[derive(Debug, Clone)]
pub struct ContainerRuntime {
    /// Which runtime flavour this models.
    pub kind: RuntimeKind,
    /// Host architecture string (must match the image platform unless the image is IR).
    pub host_architecture: crate::oci::Architecture,
}

impl ContainerRuntime {
    /// Create a runtime of the given kind for a host architecture.
    pub fn new(kind: RuntimeKind, host_architecture: crate::oci::Architecture) -> Self {
        Self {
            kind,
            host_architecture,
        }
    }

    /// Prepare (instantiate) a container from an image, applying hooks.
    pub fn prepare(
        &self,
        name: impl Into<String>,
        image: &Image,
        abi_info: &ContainerAbiInfo,
        hooks: &[Hook],
    ) -> Result<PreparedContainer, RuntimeError> {
        if !image.platform.architecture.runs_on(self.host_architecture) {
            return Err(RuntimeError::ArchitectureMismatch {
                image: image.platform.architecture.to_string(),
                host: self.host_architecture.to_string(),
            });
        }

        let mut layers: Vec<Layer> = image.layers.clone();
        let mut applied = Vec::new();
        let mut skipped = Vec::new();

        for hook in hooks {
            match hook {
                Hook::MpiReplacement { host } => {
                    if !self.kind.supports_mpi_hook() {
                        skipped.push((
                            format!("mpi-replacement({})", host.implementation),
                            format!("{} does not support MPI hooks", self.kind.name()),
                        ));
                        continue;
                    }
                    let Some(container_abi) = &abi_info.mpi_abi else {
                        skipped.push((
                            format!("mpi-replacement({})", host.implementation),
                            "container does not use MPI".to_string(),
                        ));
                        continue;
                    };
                    if container_abi != &host.abi {
                        skipped.push((
                            format!("mpi-replacement({})", host.implementation),
                            format!("ABI mismatch: container={container_abi}, host={}", host.abi),
                        ));
                        continue;
                    }
                    let path = abi_info
                        .mpi_path
                        .clone()
                        .unwrap_or_else(|| host.container_path.clone());
                    let mut layer =
                        Layer::new(format!("HOOK mpi-replacement {}", host.implementation));
                    layer.add_text(path, format!("{} {}", host.implementation, host.version));
                    layers.push(layer);
                    applied.push(format!(
                        "mpi-replacement({} {})",
                        host.implementation, host.version
                    ));
                }
                Hook::GpuInjection { libraries } => {
                    let mut layer = Layer::new("HOOK gpu-injection");
                    for lib in libraries {
                        layer.add_text(
                            lib.container_path.clone(),
                            format!("{} {}", lib.implementation, lib.version),
                        );
                    }
                    layers.push(layer);
                    applied.push(format!("gpu-injection({} libraries)", libraries.len()));
                }
                Hook::LibfabricReplacement { host, providers } => {
                    let mut layer = Layer::new("HOOK libfabric-replacement");
                    layer.add_text(
                        host.container_path.clone(),
                        format!(
                            "{} {} providers={}",
                            host.implementation,
                            host.version,
                            providers.join(",")
                        ),
                    );
                    layers.push(layer);
                    applied.push(format!(
                        "libfabric-replacement(providers={})",
                        providers.join(",")
                    ));
                }
                Hook::BindMount {
                    source,
                    destination,
                    content,
                } => {
                    let mut layer = Layer::new(format!("HOOK bind-mount {source}"));
                    layer.add_text(destination.clone(), content.clone());
                    layers.push(layer);
                    applied.push(format!("bind-mount({source} -> {destination})"));
                }
            }
        }

        let rootfs = RootFs::flatten(layers.iter());
        let mut env = BTreeMap::new();
        for pair in &image.runtime.env {
            if let Some((k, v)) = pair.split_once('=') {
                env.insert(k.to_string(), v.to_string());
            }
        }
        Ok(PreparedContainer {
            name: name.into(),
            runtime: self.kind,
            rootfs,
            env,
            applied_hooks: applied,
            skipped_hooks: skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oci::{Architecture, Platform};

    fn mpi_image(arch: Architecture) -> (Image, ContainerAbiInfo) {
        let mut img = Image::new("spcl/app:mpi", Platform::linux(arch));
        let mut l = Layer::new("base");
        l.add_text("/opt/mpi/lib/libmpi.so", "mpich 4.2 (generic)");
        l.add_text("/opt/app/bin/solver", "application binary");
        img.push_layer(l);
        img.runtime.env.push("PATH=/opt/app/bin".to_string());
        let abi = ContainerAbiInfo {
            mpi_abi: Some("mpich".to_string()),
            mpi_path: Some("/opt/mpi/lib/libmpi.so".to_string()),
        };
        (img, abi)
    }

    fn cray_mpich() -> HostLibrary {
        HostLibrary {
            container_path: "/opt/mpi/lib/libmpi.so".into(),
            implementation: "cray-mpich".into(),
            abi: "mpich".into(),
            version: "8.1.29".into(),
        }
    }

    #[test]
    fn sarus_applies_mpi_hook_with_matching_abi() {
        let (img, abi) = mpi_image(Architecture::Amd64);
        let rt = ContainerRuntime::new(RuntimeKind::Sarus, Architecture::Amd64);
        let prepared = rt
            .prepare(
                "job1",
                &img,
                &abi,
                &[Hook::MpiReplacement { host: cray_mpich() }],
            )
            .unwrap();
        assert_eq!(prepared.applied_hooks.len(), 1);
        assert!(prepared
            .library_at("/opt/mpi/lib/libmpi.so")
            .unwrap()
            .contains("cray-mpich"));
    }

    #[test]
    fn abi_mismatch_skips_mpi_hook() {
        let (img, mut abi) = mpi_image(Architecture::Amd64);
        abi.mpi_abi = Some("openmpi".to_string());
        let rt = ContainerRuntime::new(RuntimeKind::Sarus, Architecture::Amd64);
        let prepared = rt
            .prepare(
                "job1",
                &img,
                &abi,
                &[Hook::MpiReplacement { host: cray_mpich() }],
            )
            .unwrap();
        assert!(prepared.applied_hooks.is_empty());
        assert_eq!(prepared.skipped_hooks.len(), 1);
        assert!(prepared.skipped_hooks[0].1.contains("ABI mismatch"));
        // Original library untouched.
        assert!(prepared
            .library_at("/opt/mpi/lib/libmpi.so")
            .unwrap()
            .contains("generic"));
    }

    #[test]
    fn apptainer_does_not_support_mpi_hooks() {
        let (img, abi) = mpi_image(Architecture::Amd64);
        let rt = ContainerRuntime::new(RuntimeKind::Apptainer, Architecture::Amd64);
        let prepared = rt
            .prepare(
                "job1",
                &img,
                &abi,
                &[Hook::MpiReplacement { host: cray_mpich() }],
            )
            .unwrap();
        assert!(prepared.applied_hooks.is_empty());
        assert!(prepared.skipped_hooks[0]
            .1
            .contains("does not support MPI hooks"));
    }

    #[test]
    fn gpu_injection_always_applies() {
        let (img, abi) = mpi_image(Architecture::Amd64);
        let rt = ContainerRuntime::new(RuntimeKind::Docker, Architecture::Amd64);
        let libs = vec![HostLibrary {
            container_path: "/usr/lib/libcuda.so.1".into(),
            implementation: "nvidia-driver".into(),
            abi: "cuda".into(),
            version: "550.54".into(),
        }];
        let prepared = rt
            .prepare(
                "job1",
                &img,
                &abi,
                &[Hook::GpuInjection { libraries: libs }],
            )
            .unwrap();
        assert!(prepared
            .library_at("/usr/lib/libcuda.so.1")
            .unwrap()
            .contains("nvidia-driver"));
    }

    #[test]
    fn architecture_mismatch_is_rejected_but_ir_runs_anywhere() {
        let (arm_img, abi) = mpi_image(Architecture::Arm64);
        let rt = ContainerRuntime::new(RuntimeKind::Docker, Architecture::Amd64);
        assert!(matches!(
            rt.prepare("job1", &arm_img, &abi, &[]),
            Err(RuntimeError::ArchitectureMismatch { .. })
        ));
        let (ir_img, abi) = mpi_image(Architecture::XirIr);
        assert!(rt.prepare("job2", &ir_img, &abi, &[]).is_ok());
    }

    #[test]
    fn environment_is_parsed_into_map() {
        let (img, abi) = mpi_image(Architecture::Amd64);
        let rt = ContainerRuntime::new(RuntimeKind::Podman, Architecture::Amd64);
        let prepared = rt.prepare("job1", &img, &abi, &[]).unwrap();
        assert_eq!(
            prepared.env.get("PATH").map(String::as_str),
            Some("/opt/app/bin")
        );
    }

    #[test]
    fn libfabric_and_bind_mount_hooks() {
        let (img, abi) = mpi_image(Architecture::Amd64);
        let rt = ContainerRuntime::new(RuntimeKind::Sarus, Architecture::Amd64);
        let hooks = vec![
            Hook::LibfabricReplacement {
                host: HostLibrary {
                    container_path: "/usr/lib/libfabric.so".into(),
                    implementation: "libfabric-cray".into(),
                    abi: "libfabric".into(),
                    version: "2.0".into(),
                },
                providers: vec!["cxi".into(), "tcp".into()],
            },
            Hook::BindMount {
                source: "/etc/slurm/slurm.conf".into(),
                destination: "/etc/slurm/slurm.conf".into(),
                content: "ClusterName=clariden".into(),
            },
        ];
        let prepared = rt.prepare("job1", &img, &abi, &hooks).unwrap();
        assert_eq!(prepared.applied_hooks.len(), 2);
        assert!(prepared
            .library_at("/usr/lib/libfabric.so")
            .unwrap()
            .contains("cxi"));
        assert!(prepared
            .library_at("/etc/slurm/slurm.conf")
            .unwrap()
            .contains("clariden"));
    }

    #[test]
    fn runtime_kind_properties() {
        assert!(RuntimeKind::Sarus.supports_mpi_hook());
        assert!(!RuntimeKind::Apptainer.supports_mpi_hook());
        assert!(RuntimeKind::Docker.preserves_oci_layers());
        assert!(!RuntimeKind::Sarus.preserves_oci_layers());
    }
}
