//! Fleet-specialization benchmark: cold per-system deployments vs the concurrent
//! `FleetSpecializer` over a shared content-addressed action cache, across the four
//! paper systems (Ault23, Ault25, Ault01-04, Clariden).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xaas::prelude::*;
use xaas_apps::gromacs;
use xaas_bench::fleet_specialization;
use xaas_buildsys::OptionAssignment;
use xaas_container::{ActionCache, ImageStore};
use xaas_hpcsim::SystemModel;

fn fleet_requests() -> Vec<FleetRequest> {
    [
        SystemModel::ault23(),
        SystemModel::ault25(),
        SystemModel::ault01_04(),
        SystemModel::clariden(),
    ]
    .into_iter()
    .map(|system| {
        let simd = system.cpu.best_simd();
        FleetRequest::new(
            system,
            OptionAssignment::new().with("GMX_SIMD", simd.gmx_name()),
            simd,
        )
    })
    .collect()
}

fn bench_fleet(c: &mut Criterion) {
    // The experiment JSON is the artifact the acceptance criteria ask for: action
    // counts and cache hit rates of cold vs fleet vs warm-rerun specialization.
    let experiment = fleet_specialization();
    println!(
        "{}",
        serde_json::to_string_pretty(&experiment).expect("fleet experiment serialises")
    );

    let project = gromacs::project();
    let store = ImageStore::new();
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"]).with_values(
        "GMX_SIMD",
        &["SSE4.1", "AVX2_256", "AVX_512", "ARM_NEON_ASIMD"],
    );
    let build = build_ir_container(&project, &pipeline, &store, "bench:fleet").unwrap();
    let requests = fleet_requests();

    let mut group = c.benchmark_group("fleet/specialization");
    group.bench_function("cold_independent_deployments", |b| {
        b.iter(|| {
            for request in &requests {
                black_box(
                    deploy_ir_container(
                        &build,
                        &project,
                        &request.system,
                        &request.selection,
                        request.simd,
                        &store,
                    )
                    .unwrap(),
                );
            }
        });
    });
    group.bench_function("fleet_shared_cache", |b| {
        b.iter(|| {
            let specializer = FleetSpecializer::new(ActionCache::new(store.clone()));
            black_box(specializer.specialize_fleet(&build, &project, &requests));
        });
    });
    // Steady state: the cache already holds every action of the fleet.
    let warm = FleetSpecializer::new(ActionCache::new(store.clone()));
    warm.specialize_fleet(&build, &project, &requests);
    group.bench_function("fleet_warm_cache", |b| {
        b.iter(|| black_box(warm.specialize_fleet(&build, &project, &requests)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet
}
criterion_main!(benches);
