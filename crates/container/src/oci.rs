//! OCI image-spec data model: media types, platforms, descriptors, annotations.
//!
//! The paper (Section 5.2) argues that source/IR formats should become an identifying
//! feature of the image — carried either in the platform `architecture`/`variant`/
//! `features` fields or in annotations — so that XaaS tools can query specialization
//! points *before* pulling the image. This module provides those structures.

use crate::digest::Digest;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Media types used by the substrate, mirroring the OCI image spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MediaType {
    /// `application/vnd.oci.image.index.v1+json`
    ImageIndex,
    /// `application/vnd.oci.image.manifest.v1+json`
    ImageManifest,
    /// `application/vnd.oci.image.config.v1+json`
    ImageConfig,
    /// `application/vnd.oci.image.layer.v1.tar`
    Layer,
    /// XaaS extension: a layer that stores intermediate representation bitcode.
    IrLayer,
    /// XaaS extension: a layer that stores application source and build instructions.
    SourceLayer,
}

impl MediaType {
    /// The wire string for this media type.
    pub fn as_str(&self) -> &'static str {
        match self {
            MediaType::ImageIndex => "application/vnd.oci.image.index.v1+json",
            MediaType::ImageManifest => "application/vnd.oci.image.manifest.v1+json",
            MediaType::ImageConfig => "application/vnd.oci.image.config.v1+json",
            MediaType::Layer => "application/vnd.oci.image.layer.v1.tar",
            MediaType::IrLayer => "application/vnd.xaas.image.layer.v1.ir",
            MediaType::SourceLayer => "application/vnd.xaas.image.layer.v1.source",
        }
    }
}

impl fmt::Display for MediaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// CPU architectures recognised by the image platform field.
///
/// The paper proposes extending the architecture list with IR formats (e.g. `llvm-ir`)
/// so registries can treat IR containers as first-class multi-arch variants; the XaaS
/// equivalent here is [`Architecture::XirIr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Architecture {
    /// 64-bit x86.
    Amd64,
    /// 64-bit ARM.
    Arm64,
    /// IBM POWER (little endian).
    Ppc64le,
    /// RISC-V 64-bit.
    Riscv64,
    /// XaaS extension: the image payload is architecture-independent XIR bitcode.
    XirIr,
}

impl Architecture {
    /// The wire string used in manifests.
    pub fn as_str(&self) -> &'static str {
        match self {
            Architecture::Amd64 => "amd64",
            Architecture::Arm64 => "arm64",
            Architecture::Ppc64le => "ppc64le",
            Architecture::Riscv64 => "riscv64",
            Architecture::XirIr => "xir-ir",
        }
    }

    /// Whether a binary built for `self` can run on hardware of `host` without translation.
    pub fn runs_on(&self, host: Architecture) -> bool {
        match self {
            Architecture::XirIr => true, // IR is lowered at deployment, so it "runs" anywhere.
            other => *other == host,
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Platform description attached to a manifest descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Platform {
    /// CPU architecture (or IR pseudo-architecture).
    pub architecture: Architecture,
    /// Operating system; the substrate only models Linux.
    pub os: String,
    /// Architecture variant (e.g. `v8` for arm64, or an IR dialect version).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub variant: Option<String>,
    /// Optional CPU/IR feature strings (the OCI spec reserves this field).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub features: Vec<String>,
}

impl Platform {
    /// A Linux platform for the given architecture.
    pub fn linux(architecture: Architecture) -> Self {
        Self {
            architecture,
            os: "linux".to_string(),
            variant: None,
            features: Vec::new(),
        }
    }

    /// Attach a variant.
    pub fn with_variant(mut self, variant: impl Into<String>) -> Self {
        self.variant = Some(variant.into());
        self
    }

    /// Attach a feature string (e.g. `avx512f` or `xir-v1`).
    pub fn with_feature(mut self, feature: impl Into<String>) -> Self {
        self.features.push(feature.into());
        self
    }
}

/// A content descriptor: media type + digest + size (+ optional platform and annotations).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Descriptor {
    /// Media type of the referenced blob.
    pub media_type: MediaType,
    /// Digest of the referenced blob.
    pub digest: Digest,
    /// Size in bytes of the referenced blob.
    pub size: u64,
    /// Platform, present on manifest descriptors inside an image index.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub platform: Option<Platform>,
    /// Arbitrary key/value annotations.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub annotations: BTreeMap<String, String>,
}

impl Descriptor {
    /// Build a descriptor for a blob.
    pub fn new(media_type: MediaType, digest: Digest, size: u64) -> Self {
        Self {
            media_type,
            digest,
            size,
            platform: None,
            annotations: BTreeMap::new(),
        }
    }

    /// Attach a platform.
    pub fn with_platform(mut self, platform: Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// Attach one annotation.
    pub fn with_annotation(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.annotations.insert(key.into(), value.into());
        self
    }
}

/// Well-known annotation keys used by the XaaS tooling.
pub mod annotation_keys {
    /// JSON document with the application's specialization points (Section 5.2 proposal).
    pub const SPECIALIZATION_POINTS: &str = "dev.xaas.specialization-points";
    /// The deployment format of the image: `binary`, `source`, or `ir`.
    pub const DEPLOYMENT_FORMAT: &str = "dev.xaas.deployment-format";
    /// IR dialect and version stored in an IR container (e.g. `xir.v1`).
    pub const IR_DIALECT: &str = "dev.xaas.ir-dialect";
    /// The configuration selected when a deployed image was produced.
    pub const SELECTED_CONFIGURATION: &str = "dev.xaas.selected-configuration";
    /// The system the deployed image was specialized for.
    pub const TARGET_SYSTEM: &str = "dev.xaas.target-system";
    /// OCI standard: image title.
    pub const TITLE: &str = "org.opencontainers.image.title";
    /// OCI standard: image revision (source commit).
    pub const REVISION: &str = "org.opencontainers.image.revision";
}

/// Deployment format recorded in [`annotation_keys::DEPLOYMENT_FORMAT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeploymentFormat {
    /// Conventional container: fully compiled binaries.
    Binary,
    /// XaaS source container: source + toolchain, build at deployment.
    Source,
    /// XaaS IR container: deduplicated IR, lowered at deployment.
    Ir,
}

impl DeploymentFormat {
    /// Wire string stored in annotations.
    pub fn as_str(&self) -> &'static str {
        match self {
            DeploymentFormat::Binary => "binary",
            DeploymentFormat::Source => "source",
            DeploymentFormat::Ir => "ir",
        }
    }

    /// Parse from the annotation value.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "binary" => Some(DeploymentFormat::Binary),
            "source" => Some(DeploymentFormat::Source),
            "ir" => Some(DeploymentFormat::Ir),
            _ => None,
        }
    }
}

impl fmt::Display for DeploymentFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_type_strings_are_stable() {
        assert_eq!(
            MediaType::ImageManifest.as_str(),
            "application/vnd.oci.image.manifest.v1+json"
        );
        assert_eq!(
            MediaType::IrLayer.as_str(),
            "application/vnd.xaas.image.layer.v1.ir"
        );
    }

    #[test]
    fn ir_architecture_runs_anywhere_binaries_do_not() {
        assert!(Architecture::XirIr.runs_on(Architecture::Amd64));
        assert!(Architecture::XirIr.runs_on(Architecture::Arm64));
        assert!(Architecture::Amd64.runs_on(Architecture::Amd64));
        assert!(!Architecture::Amd64.runs_on(Architecture::Arm64));
        assert!(!Architecture::Arm64.runs_on(Architecture::Amd64));
    }

    #[test]
    fn platform_builder_sets_fields() {
        let p = Platform::linux(Architecture::Arm64)
            .with_variant("v8")
            .with_feature("sve");
        assert_eq!(p.os, "linux");
        assert_eq!(p.variant.as_deref(), Some("v8"));
        assert_eq!(p.features, vec!["sve".to_string()]);
    }

    #[test]
    fn descriptor_annotations_roundtrip_through_json() {
        let d = Descriptor::new(MediaType::Layer, Digest::of_str("blob"), 4)
            .with_platform(Platform::linux(Architecture::Amd64))
            .with_annotation(
                annotation_keys::DEPLOYMENT_FORMAT,
                DeploymentFormat::Ir.as_str(),
            );
        let json = serde_json::to_string(&d).unwrap();
        let back: Descriptor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        assert_eq!(
            DeploymentFormat::parse(&back.annotations[annotation_keys::DEPLOYMENT_FORMAT]),
            Some(DeploymentFormat::Ir)
        );
    }

    #[test]
    fn deployment_format_parse_rejects_unknown() {
        assert_eq!(
            DeploymentFormat::parse("source"),
            Some(DeploymentFormat::Source)
        );
        assert_eq!(
            DeploymentFormat::parse("binary"),
            Some(DeploymentFormat::Binary)
        );
        assert_eq!(DeploymentFormat::parse("squashfs"), None);
    }
}
