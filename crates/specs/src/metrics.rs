//! Scoring of discovered specialization points against ground truth.
//!
//! Reproduces the evaluation protocol of Section 6.2: facts are matched per category on
//! normalised names, true/false positives and negatives are counted, and precision,
//! recall, and F1 are reported. The `normalize` switch reproduces the paper's
//! "Normalization improves performance" observation — minor discrepancies (inconsistent
//! hyphen/underscore, missing `-D` prefix, case) stop counting as errors.

use crate::model::{SpecCategory, SpecializationDocument};
use serde::{Deserialize, Serialize};

/// Classification counts and derived metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// True positives.
    pub true_positives: usize,
    /// False positives (predicted but not in the ground truth).
    pub false_positives: usize,
    /// False negatives (in the ground truth but missed).
    pub false_negatives: usize,
}

impl Metrics {
    /// Precision = TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 = harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merge counts from another metrics value.
    pub fn merge(&mut self, other: &Metrics) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }
}

/// Normalise a fact name: lowercase, unify separators, strip flag prefixes and values.
pub fn normalize_name(name: &str) -> String {
    let mut text = name.trim().to_ascii_lowercase();
    if let Some(stripped) = text.strip_prefix("-d") {
        text = stripped.to_string();
    }
    text.chars()
        .map(|c| {
            if c == '-' || c == ' ' || c == '.' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

/// Score a predicted document against the ground truth.
///
/// A predicted entry is a true positive when the truth contains an entry of the same
/// category whose (optionally normalised) name matches. With `normalize == false`, names
/// must match exactly (case-sensitive), which is how format drift turns into errors.
pub fn score(
    predicted: &SpecializationDocument,
    truth: &SpecializationDocument,
    normalize: bool,
) -> Metrics {
    let mut metrics = Metrics::default();
    let key = |category: SpecCategory, name: &str| -> (SpecCategory, String) {
        if normalize {
            (category, normalize_name(name))
        } else {
            (category, name.to_string())
        }
    };
    let truth_keys: Vec<(SpecCategory, String)> = truth
        .entries
        .iter()
        .map(|e| key(e.category, &e.name))
        .collect();
    let predicted_keys: Vec<(SpecCategory, String)> = predicted
        .entries
        .iter()
        .map(|e| key(e.category, &e.name))
        .collect();

    let mut matched_truth = vec![false; truth_keys.len()];
    for predicted_key in &predicted_keys {
        match truth_keys
            .iter()
            .enumerate()
            .position(|(i, k)| !matched_truth[i] && k == predicted_key)
        {
            Some(index) => {
                matched_truth[index] = true;
                metrics.true_positives += 1;
            }
            None => metrics.false_positives += 1,
        }
    }
    metrics.false_negatives = matched_truth.iter().filter(|m| !**m).count();
    metrics
}

/// Aggregate of repeated runs: min / median / max of a metric, as reported in Table 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MinMedMax {
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

/// Compute min/median/max of a sample.
pub fn min_med_max(values: &[f64]) -> MinMedMax {
    if values.is_empty() {
        return MinMedMax::default();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("metrics are finite"));
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    MinMedMax {
        min: sorted[0],
        median,
        max: *sorted.last().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SpecEntry;

    fn truth() -> SpecializationDocument {
        let mut doc = SpecializationDocument::new("app");
        doc.push(SpecEntry::new(SpecCategory::GpuBackend, "CUDA"));
        doc.push(SpecEntry::new(SpecCategory::GpuBackend, "SYCL"));
        doc.push(SpecEntry::new(SpecCategory::Vectorization, "AVX_512"));
        doc.push(SpecEntry::new(SpecCategory::Fft, "fftw3"));
        doc
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let metrics = score(&truth(), &truth(), false);
        assert_eq!(metrics.false_positives, 0);
        assert_eq!(metrics.false_negatives, 0);
        assert!((metrics.f1() - 1.0).abs() < 1e-12);
        assert!((metrics.precision() - 1.0).abs() < 1e-12);
        assert!((metrics.recall() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_and_extra_entries_reduce_scores() {
        let mut predicted = SpecializationDocument::new("app");
        predicted.push(SpecEntry::new(SpecCategory::GpuBackend, "CUDA"));
        predicted.push(SpecEntry::new(SpecCategory::GpuBackend, "HIP")); // hallucinated
        let metrics = score(&predicted, &truth(), false);
        assert_eq!(metrics.true_positives, 1);
        assert_eq!(metrics.false_positives, 1);
        assert_eq!(metrics.false_negatives, 3);
        assert!(metrics.precision() < 0.6);
        assert!(metrics.recall() < 0.3);
    }

    #[test]
    fn category_confusion_is_an_error_even_with_same_name() {
        let mut predicted = SpecializationDocument::new("app");
        // fftw3 classified as linear algebra: the "mixing FFT and linear algebra" failure.
        predicted.push(SpecEntry::new(SpecCategory::LinearAlgebra, "fftw3"));
        let metrics = score(&predicted, &truth(), true);
        assert_eq!(metrics.true_positives, 0);
        assert_eq!(metrics.false_positives, 1);
    }

    #[test]
    fn normalization_recovers_format_drift() {
        let mut predicted = SpecializationDocument::new("app");
        predicted.push(SpecEntry::new(SpecCategory::Vectorization, "avx-512"));
        predicted.push(SpecEntry::new(SpecCategory::GpuBackend, "cuda"));
        let strict = score(&predicted, &truth(), false);
        assert_eq!(strict.true_positives, 0);
        let normalized = score(&predicted, &truth(), true);
        assert_eq!(normalized.true_positives, 2);
        assert!(normalized.f1() > strict.f1());
    }

    #[test]
    fn normalize_name_rules() {
        assert_eq!(normalize_name("AVX-512"), "avx_512");
        assert_eq!(normalize_name("-DGMX_SIMD"), "gmx_simd");
        assert_eq!(normalize_name("SSE4.1"), "sse4_1");
        assert_eq!(normalize_name(" cuda "), "cuda");
    }

    #[test]
    fn min_med_max_summary() {
        let summary = min_med_max(&[0.9, 0.5, 0.7]);
        assert_eq!(summary.min, 0.5);
        assert_eq!(summary.median, 0.7);
        assert_eq!(summary.max, 0.9);
        let even = min_med_max(&[0.2, 0.4, 0.6, 0.8]);
        assert!((even.median - 0.5).abs() < 1e-12);
        assert_eq!(min_med_max(&[]), MinMedMax::default());
    }

    #[test]
    fn duplicate_predictions_count_as_false_positives() {
        let mut predicted = SpecializationDocument::new("app");
        predicted.push(SpecEntry::new(SpecCategory::GpuBackend, "CUDA"));
        predicted.push(SpecEntry::new(SpecCategory::GpuBackend, "CUDA"));
        let metrics = score(&predicted, &truth(), false);
        assert_eq!(metrics.true_positives, 1);
        assert_eq!(metrics.false_positives, 1);
    }

    #[test]
    fn metrics_merge_accumulates() {
        let mut a = Metrics {
            true_positives: 1,
            false_positives: 2,
            false_negatives: 3,
        };
        a.merge(&Metrics {
            true_positives: 4,
            false_positives: 1,
            false_negatives: 0,
        });
        assert_eq!(a.true_positives, 5);
        assert_eq!(a.false_positives, 3);
        assert_eq!(a.false_negatives, 3);
    }
}
