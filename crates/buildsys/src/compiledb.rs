//! Compile-command databases (the `compile_commands.json` analogue).
//!
//! The behavioural approach of Section 4.2 compares *compilation instructions per
//! target*, not build-system internals: two configurations whose commands for a target
//! are identical can share one IR file. This module provides the command representation
//! plus the normalisation used by that comparison (sorting flags, dropping build-directory
//! include paths, separating delayed ISA flags).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use xaas_xir::CompileFlags;

/// One compile command: produce `output` from `file` within `target`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileCommand {
    /// Build directory the command runs in.
    pub directory: String,
    /// Target (executable/library) the object belongs to.
    pub target: String,
    /// Source file path.
    pub file: String,
    /// Output object path.
    pub output: String,
    /// Compiler arguments (excluding the compiler executable itself).
    pub arguments: Vec<String>,
}

impl CompileCommand {
    /// The classified view of the arguments.
    pub fn flags(&self) -> CompileFlags {
        CompileFlags::parse(self.arguments.iter().cloned())
    }

    /// The canonical identity of this command for exact comparison: target-relevant
    /// arguments sorted, with the build directory path normalised away from includes.
    pub fn canonical_key(&self, strip_build_dir: bool) -> String {
        let mut args: Vec<String> = self
            .arguments
            .iter()
            .filter(|a| !a.trim().is_empty())
            .map(|a| {
                if strip_build_dir {
                    a.replace(&self.directory, "<build-dir>")
                } else {
                    a.clone()
                }
            })
            .collect();
        args.sort();
        format!("{}|{}", self.file, args.join(" "))
    }

    /// The identity used by the XaaS vectorisation stage: like [`Self::canonical_key`]
    /// but with delayed ISA flags removed (they are applied at deployment instead).
    pub fn target_independent_key(&self) -> String {
        let flags = self.flags();
        let mut args: Vec<String> = self
            .arguments
            .iter()
            .filter(|a| !flags.delayed_target_flags.contains(*a))
            .map(|a| a.replace(&self.directory, "<build-dir>"))
            .collect();
        args.sort();
        format!("{}|{}", self.file, args.join(" "))
    }
}

/// A database of compile commands produced by configuring one build configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileDatabase {
    /// Label of the configuration that produced this database.
    pub configuration: String,
    /// The commands.
    pub commands: Vec<CompileCommand>,
}

impl CompileDatabase {
    /// Number of translation units (one command each).
    pub fn translation_units(&self) -> usize {
        self.commands.len()
    }

    /// Commands belonging to one target.
    pub fn commands_for_target(&self, target: &str) -> Vec<&CompileCommand> {
        self.commands
            .iter()
            .filter(|c| c.target == target)
            .collect()
    }

    /// All distinct target names.
    pub fn targets(&self) -> Vec<String> {
        let set: BTreeSet<String> = self.commands.iter().map(|c| c.target.clone()).collect();
        set.into_iter().collect()
    }

    /// Serialise in a `compile_commands.json`-like format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.commands).expect("commands serialise")
    }
}

/// Statistics comparing the commands of two configurations (used to report the §6.4
/// percentages: how many targets have incompatible flags, how many differ only in CPU
/// tuning, …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatabaseComparison {
    /// Pairs of commands (matched by file+target) that are exactly identical.
    pub identical: usize,
    /// Pairs identical once build-directory paths are normalised.
    pub identical_after_normalization: usize,
    /// Pairs identical once delayed ISA flags are also removed.
    pub identical_after_vectorization_delay: usize,
    /// Pairs that still differ (different definitions or sources).
    pub different: usize,
    /// Files present in only one of the two databases.
    pub unmatched: usize,
}

/// Compare two databases command-by-command (matching on target + file).
pub fn compare(a: &CompileDatabase, b: &CompileDatabase) -> DatabaseComparison {
    let mut result = DatabaseComparison::default();
    let mut matched_b: BTreeSet<usize> = BTreeSet::new();
    for cmd_a in &a.commands {
        let Some((idx, cmd_b)) = b.commands.iter().enumerate().find(|(i, c)| {
            !matched_b.contains(i) && c.target == cmd_a.target && c.file == cmd_a.file
        }) else {
            result.unmatched += 1;
            continue;
        };
        matched_b.insert(idx);
        if cmd_a.canonical_key(false) == cmd_b.canonical_key(false) {
            result.identical += 1;
        } else if cmd_a.canonical_key(true) == cmd_b.canonical_key(true) {
            result.identical_after_normalization += 1;
        } else if cmd_a.target_independent_key() == cmd_b.target_independent_key() {
            result.identical_after_vectorization_delay += 1;
        } else {
            result.different += 1;
        }
    }
    result.unmatched += b.commands.len() - matched_b.len();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn command(dir: &str, file: &str, args: &[&str]) -> CompileCommand {
        CompileCommand {
            directory: dir.to_string(),
            target: "app".to_string(),
            file: file.to_string(),
            output: format!("{file}.o"),
            arguments: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn canonical_key_sorts_flags_and_strips_build_dir() {
        let a = command(
            "/build/cfg1",
            "a.ck",
            &["-O3", "-DGMX_MPI", "-I/build/cfg1/include"],
        );
        let b = command(
            "/build/cfg2",
            "a.ck",
            &["-DGMX_MPI", "-O3", "-I/build/cfg2/include"],
        );
        assert_ne!(a.canonical_key(false), b.canonical_key(false));
        assert_eq!(a.canonical_key(true), b.canonical_key(true));
    }

    #[test]
    fn target_independent_key_drops_isa_flags() {
        let avx = command("/b", "a.ck", &["-O3", "-mavx512f"]);
        let sse = command("/b", "a.ck", &["-O3", "-msse4.1"]);
        assert_ne!(avx.canonical_key(true), sse.canonical_key(true));
        assert_eq!(avx.target_independent_key(), sse.target_independent_key());
        // Definitions still matter.
        let with_def = command("/b", "a.ck", &["-O3", "-DGMX_GPU_CUDA", "-mavx512f"]);
        assert_ne!(
            avx.target_independent_key(),
            with_def.target_independent_key()
        );
    }

    #[test]
    fn database_queries() {
        let mut db = CompileDatabase {
            configuration: "default".into(),
            commands: vec![],
        };
        db.commands.push(command("/b", "a.ck", &["-O3"]));
        let mut second = command("/b", "b.ck", &["-O3"]);
        second.target = "lib".into();
        db.commands.push(second);
        assert_eq!(db.translation_units(), 2);
        assert_eq!(db.targets(), vec!["app".to_string(), "lib".to_string()]);
        assert_eq!(db.commands_for_target("app").len(), 1);
        assert!(db.to_json().contains("a.ck"));
    }

    #[test]
    fn compare_classifies_pairs() {
        let base = CompileDatabase {
            configuration: "a".into(),
            commands: vec![
                command("/build/a", "same.ck", &["-O3"]),
                command("/build/a", "dir.ck", &["-O3", "-I/build/a/inc"]),
                command("/build/a", "vec.ck", &["-O3", "-mavx512f"]),
                command("/build/a", "def.ck", &["-O3", "-DWITH_MPI"]),
                command("/build/a", "only_in_a.ck", &["-O3"]),
            ],
        };
        let other = CompileDatabase {
            configuration: "b".into(),
            commands: vec![
                command("/build/a", "same.ck", &["-O3"]),
                command("/build/b", "dir.ck", &["-O3", "-I/build/b/inc"]),
                command("/build/a", "vec.ck", &["-O3", "-msse2"]),
                command("/build/a", "def.ck", &["-O3"]),
            ],
        };
        let cmp = compare(&base, &other);
        assert_eq!(cmp.identical, 1);
        assert_eq!(cmp.identical_after_normalization, 1);
        assert_eq!(cmp.identical_after_vectorization_delay, 1);
        assert_eq!(cmp.different, 1);
        assert_eq!(cmp.unmatched, 1);
    }
}
