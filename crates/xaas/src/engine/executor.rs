//! The work-stealing executor: runs the ready frontier of an [`ActionGraph`] across
//! worker threads, routing keyed nodes through the engine's cache backend.
//!
//! Scheduling is classic work stealing: each worker owns a deque, finished nodes push
//! their newly-ready dependents onto the finishing worker's deque (LIFO for cache
//! locality), and idle workers steal from the back of their peers' deques. A failed
//! node does **not** cancel the run — independent subgraphs keep executing and only
//! the failed node's transitive dependents are skipped, which is what lets the fleet
//! specializer isolate one system's failure from the rest of the fleet.
//!
//! Results are assembled in node order, so everything observable from a run —
//! outputs, trace records, error attribution — is deterministic regardless of how
//! the workers interleaved.

use super::graph::{ActionFn, ActionGraph, ActionId, ActionInputs};
use super::trace::{ActionRecord, ActionTrace};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use xaas_container::{CacheBackend, ComputeFailed};

/// The terminal state of one node after a run.
#[derive(Debug)]
pub enum NodeOutcome<E> {
    /// The node completed (executed or cache-served) with these output bytes.
    Output(Arc<Vec<u8>>),
    /// The node's closure returned this error.
    Failed(E),
    /// The node was skipped because `root` (a transitive dependency) failed.
    Skipped {
        /// The failed ancestor that poisoned this node.
        root: ActionId,
    },
}

impl<E> NodeOutcome<E> {
    /// The output bytes, if the node completed.
    pub fn output(&self) -> Option<&[u8]> {
        match self {
            NodeOutcome::Output(bytes) => Some(bytes),
            _ => None,
        }
    }

    /// Whether the node completed successfully.
    pub fn is_ok(&self) -> bool {
        matches!(self, NodeOutcome::Output(_))
    }
}

/// The per-node output blobs of a completed run, in node order.
pub type ActionOutputs = Vec<Arc<Vec<u8>>>;

/// The result of running one [`ActionGraph`] through the engine.
#[derive(Debug)]
pub struct GraphRun<E> {
    /// Per-node outcomes, indexed by [`ActionId`].
    pub outcomes: Vec<NodeOutcome<E>>,
    /// Deterministic trace of the completed actions (node order).
    pub trace: ActionTrace,
}

impl<E> GraphRun<E> {
    /// Whether every node completed.
    pub fn succeeded(&self) -> bool {
        self.outcomes.iter().all(NodeOutcome::is_ok)
    }

    /// The output of one node, if it completed.
    pub fn output(&self, id: ActionId) -> Option<&[u8]> {
        self.outcomes.get(id).and_then(NodeOutcome::output)
    }

    /// All outputs in node order, or the first (lowest node id) error.
    pub fn into_outputs(self) -> Result<(ActionOutputs, ActionTrace), E> {
        let mut outputs = Vec::with_capacity(self.outcomes.len());
        for outcome in self.outcomes {
            match outcome {
                NodeOutcome::Output(bytes) => outputs.push(bytes),
                NodeOutcome::Failed(error) => return Err(error),
                NodeOutcome::Skipped { root } => {
                    // Dependencies precede dependents in node order, so a skip's root
                    // failure is normally returned above. Reaching this arm means a
                    // cache backend failed a keyed action without invoking its compute
                    // closure, breaking the CacheBackend contract.
                    panic!(
                        "action {root} was skipped without a preceding failure: \
                         the cache backend failed without running the action"
                    )
                }
            }
        }
        Ok((outputs, self.trace))
    }
}

enum Slot<E> {
    Pending,
    Output(Arc<Vec<u8>>),
    Failed(E),
    Skipped { root: ActionId },
}

struct NodeMeta {
    kind: super::trace::ActionKind,
    label: String,
    cache_key: Option<xaas_container::BuildKey>,
    deps: Vec<ActionId>,
}

struct ExecState<'env, E> {
    metas: Vec<NodeMeta>,
    tasks: Vec<Mutex<Option<ActionFn<'env, E>>>>,
    slots: Vec<Mutex<Slot<E>>>,
    records: Vec<Mutex<Option<ActionRecord>>>,
    dependents: Vec<Vec<ActionId>>,
    pending: Vec<AtomicUsize>,
    queues: Vec<Mutex<VecDeque<ActionId>>>,
    remaining: AtomicUsize,
    /// The first caught action panic; re-raised on the caller thread after the run
    /// completes, so a panicking action behaves like it would on a serial executor
    /// instead of hanging the worker pool.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    /// Idle workers park here instead of spinning; [`ExecState::schedule`] wakes one.
    idle: StdMutex<()>,
    wakeup: Condvar,
}

impl<'env, E> ExecState<'env, E> {
    fn pop_task(&self, me: usize) -> Option<ActionId> {
        if let Some(id) = self.queues[me].lock().pop_front() {
            return Some(id);
        }
        // Steal from the back of a peer's deque (oldest work first).
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(id) = self.queues[victim].lock().pop_back() {
                return Some(id);
            }
        }
        None
    }

    fn schedule(&self, me: usize, id: ActionId) {
        self.queues[me].lock().push_front(id);
        // Notify under the idle lock: a parking worker re-checks the queues after
        // acquiring it, so the notification can never land in the window between a
        // failed pop and the wait.
        let _guard = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        self.wakeup.notify_one();
    }

    /// Whether any queue currently holds a ready node.
    fn has_ready_work(&self) -> bool {
        self.queues.iter().any(|queue| !queue.lock().is_empty())
    }

    fn finish(&self, me: usize, id: ActionId, slot: Slot<E>, record: Option<ActionRecord>) {
        *self.slots[id].lock() = slot;
        if let Some(record) = record {
            *self.records[id].lock() = Some(record);
        }
        for &dependent in &self.dependents[id] {
            if self.pending[dependent].fetch_sub(1, Ordering::AcqRel) == 1 {
                self.schedule(me, dependent);
            }
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last node: release every parked worker so the pool can exit (notified
            // under the idle lock for the same no-lost-wakeup pairing as schedule()).
            let _guard = self.idle.lock().unwrap_or_else(|e| e.into_inner());
            self.wakeup.notify_all();
        }
    }

    /// Run one node's closure, converting a panic into a recorded payload (first
    /// panic wins). Returns `None` when the closure panicked.
    fn run_task(
        &self,
        task: ActionFn<'env, E>,
        inputs: &ActionInputs,
    ) -> Option<Result<Vec<u8>, E>> {
        match std::panic::catch_unwind(AssertUnwindSafe(|| task(inputs))) {
            Ok(result) => Some(result),
            Err(payload) => {
                let mut slot = self.panic_payload.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                None
            }
        }
    }
}

pub(crate) fn run_graph<'env, E: Send>(
    graph: ActionGraph<'env, E>,
    cache: &dyn CacheBackend,
    workers: usize,
) -> GraphRun<E> {
    let node_count = graph.nodes.len();
    let stage_depth = graph.depth();
    if node_count == 0 {
        return GraphRun {
            outcomes: Vec::new(),
            trace: ActionTrace::default(),
        };
    }

    let workers = workers.clamp(1, node_count.max(1));
    let mut metas = Vec::with_capacity(node_count);
    let mut tasks = Vec::with_capacity(node_count);
    let mut dependents: Vec<Vec<ActionId>> = vec![Vec::new(); node_count];
    let mut pending = Vec::with_capacity(node_count);
    for (id, node) in graph.nodes.into_iter().enumerate() {
        for &dep in &node.deps {
            dependents[dep].push(id);
        }
        pending.push(AtomicUsize::new(node.deps.len()));
        metas.push(NodeMeta {
            kind: node.kind,
            label: node.label,
            cache_key: node.cache_key,
            deps: node.deps,
        });
        tasks.push(Mutex::new(Some(node.run)));
    }

    let state = ExecState {
        metas,
        tasks,
        slots: (0..node_count).map(|_| Mutex::new(Slot::Pending)).collect(),
        records: (0..node_count).map(|_| Mutex::new(None)).collect(),
        dependents,
        pending,
        queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        remaining: AtomicUsize::new(node_count),
        panic_payload: Mutex::new(None),
        idle: StdMutex::new(()),
        wakeup: Condvar::new(),
    };
    // Seed the initial frontier round-robin across the workers.
    let mut seed_queue = 0;
    for id in 0..node_count {
        if state.pending[id].load(Ordering::Relaxed) == 0 {
            state.queues[seed_queue].lock().push_back(id);
            seed_queue = (seed_queue + 1) % workers;
        }
    }

    if workers == 1 {
        worker_loop(&state, cache, 0);
    } else {
        std::thread::scope(|scope| {
            for me in 0..workers {
                let state = &state;
                scope.spawn(move || worker_loop(state, cache, me));
            }
        });
    }

    let ExecState {
        slots,
        records,
        panic_payload,
        ..
    } = state;
    if let Some(payload) = panic_payload.into_inner() {
        // Re-raise the first action panic on the caller thread, as a serial
        // executor would have.
        std::panic::resume_unwind(payload);
    }
    let outcomes = slots
        .into_iter()
        .map(|slot| match slot.into_inner() {
            Slot::Output(bytes) => NodeOutcome::Output(bytes),
            Slot::Failed(error) => NodeOutcome::Failed(error),
            Slot::Skipped { root } => NodeOutcome::Skipped { root },
            Slot::Pending => unreachable!("executor drained every node"),
        })
        .collect();
    let trace = ActionTrace {
        records: records
            .into_iter()
            .filter_map(|record| record.into_inner())
            .collect(),
        stage_depth,
    };
    GraphRun { outcomes, trace }
}

fn worker_loop<E: Send>(state: &ExecState<'_, E>, cache: &dyn CacheBackend, me: usize) {
    loop {
        if state.remaining.load(Ordering::Acquire) == 0 {
            break;
        }
        match state.pop_task(me) {
            Some(id) => execute_node(state, cache, me, id),
            None => {
                // Nothing runnable right now: another worker holds the frontier.
                // Park until new work is scheduled. Re-checking readiness under the
                // idle lock pairs with schedule() notifying under it, so wakeups are
                // not lost; the timeout is only a backstop.
                let guard = state.idle.lock().unwrap_or_else(|e| e.into_inner());
                if state.remaining.load(Ordering::Acquire) != 0 && !state.has_ready_work() {
                    let _ = state
                        .wakeup
                        .wait_timeout(guard, std::time::Duration::from_millis(10));
                }
            }
        }
    }
}

fn execute_node<E: Send>(
    state: &ExecState<'_, E>,
    cache: &dyn CacheBackend,
    me: usize,
    id: ActionId,
) {
    let meta = &state.metas[id];
    // Gather dependency outputs; a poisoned dependency skips this node.
    let mut inputs = Vec::with_capacity(meta.deps.len());
    let mut poisoned: Option<ActionId> = None;
    for &dep in &meta.deps {
        match &*state.slots[dep].lock() {
            Slot::Output(bytes) => inputs.push(bytes.clone()),
            Slot::Failed(_) => {
                poisoned = Some(dep);
                break;
            }
            Slot::Skipped { root } => {
                poisoned = Some(*root);
                break;
            }
            Slot::Pending => unreachable!("node scheduled before dependency finished"),
        }
    }
    if let Some(root) = poisoned {
        state.finish(me, id, Slot::Skipped { root }, None);
        return;
    }

    let task = state.tasks[id]
        .lock()
        .take()
        .expect("every node executes exactly once");
    let inputs = ActionInputs::new(inputs);
    let record = |cached: bool| ActionRecord {
        kind: meta.kind,
        label: meta.label.clone(),
        key_digest: meta
            .cache_key
            .as_ref()
            .map(|k| k.digest().hex().to_string()),
        cached,
    };

    let (slot, completed) = match &meta.cache_key {
        Some(key) => {
            let mut task = Some(task);
            let mut captured: Option<E> = None;
            let result = cache.get_or_compute_action(key, &mut || {
                // At most one node per key per graph (the ActionGraph contract), so
                // the closure runs at most once even under single-flight coalescing.
                match task.take() {
                    Some(task) => match state.run_task(task, &inputs) {
                        Some(Ok(bytes)) => Ok(bytes),
                        Some(Err(error)) => {
                            captured = Some(error);
                            Err(ComputeFailed)
                        }
                        // Panicked: the payload is recorded, re-raised after the run.
                        None => Err(ComputeFailed),
                    },
                    None => Err(ComputeFailed),
                }
            });
            match result {
                Ok((bytes, hit)) => (Slot::Output(Arc::new(bytes)), Some(record(hit))),
                Err(ComputeFailed) => match captured {
                    Some(error) => (Slot::Failed(error), None),
                    // The action panicked, or the backend failed without running
                    // it; the node poisons its dependents with itself as the root.
                    None => (Slot::Skipped { root: id }, None),
                },
            }
        }
        None => match state.run_task(task, &inputs) {
            Some(Ok(bytes)) => (Slot::Output(Arc::new(bytes)), Some(record(false))),
            Some(Err(error)) => (Slot::Failed(error), None),
            None => (Slot::Skipped { root: id }, None),
        },
    };
    state.finish(me, id, slot, completed);
}
