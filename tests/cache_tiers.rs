//! Persistent tiered action cache, end to end: an orchestrator whose cache
//! stack persists through an on-disk CAS tier (and optionally a simulated
//! remote) survives being killed and recreated — the warm restart replays the
//! same work byte-identically with zero compile/lower actions re-executed,
//! every keyed action read through the disk tier and visible as such in the
//! [`ActionTrace`]. Store-level GC reclaims orphans without invalidating live
//! cache entries, and the service builder threads a disk byte budget through
//! [`ServiceLimits`].

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use xaas::prelude::*;
use xaas::service::{OrchestratorService, ServiceLimits};
use xaas_buildsys::OptionAssignment;
use xaas_container::{CacheTier, RemoteCache, RemoteModel, TierConfig};
use xaas_hpcsim::SystemModel;

/// A unique scratch directory under the OS temp dir (pid + counter keep
/// concurrent test processes and threads apart; no `tempfile` dependency).
/// Removed on drop.
struct ScratchRoot(PathBuf);

impl ScratchRoot {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self(
            std::env::temp_dir().join(format!("xaas-cache-tiers-{tag}-{}-{n}", std::process::id())),
        )
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for ScratchRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn gromacs_sweep() -> (xaas_buildsys::ProjectSpec, IrPipelineConfig) {
    let project = xaas_apps::gromacs::project();
    let config = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"]).with_values(
        "GMX_SIMD",
        &["SSE4.1", "AVX2_256", "AVX_512", "ARM_NEON_ASIMD"],
    );
    (project, config)
}

fn target_for(system: SystemModel) -> FleetTarget {
    let simd = system.cpu.best_simd();
    FleetTarget::new(
        system,
        OptionAssignment::new().with("GMX_SIMD", simd.gmx_name()),
        simd,
    )
}

/// One full orchestrator session over `config`: IR build + fleet wave. Returns
/// the per-target images, the fleet report, and the orchestrator (so callers
/// can read tier stats before killing it).
fn session(config: TierConfig, systems: &[SystemModel]) -> (Orchestrator, Vec<Image>, FleetReport) {
    let (project, pipeline) = gromacs_sweep();
    let orch = Orchestrator::builder()
        .workers(4)
        .cache_tiers(config)
        .expect("tier stack initializes")
        .build();
    let build = IrBuildRequest::new(&project, &pipeline)
        .reference("tiers:gromacs:ir")
        .submit(&orch)
        .expect("IR container builds");
    let report = FleetRequest::new(&build, &project)
        .targets(systems.iter().cloned().map(target_for))
        .submit(&orch);
    assert!(report.all_succeeded(), "fleet succeeds");
    let images = report.deployments().map(|d| d.image.clone()).collect();
    (orch, images, report)
}

#[test]
fn warm_restart_replays_the_fleet_from_the_disk_tier() {
    let root = ScratchRoot::new("warm-restart");
    let systems = [SystemModel::ault23(), SystemModel::clariden()];

    let (cold_orch, cold_images, _) = session(TierConfig::new().disk_root(root.path()), &systems);
    let cold_stats = cold_orch.cache_stats();
    assert!(cold_stats.misses > 0, "cold session computes actions");
    let disk = cold_orch
        .tiered_cache()
        .expect("tiered backend exposed")
        .disk_stats()
        .expect("disk tier configured");
    assert!(disk.entries > 0, "disk tier persisted the outputs");

    // Kill the orchestrator: the L1 and its store die; only the disk survives.
    drop(cold_orch);

    let (warm_orch, warm_images, warm_report) =
        session(TierConfig::new().disk_root(root.path()), &systems);
    let warm_stats = warm_orch.cache_stats();
    assert_eq!(cold_images, warm_images, "byte-identical after restart");
    assert_eq!(warm_stats.misses, 0, "zero compile actions re-executed");
    assert!(warm_stats.disk_hits > 0, "hits served by the disk tier");
    assert_eq!(
        warm_stats.promotions, warm_stats.disk_hits,
        "every disk hit promoted into memory exactly once"
    );
    // Per-tier attribution is visible in the trace, not just the counters.
    assert!(
        warm_report
            .trace
            .records
            .iter()
            .any(|r| r.hit_tier == Some(CacheTier::Disk)),
        "trace records carry the disk tier"
    );
    // And the per-request delta derived from that trace agrees.
    assert_eq!(warm_report.cache.misses, 0);
    assert!(warm_report.cache.disk_hits > 0);
}

#[test]
fn remote_tier_shares_outputs_across_disjoint_disk_roots() {
    let root_a = ScratchRoot::new("builder-a");
    let root_b = ScratchRoot::new("builder-b");
    let remote = RemoteCache::new(RemoteModel::default());
    let systems = [SystemModel::ault23()];

    // Builder A computes everything and write-through publishes to the remote.
    let (orch_a, images_a, _) = session(
        TierConfig::new()
            .disk_root(root_a.path())
            .remote(remote.clone()),
        &systems,
    );
    assert!(remote.stats().objects > 0, "write-through published upward");
    drop(orch_a);

    // Builder B has a different (empty) disk root but shares the remote: its
    // misses read through the remote, land on its own disk, and promote into
    // memory.
    let (orch_b, images_b, report_b) = session(
        TierConfig::new()
            .disk_root(root_b.path())
            .remote(remote.clone()),
        &systems,
    );
    let stats_b = orch_b.cache_stats();
    assert_eq!(images_a, images_b, "byte-identical across builders");
    assert_eq!(stats_b.misses, 0, "builder B recomputes nothing");
    assert!(stats_b.remote_hits > 0, "hits served by the remote tier");
    assert!(
        report_b
            .trace
            .records
            .iter()
            .any(|r| r.hit_tier == Some(CacheTier::Remote)),
        "trace records carry the remote tier"
    );
    let disk_b = orch_b
        .tiered_cache()
        .expect("tiered backend")
        .disk_stats()
        .expect("disk tier");
    assert!(
        disk_b.entries > 0,
        "remote hits were promoted through builder B's disk tier"
    );
    assert!(
        remote.stats().simulated_micros > 0,
        "remote transfers accrue modeled wire time"
    );
}

#[test]
fn store_gc_reclaims_orphans_but_keeps_the_warm_path_intact() {
    let root = ScratchRoot::new("gc");
    let systems = [SystemModel::ault23()];
    let (orch, images, _) = session(TierConfig::new().disk_root(root.path()), &systems);

    // Plant an unreachable blob in the store — an orphan only the sweep can
    // reclaim (no tag, no manifest, not an indexed cache output).
    let store = orch.store();
    let orphan = store.put_blob(b"orphaned intermediate".to_vec());
    assert!(store.has_blob(&orphan));

    let report = orch
        .tiered_cache()
        .expect("tiered backend")
        .collect_garbage();
    assert!(report.store.blobs_removed > 0, "orphan blobs reclaimed");
    assert!(!store.has_blob(&orphan), "the planted orphan is gone");
    assert!(report.disk_entries > 0, "disk tier untouched by store GC");

    // The live cache outputs were pinned: a warm rerun still serves every
    // keyed action from cache and reproduces the same images.
    let (project, pipeline) = gromacs_sweep();
    let build = IrBuildRequest::new(&project, &pipeline)
        .reference("tiers:gromacs:ir")
        .submit(&orch)
        .expect("IR container rebuilds");
    let rerun = FleetRequest::new(&build, &project)
        .targets(systems.iter().cloned().map(target_for))
        .submit(&orch);
    assert!(rerun.all_succeeded());
    assert_eq!(rerun.cache.misses, 0, "GC never invalidated a live entry");
    let rerun_images: Vec<Image> = rerun.deployments().map(|d| d.image.clone()).collect();
    assert_eq!(images, rerun_images, "byte-identical after the sweep");
}

#[test]
fn service_limits_cap_the_disk_tier_budget() {
    let root = ScratchRoot::new("svc-cap");
    // A tiny byte budget forces the disk tier to evict; the stack still works.
    let service = OrchestratorService::builder()
        .workers(2)
        .cache_tiers(TierConfig::new().disk_root(root.path()))
        .limits(ServiceLimits::default().disk_cache_bytes(256))
        .try_build()
        .expect("tier stack initializes");
    let (project, pipeline) = gromacs_sweep();
    let build = service
        .session("tenant")
        .submit(IrBuildRequest::new(&project, &pipeline).reference("cap:ir"))
        .expect("build succeeds under a capped disk tier");
    assert!(!build.image.layers.is_empty());
    let disk = service
        .orchestrator()
        .tiered_cache()
        .expect("tiered backend")
        .disk_stats()
        .expect("disk tier");
    assert!(
        disk.bytes <= 256 || disk.entries == 1,
        "budget respected up to the single-entry floor (bytes={}, entries={})",
        disk.bytes,
        disk.entries
    );
    assert!(disk.evictions > 0, "the tiny budget forced evictions");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Crash-restart property: for any subset of the paper's fleet systems, a
    /// cold session followed by a kill + warm restart over the same disk root
    /// is byte-identical and recomputes nothing.
    #[test]
    fn crash_restart_is_byte_identical_with_zero_recomputes(
        mask in 1usize..16,
    ) {
        let all = [
            SystemModel::ault23(),
            SystemModel::ault25(),
            SystemModel::ault01_04(),
            SystemModel::clariden(),
        ];
        let systems: Vec<SystemModel> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, s)| s.clone())
            .collect();
        let root = ScratchRoot::new("prop-restart");

        let (cold_orch, cold_images, _) =
            session(TierConfig::new().disk_root(root.path()), &systems);
        prop_assert!(cold_orch.cache_stats().misses > 0);
        drop(cold_orch);

        let (warm_orch, warm_images, _) =
            session(TierConfig::new().disk_root(root.path()), &systems);
        let warm = warm_orch.cache_stats();
        prop_assert_eq!(cold_images, warm_images);
        prop_assert_eq!(warm.misses, 0);
        prop_assert!(warm.disk_hits > 0);
    }
}
