//! Whole-system models: the three evaluation systems of Section 6.1 (CSCS Ault nodes,
//! Alps Clariden, ALCF Aurora), their module environments, container runtimes, and
//! operator-recommended base images.

use crate::cpu::CpuModel;
use crate::gpu::{GpuBackend, GpuModel, Version};
use crate::network::Provider;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Container runtime deployed on a system (names mirror `xaas_container::RuntimeKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContainerRuntimeFlavor {
    /// Docker (local development machines).
    Docker,
    /// Sarus (CSCS Ault).
    Sarus,
    /// Podman (Alps Clariden).
    Podman,
    /// Apptainer (Aurora).
    Apptainer,
}

impl ContainerRuntimeFlavor {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ContainerRuntimeFlavor::Docker => "Docker",
            ContainerRuntimeFlavor::Sarus => "Sarus",
            ContainerRuntimeFlavor::Podman => "Podman",
            ContainerRuntimeFlavor::Apptainer => "Apptainer",
        }
    }

    /// Whether containerized MPI works on this runtime as deployed in the paper
    /// (Apptainer on Aurora did not function with MPI, Section 6.5).
    pub fn mpi_functional(&self) -> bool {
        !matches!(self, ContainerRuntimeFlavor::Apptainer)
    }
}

impl fmt::Display for ContainerRuntimeFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Kind of a software module provided by the system's module environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleKind {
    /// A compiler toolchain (GCC, oneAPI, Cray CE).
    Compiler,
    /// An MPI implementation.
    Mpi,
    /// A BLAS/LAPACK implementation.
    Blas,
    /// An FFT library.
    Fft,
    /// A GPU runtime (CUDA, ROCm, Level Zero).
    GpuRuntime,
    /// Anything else (Python, cmake, …).
    Other,
}

/// One module available through `module load`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoftwareModule {
    /// Module name, e.g. `intel-oneapi-mkl`.
    pub name: String,
    /// Version string.
    pub version: String,
    /// Kind.
    pub kind: ModuleKind,
    /// ABI family where relevant (MPI modules: `mpich` / `openmpi`).
    pub abi: Option<String>,
}

impl SoftwareModule {
    /// Convenience constructor.
    pub fn new(name: &str, version: &str, kind: ModuleKind) -> Self {
        Self {
            name: name.into(),
            version: version.into(),
            kind,
            abi: None,
        }
    }

    /// Attach an ABI family.
    pub fn with_abi(mut self, abi: &str) -> Self {
        self.abi = Some(abi.into());
        self
    }
}

/// A complete system model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemModel {
    /// System name as used in the paper (Ault23, Ault25, Clariden, Aurora, …).
    pub name: String,
    /// Host CPU.
    pub cpu: CpuModel,
    /// GPUs per node (empty for CPU-only partitions).
    pub gpus: Vec<GpuModel>,
    /// GPU runtime version installed on the host (CUDA / ROCm / Level Zero).
    pub gpu_runtime_version: Option<Version>,
    /// High-speed network provider.
    pub network_provider: Provider,
    /// Container runtime available to users.
    pub container_runtime: ContainerRuntimeFlavor,
    /// Whether container images can be built on the system itself (Clariden can, the
    /// others require an external build machine — Section 6.1).
    pub supports_container_build: bool,
    /// Modules available in the environment.
    pub modules: Vec<SoftwareModule>,
    /// Operator-recommended base image for specialized builds (e.g. oneAPI on Aurora).
    pub recommended_base_image: Option<String>,
}

impl SystemModel {
    /// Whether the system has at least one GPU supporting `backend`.
    pub fn has_gpu_backend(&self, backend: GpuBackend) -> bool {
        self.gpus.iter().any(|g| g.supports_backend(backend))
    }

    /// The primary GPU, if any.
    pub fn primary_gpu(&self) -> Option<&GpuModel> {
        self.gpus.first()
    }

    /// Find a module by kind.
    pub fn module_of_kind(&self, kind: ModuleKind) -> Option<&SoftwareModule> {
        self.modules.iter().find(|m| m.kind == kind)
    }

    /// All modules of a kind.
    pub fn modules_of_kind(&self, kind: ModuleKind) -> Vec<&SoftwareModule> {
        self.modules.iter().filter(|m| m.kind == kind).collect()
    }

    /// Whether a vendor BLAS (MKL) is present in the module environment.
    pub fn has_vendor_blas(&self) -> bool {
        self.modules
            .iter()
            .any(|m| m.kind == ModuleKind::Blas && m.name.to_ascii_lowercase().contains("mkl"))
    }

    /// Ault23: Intel Xeon Gold 6130 + NVIDIA V100, Sarus (Section 6.1).
    pub fn ault23() -> Self {
        Self {
            name: "Ault23".into(),
            cpu: CpuModel::intel_xeon_gold_6130(),
            gpus: vec![GpuModel::nvidia_v100()],
            gpu_runtime_version: Some(Version::new(12, 1)),
            network_provider: Provider::Verbs,
            container_runtime: ContainerRuntimeFlavor::Sarus,
            supports_container_build: false,
            modules: vec![
                SoftwareModule::new("gcc", "11.4", ModuleKind::Compiler),
                SoftwareModule::new("cuda", "12.1", ModuleKind::GpuRuntime),
                SoftwareModule::new("intel-oneapi-mkl", "2024.0", ModuleKind::Blas),
                SoftwareModule::new("openmpi", "4.1.6", ModuleKind::Mpi).with_abi("openmpi"),
                SoftwareModule::new("fftw", "3.3.10", ModuleKind::Fft),
            ],
            recommended_base_image: None,
        }
    }

    /// Ault25: AMD EPYC 7742 + NVIDIA A100, Sarus.
    pub fn ault25() -> Self {
        Self {
            name: "Ault25".into(),
            cpu: CpuModel::amd_epyc_7742(),
            gpus: vec![GpuModel::nvidia_a100()],
            gpu_runtime_version: Some(Version::new(12, 1)),
            network_provider: Provider::Verbs,
            container_runtime: ContainerRuntimeFlavor::Sarus,
            supports_container_build: false,
            modules: vec![
                SoftwareModule::new("gcc", "11.4", ModuleKind::Compiler),
                SoftwareModule::new("cuda", "12.1", ModuleKind::GpuRuntime),
                SoftwareModule::new("openblas", "0.3.26", ModuleKind::Blas),
                SoftwareModule::new("openmpi", "4.1.6", ModuleKind::Mpi).with_abi("openmpi"),
                SoftwareModule::new("fftw", "3.3.10", ModuleKind::Fft),
            ],
            recommended_base_image: None,
        }
    }

    /// Ault01-04: CPU-only Intel Xeon Gold 6154 nodes used for the IR container CPU sweep.
    pub fn ault01_04() -> Self {
        Self {
            name: "Ault01-04".into(),
            cpu: CpuModel::intel_xeon_gold_6154(),
            gpus: Vec::new(),
            gpu_runtime_version: None,
            network_provider: Provider::Verbs,
            container_runtime: ContainerRuntimeFlavor::Sarus,
            supports_container_build: false,
            modules: vec![
                SoftwareModule::new("gcc", "11.4", ModuleKind::Compiler),
                SoftwareModule::new("intel-oneapi-mkl", "2024.0", ModuleKind::Blas),
                SoftwareModule::new("fftw", "3.3.10", ModuleKind::Fft),
            ],
            recommended_base_image: None,
        }
    }

    /// Alps Clariden: GH200 superchip, Slingshot (cxi), Podman; builds on compute nodes.
    pub fn clariden() -> Self {
        Self {
            name: "Clariden".into(),
            cpu: CpuModel::nvidia_grace(),
            gpus: vec![GpuModel::nvidia_gh200()],
            gpu_runtime_version: Some(Version::new(12, 8)),
            network_provider: Provider::Cxi,
            container_runtime: ContainerRuntimeFlavor::Podman,
            supports_container_build: true,
            modules: vec![
                SoftwareModule::new("gcc", "12.3", ModuleKind::Compiler),
                SoftwareModule::new("cuda", "12.8", ModuleKind::GpuRuntime),
                SoftwareModule::new("cray-mpich", "8.1.29", ModuleKind::Mpi).with_abi("mpich"),
                SoftwareModule::new("openblas", "0.3.26", ModuleKind::Blas),
                SoftwareModule::new("fftw", "3.3.10", ModuleKind::Fft),
            ],
            recommended_base_image: None,
        }
    }

    /// ALCF Aurora: Intel Xeon CPU Max + Intel Data Center GPU Max, Apptainer; oneAPI
    /// image recommended by operators.
    pub fn aurora() -> Self {
        Self {
            name: "Aurora".into(),
            cpu: CpuModel::intel_xeon_max(),
            gpus: vec![GpuModel::intel_max_1550()],
            gpu_runtime_version: Some(Version::new(1, 3)),
            network_provider: Provider::Cxi,
            container_runtime: ContainerRuntimeFlavor::Apptainer,
            supports_container_build: false,
            modules: vec![
                SoftwareModule::new("oneapi", "2025.0", ModuleKind::Compiler),
                SoftwareModule::new("intel-oneapi-mkl", "2025.0", ModuleKind::Blas),
                SoftwareModule::new("level-zero", "1.3", ModuleKind::GpuRuntime),
                SoftwareModule::new("mpich", "4.2", ModuleKind::Mpi).with_abi("mpich"),
            ],
            recommended_base_image: Some("intel/oneapi-hpckit:2025.0".into()),
        }
    }

    /// A local x86 development machine with Docker (used to build images for systems
    /// that cannot build containers themselves).
    pub fn local_dev_machine() -> Self {
        Self {
            name: "LocalDev".into(),
            cpu: CpuModel::intel_xeon_gold_6130(),
            gpus: Vec::new(),
            gpu_runtime_version: None,
            network_provider: Provider::Tcp,
            container_runtime: ContainerRuntimeFlavor::Docker,
            supports_container_build: true,
            modules: vec![SoftwareModule::new("gcc", "11.4", ModuleKind::Compiler)],
            recommended_base_image: None,
        }
    }

    /// All evaluation systems of the paper.
    pub fn all_evaluation_systems() -> Vec<SystemModel> {
        vec![
            Self::ault23(),
            Self::ault25(),
            Self::ault01_04(),
            Self::clariden(),
            Self::aurora(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::SimdLevel;

    #[test]
    fn evaluation_systems_match_section_6_1() {
        let systems = SystemModel::all_evaluation_systems();
        assert_eq!(systems.len(), 5);
        let ault23 = SystemModel::ault23();
        assert_eq!(ault23.cpu.name, "Intel Xeon Gold 6130");
        assert_eq!(ault23.primary_gpu().unwrap().name, "NVIDIA V100");
        assert_eq!(ault23.container_runtime, ContainerRuntimeFlavor::Sarus);

        let clariden = SystemModel::clariden();
        assert!(clariden.supports_container_build);
        assert_eq!(clariden.network_provider, Provider::Cxi);
        assert_eq!(clariden.container_runtime, ContainerRuntimeFlavor::Podman);

        let aurora = SystemModel::aurora();
        assert_eq!(aurora.container_runtime, ContainerRuntimeFlavor::Apptainer);
        assert!(aurora
            .recommended_base_image
            .as_deref()
            .unwrap()
            .contains("oneapi"));
        assert!(!aurora.container_runtime.mpi_functional());
    }

    #[test]
    fn gpu_backend_availability_per_system() {
        assert!(SystemModel::ault23().has_gpu_backend(GpuBackend::Cuda));
        assert!(!SystemModel::ault23().has_gpu_backend(GpuBackend::Hip));
        assert!(SystemModel::aurora().has_gpu_backend(GpuBackend::Sycl));
        assert!(!SystemModel::aurora().has_gpu_backend(GpuBackend::Cuda));
        assert!(!SystemModel::ault01_04().has_gpu_backend(GpuBackend::Cuda));
    }

    #[test]
    fn module_lookup() {
        let ault23 = SystemModel::ault23();
        assert!(ault23.has_vendor_blas());
        assert!(!SystemModel::ault25().has_vendor_blas());
        let mpi = ault23.module_of_kind(ModuleKind::Mpi).unwrap();
        assert_eq!(mpi.abi.as_deref(), Some("openmpi"));
        assert_eq!(ault23.modules_of_kind(ModuleKind::Compiler).len(), 1);
    }

    #[test]
    fn cpu_capabilities_per_system() {
        assert!(SystemModel::ault23().cpu.supports(SimdLevel::Avx512));
        assert!(!SystemModel::ault25().cpu.supports(SimdLevel::Avx512));
        assert!(SystemModel::clariden().cpu.supports(SimdLevel::NeonAsimd));
    }

    #[test]
    fn only_clariden_and_dev_build_containers_locally() {
        assert!(SystemModel::clariden().supports_container_build);
        assert!(SystemModel::local_dev_machine().supports_container_build);
        assert!(!SystemModel::ault23().supports_container_build);
        assert!(!SystemModel::aurora().supports_container_build);
    }

    #[test]
    fn systems_serialize_to_json() {
        let json = serde_json::to_string(&SystemModel::clariden()).unwrap();
        let back: SystemModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, SystemModel::clariden());
    }
}
