//! Minimal, offline, API-compatible subset of `serde` sufficient for this workspace.
//!
//! The build environment has no route to a crates registry, so the real `serde`
//! cannot be fetched. This shim keeps the public surface the workspace uses —
//! `Serialize`/`Deserialize` traits with derive macros of the same names and the
//! `#[serde(...)]` field attributes that appear in the codebase (`default`,
//! `skip_serializing_if`, `transparent`) — but collapses serde's format-generic
//! architecture to a single self-describing data model: [`Value`], a JSON tree.
//!
//! `serde_json` (also vendored) layers text parsing/printing and the `json!`
//! macro on top of this crate's `Value`.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;
pub use value::{Map, Number, Value};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// Serialization/deserialization error: a message, as in `serde_json::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub(crate) String);

impl Error {
    /// Construct an error from a message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be represented as a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the serde data model.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from the serde data model.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent entirely.
    ///
    /// `None` means "absence is an error" (the default); `Option<T>` overrides
    /// this to `Some(None)`, matching serde's treatment of optional fields.
    #[doc(hidden)]
    fn missing() -> Option<Self> {
        None
    }
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!(
        "invalid type: expected {expected}, found {}",
        got.kind()
    )))
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}
macro_rules! ser_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
    )*};
}
ser_int!(i8 i16 i32 i64 isize);
ser_uint!(u8 u16 u32 u64 usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Render a serialized key as a JSON object key, the way `serde_json` does for
/// string and integer map keys.
fn key_string(value: Value) -> String {
    match value {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key does not serialize to a string: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                // Range-checked, as in real serde: out-of-range numbers are
                // errors, never silent wraps. Floats funnel through i128 (the
                // cast saturates, so out-of-range values fail `try_from`).
                let out_of_range =
                    |v: &dyn fmt::Display| Error(format!("integer `{v}` out of range"));
                match value {
                    Value::Number(Number::Int(v)) => {
                        <$t>::try_from(*v).map_err(|_| out_of_range(v))
                    }
                    Value::Number(Number::UInt(v)) => {
                        <$t>::try_from(*v).map_err(|_| out_of_range(v))
                    }
                    Value::Number(Number::Float(v)) if v.fract() == 0.0 => {
                        <$t>::try_from(*v as i128).map_err(|_| out_of_range(v))
                    }
                    // Integer map keys arrive as strings, as in serde_json.
                    Value::String(s) => s
                        .parse::<$t>()
                        .map_err(|e| Error(format!("invalid integer key: {e}"))),
                    other => type_error("integer", other),
                }
            }
        }
    )*};
}
de_int!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

macro_rules! de_float {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    other => type_error("number", other),
                }
            }
        }
    )*};
}
de_float!(f32 f64);

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}
impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_error("single-character string", other),
        }
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}
impl Deserialize for &'static str {
    /// Real serde can borrow `&'de str` from its input; this shim deserializes
    /// owned trees, so `&'static str` is produced by leaking the string. Only
    /// round-trip tests deserialize such values, so the leak is bounded.
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => type_error("string", other),
        }
    }
}
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
    fn missing() -> Option<Self> {
        Some(None)
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(VecDeque::from)
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}
impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}
impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:expr => $($n:tt $t:ident),+))+) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => type_error("tuple array", other),
                }
            }
        }
    )+};
}
de_tuple! {
    (1 => 0 A)
    (2 => 0 A, 1 B)
    (3 => 0 A, 1 B, 2 C)
    (4 => 0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------------
// Support for derive-generated code
// ---------------------------------------------------------------------------

/// Helpers called from `serde_derive`-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Map, Value};

    /// Fetch and deserialize a struct field, honouring `Option`-style absence.
    pub fn field<T: Deserialize>(object: &Map, key: &str) -> Result<T, Error> {
        match object.get(key) {
            Some(value) => {
                T::from_value(value).map_err(|e| Error(format!("field `{key}`: {}", e.0)))
            }
            None => T::missing().ok_or_else(|| Error(format!("missing field `{key}`"))),
        }
    }

    /// Fetch and deserialize a `#[serde(default)]` struct field.
    pub fn field_default<T: Deserialize + Default>(object: &Map, key: &str) -> Result<T, Error> {
        match object.get(key) {
            Some(value) => {
                T::from_value(value).map_err(|e| Error(format!("field `{key}`: {}", e.0)))
            }
            None => Ok(T::default()),
        }
    }

    /// The object backing an externally-tagged enum variant: `{"Variant": ...}`.
    pub fn variant(value: &Value) -> Result<(&str, &Value), Error> {
        match value {
            Value::Object(entries) if entries.len() == 1 => {
                let (k, v) = entries.iter().next().unwrap();
                Ok((k.as_str(), v))
            }
            other => Err(Error(format!(
                "invalid type: expected single-key variant object, found {}",
                other.kind()
            ))),
        }
    }
}
