//! Rule-based specialization extraction.
//!
//! Two extraction paths exist:
//!
//! * [`from_project`] reads the authoritative [`ProjectSpec`] options — this is the
//!   *ground truth* used to score LLM outputs (the paper's manually curated reference);
//! * [`from_script`] parses the build-script text with heuristics — the deterministic
//!   baseline a careful human (or a simple tool) could produce without an LLM.

use crate::model::{SpecCategory, SpecEntry, SpecializationDocument};
use xaas_buildsys::{
    BuildOption, BuildScript, OptionCategory, OptionKind, ProjectSpec, ScriptItem,
};

/// Map a build-option category to a spec category.
fn map_category(category: OptionCategory) -> SpecCategory {
    match category {
        OptionCategory::GpuBackend => SpecCategory::GpuBackend,
        OptionCategory::Parallelism => SpecCategory::Parallelism,
        OptionCategory::Vectorization => SpecCategory::Vectorization,
        OptionCategory::LinearAlgebra => SpecCategory::LinearAlgebra,
        OptionCategory::Fft => SpecCategory::Fft,
        OptionCategory::Network => SpecCategory::OtherLibrary,
        OptionCategory::Other => SpecCategory::Optimization,
    }
}

/// Guess the category of an option from its name (the heuristic used on raw scripts).
pub fn guess_category(name: &str) -> SpecCategory {
    let upper = name.to_ascii_uppercase();
    if upper.contains("SIMD") || upper.contains("VECTOR") || upper.contains("AVX") {
        SpecCategory::Vectorization
    } else if upper.contains("GPU")
        || upper.contains("CUDA")
        || upper.contains("HIP")
        || upper.contains("SYCL")
    {
        SpecCategory::GpuBackend
    } else if upper.contains("MPI")
        || upper.contains("OPENMP")
        || upper.contains("THREAD")
        || upper.contains("PTHREAD")
    {
        SpecCategory::Parallelism
    } else if upper.contains("FFT") {
        SpecCategory::Fft
    } else if upper.contains("BLAS")
        || upper.contains("LAPACK")
        || upper.contains("MKL")
        || upper.starts_with("BLA")
    {
        SpecCategory::LinearAlgebra
    } else if upper.contains("QUANT") || upper.contains("TUNE") || upper.contains("OPT") {
        SpecCategory::Optimization
    } else {
        SpecCategory::OtherLibrary
    }
}

/// Produce the ground-truth document from a project's option definitions.
pub fn from_project(project: &ProjectSpec) -> SpecializationDocument {
    let mut doc = SpecializationDocument::new(project.name.clone());
    doc.build_system = "cmake".into();
    for option in &project.options {
        append_option(&mut doc, option);
    }
    doc.gpu_build = doc
        .entries_of(SpecCategory::GpuBackend)
        .iter()
        .any(|e| !e.name.eq_ignore_ascii_case("OFF"));
    if doc.gpu_build {
        doc.gpu_build_flag = project
            .options
            .iter()
            .find(|o| o.category == OptionCategory::GpuBackend)
            .map(|o| format!("-D{}", o.name));
    }
    doc
}

fn append_option(doc: &mut SpecializationDocument, option: &BuildOption) {
    let category = map_category(option.category);
    match &option.kind {
        OptionKind::Bool { default, .. } => {
            let mut entry = SpecEntry::new(category, short_name(&option.name))
                .with_flag(format!("-D{}=ON", option.name));
            entry.default = *default;
            doc.push(entry);
        }
        OptionKind::Choice { values, default } => {
            for value in values {
                if value.name.eq_ignore_ascii_case("OFF") || value.name.eq_ignore_ascii_case("AUTO")
                {
                    continue;
                }
                let mut entry = SpecEntry::new(category, value.name.clone())
                    .with_flag(format!("-D{}={}", option.name, value.name));
                entry.default = value.name.eq_ignore_ascii_case(default);
                doc.push(entry);
            }
        }
    }
}

/// Derive a human-readable short name from an option name: `GMX_MPI` → `MPI`.
fn short_name(option_name: &str) -> String {
    option_name
        .rsplit('_')
        .next()
        .filter(|s| !s.is_empty())
        .unwrap_or(option_name)
        .to_string()
}

/// Extract specialization points from a parsed build script (heuristic path).
pub fn from_script(application: &str, script: &BuildScript) -> SpecializationDocument {
    let mut doc = SpecializationDocument::new(application);
    doc.build_system = "cmake".into();
    for item in &script.items {
        match item {
            ScriptItem::BoolOption { name, default, .. } => {
                let category = guess_category(name);
                let mut entry =
                    SpecEntry::new(category, short_name(name)).with_flag(format!("-D{name}=ON"));
                entry.default = *default;
                doc.push(entry);
            }
            ScriptItem::ChoiceOption {
                name,
                default,
                values,
                ..
            } => {
                let category = guess_category(name);
                for value in values {
                    if value.eq_ignore_ascii_case("OFF") || value.eq_ignore_ascii_case("AUTO") {
                        continue;
                    }
                    let mut entry = SpecEntry::new(category, value.clone())
                        .with_flag(format!("-D{name}={value}"));
                    entry.default = value.eq_ignore_ascii_case(default);
                    doc.push(entry);
                }
                if category == SpecCategory::GpuBackend {
                    doc.gpu_build = true;
                    doc.gpu_build_flag = Some(format!("-D{name}"));
                }
            }
            ScriptItem::FindPackage {
                name, min_version, ..
            } => {
                let category = guess_category(name);
                if matches!(
                    category,
                    SpecCategory::Fft | SpecCategory::LinearAlgebra | SpecCategory::OtherLibrary
                ) {
                    let mut entry = SpecEntry::new(category, name.clone());
                    entry.minimum_version = min_version.clone();
                    // Avoid duplicating entries already contributed by a multichoice option.
                    if doc.find(category, name).is_none() {
                        doc.push(entry);
                    }
                }
            }
            ScriptItem::InternalBuild { name, flag } => {
                doc.push(
                    SpecEntry::new(SpecCategory::InternalBuild, name.clone())
                        .with_flag(flag.clone()),
                );
            }
            _ => {}
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use xaas_buildsys::{parse_script, OptionValue};

    #[test]
    fn category_guessing() {
        assert_eq!(guess_category("GMX_SIMD"), SpecCategory::Vectorization);
        assert_eq!(guess_category("GMX_GPU"), SpecCategory::GpuBackend);
        assert_eq!(guess_category("USE_MPI"), SpecCategory::Parallelism);
        assert_eq!(guess_category("GMX_FFT_LIBRARY"), SpecCategory::Fft);
        assert_eq!(guess_category("BLA_VENDOR"), SpecCategory::LinearAlgebra);
        assert_eq!(
            guess_category("LLAMA_QUANT_BITS"),
            SpecCategory::Optimization
        );
        assert_eq!(guess_category("ATLAS"), SpecCategory::OtherLibrary);
    }

    #[test]
    fn from_project_reflects_options() {
        let project = ProjectSpec {
            name: "demo".into(),
            version: "1".into(),
            build_script: String::new(),
            options: vec![
                BuildOption::boolean(
                    "USE_MPI",
                    "MPI",
                    OptionCategory::Parallelism,
                    false,
                    Default::default(),
                ),
                BuildOption::choice(
                    "GMX_GPU",
                    "GPU",
                    OptionCategory::GpuBackend,
                    vec![
                        OptionValue::plain("OFF"),
                        OptionValue::plain("CUDA"),
                        OptionValue::plain("SYCL"),
                    ],
                    "OFF",
                ),
            ],
            sources: vec![],
            headers: Default::default(),
            targets: vec![],
            custom_targets: vec![],
            global_flags: vec![],
            mpi_abi: None,
        };
        let doc = from_project(&project);
        assert!(doc.gpu_build);
        assert_eq!(doc.entries_of(SpecCategory::GpuBackend).len(), 2);
        assert!(doc.find(SpecCategory::Parallelism, "MPI").is_some());
        assert_eq!(
            doc.find(SpecCategory::GpuBackend, "CUDA")
                .unwrap()
                .build_flag
                .as_deref(),
            Some("-DGMX_GPU=CUDA")
        );
    }

    #[test]
    fn from_script_extracts_options_and_packages() {
        let script = parse_script(
            r#"
project(demo)
option(USE_MPI "MPI" OFF)
option_multichoice(GMX_SIMD "SIMD" AUTO None SSE2 AVX_512)
option_multichoice(GMX_GPU "GPU" OFF CUDA SYCL)
find_package(FFTW3 3.3 REQUIRED)
internal_build(fftpack -DGMX_BUILD_OWN_FFTW)
"#,
        )
        .unwrap();
        let doc = from_script("demo", &script);
        assert!(doc.find(SpecCategory::Parallelism, "MPI").is_some());
        // AUTO is filtered out; None, SSE2 and AVX_512 remain.
        assert_eq!(doc.entries_of(SpecCategory::Vectorization).len(), 3);
        assert_eq!(doc.entries_of(SpecCategory::GpuBackend).len(), 2);
        assert!(doc.gpu_build);
        let fftw = doc.find(SpecCategory::Fft, "FFTW3").unwrap();
        assert_eq!(fftw.minimum_version.as_deref(), Some("3.3"));
        assert!(doc.find(SpecCategory::InternalBuild, "fftpack").is_some());
    }

    #[test]
    fn short_names_strip_prefixes() {
        assert_eq!(short_name("GMX_MPI"), "MPI");
        assert_eq!(short_name("USE_OPENMP"), "OPENMP");
        assert_eq!(short_name("MPI"), "MPI");
    }
}
