//! Lowering from the CK AST to XIR.
//!
//! The front-end decides here how pragmas are honoured: with `-fopenmp` enabled,
//! `#pragma omp parallel for` marks loops as thread-parallel; without it the pragma is
//! ignored (the code compiles either way, which is exactly why the XaaS OpenMP-detection
//! stage can drop the flag when a file contains no OpenMP constructs).

use crate::ast::{BinOp, Expr, Function, LValue, Stmt, TranslationUnit, Type};
use crate::ir::{IrFunction, IrModule, IrOp, ModuleMetadata, Operand};
use std::fmt;

/// Options controlling AST → IR lowering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LowerOptions {
    /// Honour OpenMP pragmas (`-fopenmp`).
    pub openmp: bool,
    /// Metadata to attach to the module.
    pub metadata: ModuleMetadata,
}

/// Lowering errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant payload fields are documented by the Display impl
pub enum LowerError {
    /// A `for` loop had a step that is not `var = var + <const>`.
    UnsupportedLoopStep { function: String, variable: String },
    /// A `for` loop condition is not a `<` or `<=` comparison against the loop variable.
    UnsupportedLoopCondition { function: String, variable: String },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnsupportedLoopStep { function, variable } => {
                write!(
                    f,
                    "in {function}: loop over {variable} must step by a positive constant"
                )
            }
            LowerError::UnsupportedLoopCondition { function, variable } => {
                write!(
                    f,
                    "in {function}: loop over {variable} must use a `<` or `<=` bound"
                )
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Lower a translation unit to an IR module.
pub fn lower(unit: &TranslationUnit, options: &LowerOptions) -> Result<IrModule, LowerError> {
    let mut functions = Vec::with_capacity(unit.functions.len());
    for function in &unit.functions {
        functions.push(lower_function(function, options)?);
    }
    let mut metadata = options.metadata.clone();
    metadata.openmp = options.openmp;
    Ok(IrModule {
        name: unit.file.clone(),
        source_file: unit.file.clone(),
        functions,
        metadata,
        digest_memo: crate::memo::DigestCell::new(),
    })
}

struct FnLowerer {
    temp_counter: usize,
    function_name: String,
    openmp: bool,
}

impl FnLowerer {
    fn fresh(&mut self) -> String {
        let name = format!("t{}", self.temp_counter);
        self.temp_counter += 1;
        name
    }
}

fn lower_function(function: &Function, options: &LowerOptions) -> Result<IrFunction, LowerError> {
    let mut lowerer = FnLowerer {
        temp_counter: 0,
        function_name: function.name.clone(),
        openmp: options.openmp,
    };
    let body = lower_block(&function.body, &mut lowerer)?;
    Ok(IrFunction {
        name: function.name.clone(),
        is_kernel: function.is_kernel,
        return_type: function.return_type,
        params: function
            .params
            .iter()
            .map(|p| (p.name.clone(), p.ty))
            .collect(),
        body,
    })
}

fn lower_block(stmts: &[Stmt], lowerer: &mut FnLowerer) -> Result<Vec<IrOp>, LowerError> {
    let mut ops = Vec::new();
    for stmt in stmts {
        lower_stmt(stmt, lowerer, &mut ops)?;
    }
    Ok(ops)
}

fn lower_stmt(stmt: &Stmt, lowerer: &mut FnLowerer, ops: &mut Vec<IrOp>) -> Result<(), LowerError> {
    match stmt {
        Stmt::Decl { name, init, ty } => {
            let value = match init {
                Some(expr) => lower_expr(expr, lowerer, ops),
                None => {
                    if matches!(ty, Type::Float) {
                        Operand::ImmFloat(0.0)
                    } else {
                        Operand::ImmInt(0)
                    }
                }
            };
            ops.push(IrOp::Move {
                dest: name.clone(),
                src: value,
            });
        }
        Stmt::Assign { target, value } => {
            let value_op = lower_expr(value, lowerer, ops);
            match target {
                LValue::Var(name) => ops.push(IrOp::Move {
                    dest: name.clone(),
                    src: value_op,
                }),
                LValue::Index { base, index } => {
                    let index_op = lower_expr(index, lowerer, ops);
                    ops.push(IrOp::Store {
                        base: base.clone(),
                        index: index_op,
                        value: value_op,
                    });
                }
            }
        }
        Stmt::For {
            var,
            init,
            cond,
            step,
            body,
            pragmas,
        } => {
            let start = lower_expr(init, lowerer, ops);
            let (end, inclusive) =
                extract_bound(cond, var).ok_or_else(|| LowerError::UnsupportedLoopCondition {
                    function: lowerer.function_name.clone(),
                    variable: var.clone(),
                })?;
            let end_op = {
                let bound = lower_expr(&end, lowerer, ops);
                if inclusive {
                    // Convert `<=` into an exclusive bound by adding one.
                    let dest = lowerer.fresh();
                    ops.push(IrOp::Bin {
                        dest: dest.clone(),
                        op: BinOp::Add,
                        lhs: bound,
                        rhs: Operand::ImmInt(1),
                    });
                    Operand::Reg(dest)
                } else {
                    bound
                }
            };
            let step_value =
                extract_step(step, var).ok_or_else(|| LowerError::UnsupportedLoopStep {
                    function: lowerer.function_name.clone(),
                    variable: var.clone(),
                })?;
            let parallel = lowerer.openmp
                && pragmas
                    .iter()
                    .any(|p| p.contains("omp") && p.contains("parallel"));
            let simd_hint = pragmas
                .iter()
                .any(|p| p.contains("omp") && p.contains("simd"));
            let body_ops = lower_block(body, lowerer)?;
            ops.push(IrOp::Loop {
                var: var.clone(),
                start,
                end: end_op,
                step: step_value,
                parallel,
                simd_hint,
                vector_width: None,
                prevectorization_blocked: false,
                body: body_ops,
            });
        }
        Stmt::While { cond, body } => {
            let mut cond_ops = Vec::new();
            let cond_operand = lower_expr(cond, lowerer, &mut cond_ops);
            let cond_reg = match cond_operand {
                Operand::Reg(name) => name,
                imm => {
                    let dest = lowerer.fresh();
                    cond_ops.push(IrOp::Move {
                        dest: dest.clone(),
                        src: imm,
                    });
                    dest
                }
            };
            let body_ops = lower_block(body, lowerer)?;
            ops.push(IrOp::While {
                cond_ops,
                cond: cond_reg,
                body: body_ops,
            });
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let cond_operand = lower_expr(cond, lowerer, ops);
            let cond_reg = match cond_operand {
                Operand::Reg(name) => name,
                imm => {
                    let dest = lowerer.fresh();
                    ops.push(IrOp::Move {
                        dest: dest.clone(),
                        src: imm,
                    });
                    dest
                }
            };
            let then_ops = lower_block(then_body, lowerer)?;
            let else_ops = lower_block(else_body, lowerer)?;
            ops.push(IrOp::If {
                cond: cond_reg,
                then_body: then_ops,
                else_body: else_ops,
            });
        }
        Stmt::Return(value) => {
            let operand = value.as_ref().map(|expr| lower_expr(expr, lowerer, ops));
            ops.push(IrOp::Return { value: operand });
        }
        Stmt::ExprStmt(expr) => {
            if let Expr::Call { callee, args } = expr {
                let arg_ops: Vec<Operand> =
                    args.iter().map(|a| lower_expr(a, lowerer, ops)).collect();
                ops.push(IrOp::Call {
                    dest: None,
                    callee: callee.clone(),
                    args: arg_ops,
                });
            } else {
                let _ = lower_expr(expr, lowerer, ops);
            }
        }
    }
    Ok(())
}

fn lower_expr(expr: &Expr, lowerer: &mut FnLowerer, ops: &mut Vec<IrOp>) -> Operand {
    match expr {
        Expr::IntLit(v) => Operand::ImmInt(*v),
        Expr::FloatLit(v) => Operand::ImmFloat(*v),
        Expr::Var(name) => Operand::Reg(name.clone()),
        Expr::Index { base, index } => {
            let index_op = lower_expr(index, lowerer, ops);
            let dest = lowerer.fresh();
            ops.push(IrOp::Load {
                dest: dest.clone(),
                base: base.clone(),
                index: index_op,
            });
            Operand::Reg(dest)
        }
        Expr::Binary { op, lhs, rhs } => {
            let lhs_op = lower_expr(lhs, lowerer, ops);
            let rhs_op = lower_expr(rhs, lowerer, ops);
            let dest = lowerer.fresh();
            ops.push(IrOp::Bin {
                dest: dest.clone(),
                op: *op,
                lhs: lhs_op,
                rhs: rhs_op,
            });
            Operand::Reg(dest)
        }
        Expr::Unary { not, operand } => {
            let inner = lower_expr(operand, lowerer, ops);
            let dest = lowerer.fresh();
            ops.push(IrOp::Un {
                dest: dest.clone(),
                not: *not,
                operand: inner,
            });
            Operand::Reg(dest)
        }
        Expr::Call { callee, args } => {
            let arg_ops: Vec<Operand> = args.iter().map(|a| lower_expr(a, lowerer, ops)).collect();
            let dest = lowerer.fresh();
            ops.push(IrOp::Call {
                dest: Some(dest.clone()),
                callee: callee.clone(),
                args: arg_ops,
            });
            Operand::Reg(dest)
        }
    }
}

/// Extract the loop bound from a condition of the form `var < bound` or `var <= bound`.
/// Returns the bound expression and whether the comparison was inclusive.
fn extract_bound(cond: &Expr, var: &str) -> Option<(Expr, bool)> {
    if let Expr::Binary { op, lhs, rhs } = cond {
        if let Expr::Var(name) = lhs.as_ref() {
            if name == var {
                return match op {
                    BinOp::Lt => Some(((**rhs).clone(), false)),
                    BinOp::Le => Some(((**rhs).clone(), true)),
                    _ => None,
                };
            }
        }
    }
    None
}

/// Extract the constant step from `var = var + <const>` (or `<const> + var`).
fn extract_step(step: &Expr, var: &str) -> Option<i64> {
    if let Expr::Binary {
        op: BinOp::Add,
        lhs,
        rhs,
    } = step
    {
        let step_value = match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Var(name), Expr::IntLit(v)) if name == var => Some(*v),
            (Expr::IntLit(v), Expr::Var(name)) if name == var => Some(*v),
            _ => None,
        }?;
        if step_value > 0 {
            return Some(step_value);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const AXPY: &str = r#"
kernel void axpy(float* y, float* x, float a, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i = i + 1) {
        y[i] = y[i] + a * x[i];
    }
}
"#;

    #[test]
    fn lowers_axpy_to_a_counted_loop() {
        let unit = parse("axpy.ck", AXPY).unwrap();
        let module = lower(
            &unit,
            &LowerOptions {
                openmp: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(module.loop_count(), 1);
        let f = module.function("axpy").unwrap();
        let IrOp::Loop {
            parallel,
            step,
            body,
            ..
        } = &f.body[0]
        else {
            panic!("expected loop")
        };
        assert!(*parallel);
        assert_eq!(*step, 1);
        assert!(body.iter().any(|op| matches!(op, IrOp::Store { .. })));
    }

    #[test]
    fn openmp_disabled_ignores_parallel_pragma() {
        let unit = parse("axpy.ck", AXPY).unwrap();
        let module = lower(
            &unit,
            &LowerOptions {
                openmp: false,
                ..Default::default()
            },
        )
        .unwrap();
        let f = module.function("axpy").unwrap();
        let IrOp::Loop { parallel, .. } = &f.body[0] else {
            panic!()
        };
        assert!(!parallel);
        assert!(!module.metadata.openmp);
    }

    #[test]
    fn inclusive_bound_becomes_exclusive_plus_one() {
        let src =
            "kernel void f(float* x, int n) { for (int i = 0; i <= n; i = i + 1) { x[i] = 0.0; } }";
        let unit = parse("f.ck", src).unwrap();
        let module = lower(&unit, &LowerOptions::default()).unwrap();
        let f = module.function("f").unwrap();
        // The bound add becomes an explicit Bin op preceding the loop.
        assert!(f
            .body
            .iter()
            .any(|op| matches!(op, IrOp::Bin { op: BinOp::Add, .. })));
    }

    #[test]
    fn non_canonical_loops_are_rejected() {
        let bad_step =
            "kernel void f(float* x, int n) { for (int i = 0; i < n; i = i * 2) { x[i] = 0.0; } }";
        let unit = parse("f.ck", bad_step).unwrap();
        assert!(matches!(
            lower(&unit, &LowerOptions::default()),
            Err(LowerError::UnsupportedLoopStep { .. })
        ));
        let bad_cond =
            "kernel void f(float* x, int n) { for (int i = 0; i > n; i = i + 1) { x[i] = 0.0; } }";
        let unit = parse("f.ck", bad_cond).unwrap();
        assert!(matches!(
            lower(&unit, &LowerOptions::default()),
            Err(LowerError::UnsupportedLoopCondition { .. })
        ));
    }

    #[test]
    fn while_if_return_and_calls_lower() {
        let src = r#"
float reduce(float* x, int n) {
    float acc = 0.0;
    int i = 0;
    while (i < n) {
        if (x[i] > 0.0) {
            acc = acc + x[i];
        } else {
            acc = acc - x[i];
        }
        i = i + 1;
    }
    log_value(acc);
    return acc;
}
"#;
        let unit = parse("r.ck", src).unwrap();
        let module = lower(&unit, &LowerOptions::default()).unwrap();
        let f = module.function("reduce").unwrap();
        assert!(f.body.iter().any(|op| matches!(op, IrOp::While { .. })));
        assert!(f
            .body
            .iter()
            .any(|op| matches!(op, IrOp::Call { dest: None, .. })));
        assert!(matches!(
            f.body.last(),
            Some(IrOp::Return { value: Some(_) })
        ));
        assert_eq!(f.callees(), vec!["log_value".to_string()]);
    }

    #[test]
    fn simd_pragma_sets_hint_without_openmp_flag() {
        let src = r#"
kernel void scale(float* x, float a, int n) {
    #pragma omp simd
    for (int i = 0; i < n; i = i + 1) { x[i] = a * x[i]; }
}
"#;
        let unit = parse("s.ck", src).unwrap();
        let module = lower(
            &unit,
            &LowerOptions {
                openmp: false,
                ..Default::default()
            },
        )
        .unwrap();
        let IrOp::Loop {
            simd_hint,
            parallel,
            ..
        } = &module.function("scale").unwrap().body[0]
        else {
            panic!()
        };
        assert!(*simd_hint);
        assert!(!parallel);
    }
}
