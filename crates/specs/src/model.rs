//! The specialization-point document: the JSON interchange format of Figure 4(a) and
//! Appendix B.
//!
//! Internally the document is a flat list of [`SpecEntry`] facts (category + name +
//! build flag + metadata), which makes precision/recall scoring straightforward; the
//! Appendix-B-shaped JSON rendering groups entries by category.

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Categories of specialization points (the top-level keys of the Appendix B schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpecCategory {
    /// GPU build switch / GPU backends.
    GpuBackend,
    /// Parallel programming libraries (MPI, OpenMP, thread-MPI, pthreads).
    Parallelism,
    /// SIMD vectorization levels.
    Vectorization,
    /// Linear algebra libraries.
    LinearAlgebra,
    /// FFT libraries.
    Fft,
    /// Other external libraries.
    OtherLibrary,
    /// Supported compilers.
    Compiler,
    /// Supported architectures.
    Architecture,
    /// Optimisation-related build flags.
    Optimization,
    /// Build system type/version.
    BuildSystem,
    /// Libraries the project can build internally.
    InternalBuild,
}

impl SpecCategory {
    /// The JSON key used in the Appendix B schema.
    pub fn json_key(&self) -> &'static str {
        match self {
            SpecCategory::GpuBackend => "gpu_backends",
            SpecCategory::Parallelism => "parallel_programming_libraries",
            SpecCategory::Vectorization => "simd_vectorization",
            SpecCategory::LinearAlgebra => "linear_algebra_libraries",
            SpecCategory::Fft => "FFT_libraries",
            SpecCategory::OtherLibrary => "other_external_libraries",
            SpecCategory::Compiler => "compilers",
            SpecCategory::Architecture => "architectures",
            SpecCategory::Optimization => "optimization_build_flags",
            SpecCategory::BuildSystem => "build_system",
            SpecCategory::InternalBuild => "internal_build",
        }
    }

    /// All categories.
    pub fn all() -> &'static [SpecCategory] {
        &[
            SpecCategory::GpuBackend,
            SpecCategory::Parallelism,
            SpecCategory::Vectorization,
            SpecCategory::LinearAlgebra,
            SpecCategory::Fft,
            SpecCategory::OtherLibrary,
            SpecCategory::Compiler,
            SpecCategory::Architecture,
            SpecCategory::Optimization,
            SpecCategory::BuildSystem,
            SpecCategory::InternalBuild,
        ]
    }
}

impl fmt::Display for SpecCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.json_key())
    }
}

/// One specialization-point fact.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpecEntry {
    /// Category.
    pub category: SpecCategory,
    /// Name of the option value / backend / library (e.g. `CUDA`, `AVX_512`, `mkl`).
    pub name: String,
    /// The build flag enabling it (e.g. `-DGMX_GPU=CUDA`), if any.
    pub build_flag: Option<String>,
    /// Whether this is the default choice.
    pub default: bool,
    /// Minimum version, if the build system states one.
    pub minimum_version: Option<String>,
}

impl SpecEntry {
    /// Create an entry.
    pub fn new(category: SpecCategory, name: impl Into<String>) -> Self {
        Self {
            category,
            name: name.into(),
            build_flag: None,
            default: false,
            minimum_version: None,
        }
    }

    /// Builder: set the build flag.
    pub fn with_flag(mut self, flag: impl Into<String>) -> Self {
        self.build_flag = Some(flag.into());
        self
    }

    /// Builder: mark as default.
    pub fn as_default(mut self) -> Self {
        self.default = true;
        self
    }

    /// Builder: set minimum version.
    pub fn with_min_version(mut self, version: impl Into<String>) -> Self {
        self.minimum_version = Some(version.into());
        self
    }
}

/// A specialization-point document: the output of discovery for one application.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecializationDocument {
    /// The application the document describes.
    pub application: String,
    /// Whether the build system supports GPU builds at all.
    pub gpu_build: bool,
    /// The flag controlling the GPU build switch.
    pub gpu_build_flag: Option<String>,
    /// The build system type (`cmake`, `make`, `undetermined`).
    pub build_system: String,
    /// Minimum build-system version, if stated.
    pub build_system_min_version: Option<String>,
    /// The individual specialization facts.
    pub entries: Vec<SpecEntry>,
}

impl SpecializationDocument {
    /// Create an empty document for an application.
    pub fn new(application: impl Into<String>) -> Self {
        Self {
            application: application.into(),
            build_system: "cmake".into(),
            ..Default::default()
        }
    }

    /// Add an entry.
    pub fn push(&mut self, entry: SpecEntry) -> &mut Self {
        self.entries.push(entry);
        self
    }

    /// All entries of a category.
    pub fn entries_of(&self, category: SpecCategory) -> Vec<&SpecEntry> {
        self.entries
            .iter()
            .filter(|e| e.category == category)
            .collect()
    }

    /// Find an entry by category and (case-insensitive) name.
    pub fn find(&self, category: SpecCategory, name: &str) -> Option<&SpecEntry> {
        self.entries
            .iter()
            .find(|e| e.category == category && e.name.eq_ignore_ascii_case(name))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render the Appendix-B-shaped JSON document.
    pub fn to_schema_json(&self) -> Value {
        let mut root = serde_json::Map::new();
        root.insert(
            "gpu_build".into(),
            json!({ "value": self.gpu_build, "build_flag": self.gpu_build_flag }),
        );
        root.insert(
            "build_system".into(),
            json!({ "type": self.build_system, "minimum_version": self.build_system_min_version }),
        );
        for category in SpecCategory::all() {
            if *category == SpecCategory::BuildSystem {
                // The build system is rendered as the top-level `build_system` object above.
                continue;
            }
            let entries = self.entries_of(*category);
            match category {
                SpecCategory::Architecture | SpecCategory::Optimization => {
                    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
                    root.insert(category.json_key().into(), json!(names));
                }
                _ => {
                    let mut map = BTreeMap::new();
                    for entry in entries {
                        map.insert(
                            entry.name.clone(),
                            json!({
                                "used_as_default": entry.default,
                                "build_flag": entry.build_flag,
                                "minimum_version": entry.minimum_version,
                            }),
                        );
                    }
                    root.insert(category.json_key().into(), json!(map));
                }
            }
        }
        Value::Object(root)
    }

    /// Pretty-printed schema JSON.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_schema_json()).expect("document serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpecializationDocument {
        let mut doc = SpecializationDocument::new("mini-gromacs");
        doc.gpu_build = true;
        doc.gpu_build_flag = Some("-DGMX_GPU".into());
        doc.push(
            SpecEntry::new(SpecCategory::GpuBackend, "CUDA")
                .with_flag("-DGMX_GPU=CUDA")
                .with_min_version("12.1"),
        );
        doc.push(SpecEntry::new(SpecCategory::GpuBackend, "SYCL").with_flag("-DGMX_GPU=SYCL"));
        doc.push(
            SpecEntry::new(SpecCategory::Vectorization, "AVX_512").with_flag("-DGMX_SIMD=AVX_512"),
        );
        doc.push(
            SpecEntry::new(SpecCategory::Vectorization, "SSE4.1").with_flag("-DGMX_SIMD=SSE4.1"),
        );
        doc.push(
            SpecEntry::new(SpecCategory::Fft, "fftw3")
                .with_flag("-DGMX_FFT_LIBRARY=fftw3")
                .as_default(),
        );
        doc.push(SpecEntry::new(SpecCategory::LinearAlgebra, "mkl").with_flag("-DGMX_BLAS=mkl"));
        doc.push(SpecEntry::new(SpecCategory::Parallelism, "MPI").with_flag("-DGMX_MPI=ON"));
        doc.push(SpecEntry::new(SpecCategory::Architecture, "x86_64"));
        doc
    }

    #[test]
    fn entries_by_category_and_lookup() {
        let doc = sample();
        assert_eq!(doc.entries_of(SpecCategory::GpuBackend).len(), 2);
        assert_eq!(doc.entries_of(SpecCategory::Vectorization).len(), 2);
        assert!(doc.find(SpecCategory::GpuBackend, "cuda").is_some());
        assert!(doc.find(SpecCategory::GpuBackend, "HIP").is_none());
        assert_eq!(doc.len(), 8);
        assert!(!doc.is_empty());
    }

    #[test]
    fn schema_json_has_appendix_b_keys() {
        let doc = sample();
        let json = doc.to_schema_json();
        assert_eq!(json["gpu_build"]["value"], json!(true));
        assert!(json["gpu_backends"].get("CUDA").is_some());
        assert_eq!(
            json["gpu_backends"]["CUDA"]["minimum_version"],
            json!("12.1")
        );
        assert_eq!(
            json["FFT_libraries"]["fftw3"]["used_as_default"],
            json!(true)
        );
        assert!(json["simd_vectorization"].get("AVX_512").is_some());
        assert_eq!(json["architectures"], json!(["x86_64"]));
        assert_eq!(json["build_system"]["type"], json!("cmake"));
        // Categories with no entries still appear (schema requires all keys).
        assert!(json.get("internal_build").is_some());
    }

    #[test]
    fn document_serde_roundtrip() {
        let doc = sample();
        let text = serde_json::to_string(&doc).unwrap();
        let back: SpecializationDocument = serde_json::from_str(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn json_string_is_pretty_printed() {
        let text = sample().to_json_string();
        assert!(text.contains('\n'));
        assert!(text.contains("\"gpu_backends\""));
    }
}
