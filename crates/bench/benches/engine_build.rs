//! Action-graph engine benchmark: the same multi-configuration IR-container build
//! executed serially (1 worker — the pre-engine pipeline's schedule) and with the
//! work-stealing worker pool, plus the warm-cache steady state.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xaas::prelude::*;
use xaas_container::{ActionCache, ImageStore};

fn sweep(project: &xaas_buildsys::ProjectSpec) -> IrPipelineConfig {
    IrPipelineConfig::sweep_options(project, &["GMX_SIMD", "GMX_GPU"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"])
        .with_values("GMX_GPU", &["OFF", "CUDA"])
}

fn bench_engine(c: &mut Criterion) {
    // The experiment JSON is the artifact the acceptance criteria ask for: action
    // counts, stage depths, and the wall-clock speedup of parallel vs serial builds.
    let experiment = xaas_bench::engine_parallelism();
    println!(
        "{}",
        serde_json::to_string_pretty(&experiment).expect("engine experiment serialises")
    );

    let project = xaas_apps::gromacs::project();
    let pipeline = sweep(&project);

    let mut group = c.benchmark_group("engine/ir_build");
    group.bench_function("serial_1_worker", |b| {
        b.iter(|| {
            let engine = Engine::uncached(&ImageStore::new()).with_workers(1);
            black_box(
                build_ir_container_with(&project, &pipeline, &engine, "bench:engine-serial")
                    .unwrap(),
            );
        });
    });
    group.bench_function("parallel_4_workers", |b| {
        b.iter(|| {
            let engine = Engine::uncached(&ImageStore::new()).with_workers(4);
            black_box(
                build_ir_container_with(&project, &pipeline, &engine, "bench:engine-parallel")
                    .unwrap(),
            );
        });
    });
    // Steady state: every compile action served from the shared cache.
    let cache = ActionCache::new(ImageStore::new());
    let warm_engine = Engine::cached(&cache).with_workers(4);
    build_ir_container_with(&project, &pipeline, &warm_engine, "bench:engine-warm").unwrap();
    group.bench_function("parallel_warm_cache", |b| {
        b.iter(|| {
            black_box(
                build_ir_container_with(&project, &pipeline, &warm_engine, "bench:engine-warm")
                    .unwrap(),
            );
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
