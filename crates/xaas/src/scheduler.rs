//! Fleet specialization: serve many systems from one IR container, concurrently.
//!
//! The paper's deployment story (Figures 8, 12–13) specializes one target system at
//! a time. A production registry faces the other shape: one IR container and a
//! *fleet* of heterogeneous systems (the paper's Ault 23/25, Ault 01–04,
//! Clariden, …) all asking for specialized images at once. Since the orchestrator
//! redesign, the fleet pipeline *is* a typed request —
//! `FleetRequest` submitted to an
//! [`Orchestrator`] — and the
//! [`FleetSpecializer`] kept here is a thin convenience wrapper binding one shared
//! [`ActionCache`], worker count, and [`FleetStrategy`] to repeated fleet
//! submissions: duplicate targets are deduplicated up front, every distinct job
//! is grafted into one union graph per wave (the default strategy — parallelism
//! crosses job boundaries at action granularity), systems that share an ISA
//! share the lowered artifacts, and no [`BuildKey`](xaas_container::BuildKey) is
//! ever built twice (the cache is single-flight even across racing workers).
//!
//! The result is deterministic: outcomes are reported in request order, and the
//! cache's hit/miss totals depend only on the request set, not on scheduling.

use crate::engine::Engine;
use crate::ir_container::IrContainerBuild;
use crate::orchestrator::Orchestrator;
use crate::service::{OrchestratorService, Session};
use xaas_buildsys::ProjectSpec;
use xaas_container::ActionCache;

pub use crate::orchestrator::{FleetError, FleetOutcome, FleetReport, FleetStrategy, FleetTarget};

/// Historical name of [`FleetTarget`]: one per-system specialization request.
#[deprecated(since = "0.2.0", note = "use xaas::orchestrator::FleetTarget")]
pub type FleetRequest = FleetTarget;

/// The tenant [`FleetSpecializer`] submissions run as on the service.
const FLEET_TENANT: &str = "fleet";

/// A specializer that deploys one IR container to a fleet of systems through one
/// shared engine, with one [`ActionCache`] across all jobs.
///
/// Since the service redesign this is a thin wrapper over a single-tenant
/// [`OrchestratorService`] [`Session`]: the specializer holds one service (one
/// engine, one worker pool, admission control in front) and every
/// [`specialize_fleet`](Self::specialize_fleet) wave is a
/// [`FleetRequest`](crate::orchestrator::FleetRequest) submitted through that
/// session — it no longer re-wires a fresh engine per call. Use the request
/// type directly when you already have an [`Orchestrator`] session, or open
/// your own [`Session`]s on a shared [`OrchestratorService`] for multi-tenant
/// traffic.
#[derive(Debug, Clone)]
pub struct FleetSpecializer {
    cache: ActionCache,
    workers: usize,
    strategy: FleetStrategy,
    session: Session,
}

impl FleetSpecializer {
    /// A specializer over `cache` with a worker count derived from the host parallelism
    /// (clamped to `[2, 8]`) and the default [`FleetStrategy::UnionGraph`].
    pub fn new(cache: ActionCache) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        Self::assemble(cache, workers, FleetStrategy::default())
    }

    /// Build the backing service + session for the given knob settings.
    fn assemble(cache: ActionCache, workers: usize, strategy: FleetStrategy) -> Self {
        let service = OrchestratorService::builder()
            .action_cache(cache.clone())
            .workers(workers)
            .fleet_strategy(strategy)
            .build();
        let session = service.session(FLEET_TENANT);
        Self {
            cache,
            workers,
            strategy,
            session,
        }
    }

    /// Override the engine worker count (at least 1). Rebuilds the backing
    /// service (the shared cache carries over, the worker pool does not).
    pub fn with_workers(self, workers: usize) -> Self {
        Self::assemble(self.cache, workers.max(1), self.strategy)
    }

    /// Override the fleet strategy (union graph vs per-job sequential
    /// submissions — the A/B knob of the `fleet_specialization` bench).
    /// Rebuilds the backing service over the same cache.
    pub fn with_strategy(self, strategy: FleetStrategy) -> Self {
        Self::assemble(self.cache, self.workers, strategy)
    }

    /// The shared action cache.
    pub fn cache(&self) -> &ActionCache {
        &self.cache
    }

    /// The service fleet submissions are admitted through.
    pub fn service(&self) -> OrchestratorService {
        self.session.service()
    }

    /// The session fleet submissions run on (tenant `"fleet"`).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The engine the fleet's deployment graphs are submitted to.
    #[deprecated(
        since = "0.6.0",
        note = "the specializer no longer wires a private engine per call; use \
                service()/session() — this shim returns a detached engine over \
                the same cache"
    )]
    pub fn engine(&self) -> Engine {
        Engine::cached(&self.cache).with_workers(self.workers)
    }

    /// The orchestrator session a fleet submission runs on.
    #[deprecated(
        since = "0.6.0",
        note = "use session() (admission-controlled) or service().orchestrator(); \
                this shim returns the session's tenant-tagged orchestrator view"
    )]
    pub fn orchestrator(&self) -> Orchestrator {
        self.session.orchestrator().clone()
    }

    /// Deploy `build` for every target, deduplicating identical targets and
    /// submitting each distinct job's deployment graph to the shared engine.
    /// Outcomes are returned in request order; a failed job fails only the targets
    /// that map to it.
    ///
    /// The wave is admitted through the backing service like any other session
    /// traffic ([`Session::submit_wait`] semantics: a saturated service parks
    /// the wave rather than refusing it, so this method keeps its historical
    /// infallible signature).
    pub fn specialize_fleet(
        &self,
        build: &IrContainerBuild,
        project: &ProjectSpec,
        targets: &[FleetTarget],
    ) -> FleetReport {
        let request =
            crate::orchestrator::FleetRequest::new(build, project).targets(targets.iter().cloned());
        match self.session.submit_wait(request) {
            Ok(report) => report,
            Err(crate::service::ServiceError::Admission(error)) => {
                unreachable!("fleet session is never drained: {error}")
            }
            Err(crate::service::ServiceError::Request(impossible)) => match impossible {},
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir_container::{IrPipelineConfig, TOOLCHAIN_ID};
    use crate::orchestrator::IrBuildRequest;
    use std::sync::Arc;
    use xaas_buildsys::OptionAssignment;
    use xaas_container::ImageStore;
    use xaas_hpcsim::{SimdLevel, SystemModel};

    fn fleet_build(cache: &ActionCache) -> (ProjectSpec, IrContainerBuild) {
        let project = xaas_apps::gromacs::project();
        let config = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"])
            .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"]);
        let build = IrBuildRequest::new(&project, &config)
            .reference("fleet:ir")
            .submit(&Orchestrator::with_cache(cache))
            .unwrap();
        (project, build)
    }

    fn selection(simd: &str) -> OptionAssignment {
        OptionAssignment::new().with("GMX_SIMD", simd)
    }

    #[test]
    fn fleet_outcomes_keep_request_order_and_dedup_duplicates() {
        let cache = ActionCache::new(ImageStore::new());
        let (project, build) = fleet_build(&cache);
        let targets = vec![
            FleetTarget::new(
                SystemModel::ault23(),
                selection("AVX_512"),
                SimdLevel::Avx512,
            ),
            // Exact duplicate of the first target: must not become a second job.
            FleetTarget::new(
                SystemModel::ault23(),
                selection("AVX_512"),
                SimdLevel::Avx512,
            ),
            FleetTarget::new(
                SystemModel::ault01_04(),
                selection("SSE4.1"),
                SimdLevel::Sse41,
            ),
        ];
        let report = FleetSpecializer::new(cache.clone())
            .with_workers(3)
            .specialize_fleet(&build, &project, &targets);
        assert!(report.all_succeeded());
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.jobs_executed, 2);
        assert_eq!(report.jobs_deduplicated, 1);
        assert!(report.outcomes[1].deduplicated);
        assert!(!report.outcomes[0].deduplicated);
        // Deduplicated targets share the very same deployment.
        let first = report.outcomes[0].deployment.as_ref().unwrap();
        let second = report.outcomes[1].deployment.as_ref().unwrap();
        assert!(Arc::ptr_eq(first, second));
        assert_eq!(report.outcomes[0].system, "Ault23");
        assert_eq!(report.outcomes[2].system, "Ault01-04");
    }

    #[test]
    fn fleet_failures_are_isolated_per_job() {
        let cache = ActionCache::new(ImageStore::new());
        let (project, build) = fleet_build(&cache);
        let targets = vec![
            FleetTarget::new(
                SystemModel::ault23(),
                selection("AVX_512"),
                SimdLevel::Avx512,
            ),
            // Ault25 (EPYC 7742) has no AVX-512: this job must fail without
            // affecting the first one.
            FleetTarget::new(
                SystemModel::ault25(),
                selection("AVX_512"),
                SimdLevel::Avx512,
            ),
        ];
        let report = FleetSpecializer::new(cache).specialize_fleet(&build, &project, &targets);
        assert!(!report.all_succeeded());
        assert!(report.outcomes[0].deployment.is_ok());
        let error = report.outcomes[1].deployment.as_ref().unwrap_err();
        assert_eq!(error.system, "Ault25");
        assert!(error.message.contains("not supported"), "{error}");
        assert_eq!(report.deployments().count(), 1);
    }

    #[test]
    fn shared_isa_systems_share_every_lower_action() {
        let cache = ActionCache::new(ImageStore::new());
        let (project, build) = fleet_build(&cache);
        // Two different systems, same ISA: the second system's lowering is all hits.
        let targets = vec![
            FleetTarget::new(
                SystemModel::ault23(),
                selection("AVX_512"),
                SimdLevel::Avx512,
            ),
            FleetTarget::new(
                SystemModel::ault01_04(),
                selection("AVX_512"),
                SimdLevel::Avx512,
            ),
        ];
        let report = FleetSpecializer::new(cache)
            .with_workers(2)
            .specialize_fleet(&build, &project, &targets);
        assert!(report.all_succeeded());
        let per_system: u64 = report.outcomes[0]
            .deployment
            .as_ref()
            .unwrap()
            .actions
            .total() as u64;
        assert_eq!(
            report.cache.misses, per_system,
            "every action of the second system is served from the cache"
        );
        assert_eq!(report.cache.hits, per_system);
    }

    #[test]
    fn deprecated_fleet_request_alias_still_names_targets() {
        #[allow(deprecated)]
        let target: super::FleetRequest = FleetTarget::best_for(
            SystemModel::ault23(),
            OptionAssignment::new().with("GMX_SIMD", "AVX_512"),
        );
        assert_eq!(target.simd, SimdLevel::Avx512);
        // The shared toolchain id pins cache keys across the fleet.
        assert!(TOOLCHAIN_ID.contains("xir"));
    }
}
