//! The experiment drivers, one per table/figure of the paper.

use serde::Serialize;
use std::collections::BTreeMap;
use xaas::prelude::*;
use xaas_apps::{gromacs, llamacpp, lulesh};
use xaas_buildsys::OptionAssignment;
use xaas_container::ImageStore;
use xaas_hpcsim::{
    discover, BandwidthModel, BuildProfile, ExecutionEngine, GpuBackend, LibraryQuality, MpiFlavor,
    SimdLevel, SystemModel, Workload,
};
use xaas_specs::{
    analyze, from_project, intersect, min_med_max, score, AnalysisConfig, MinMedMax, SimulatedLlm,
};

/// One bar of a timing figure.
#[derive(Debug, Clone, Serialize)]
pub struct TimingBar {
    /// Bar label (build variant).
    pub label: String,
    /// Compute time in seconds (I/O excluded, as in the paper's plots).
    pub compute_seconds: f64,
    /// I/O time in seconds (reported separately).
    pub io_seconds: f64,
    /// Whether the run used a GPU.
    pub used_gpu: bool,
}

/// A panel of a figure: one system (or device) with several bars.
#[derive(Debug, Clone, Serialize)]
pub struct FigurePanel {
    /// Panel title (system or device name plus workload).
    pub title: String,
    /// Bars in plot order.
    pub bars: Vec<TimingBar>,
}

/// Build an IR container through a fresh uncached orchestrator session over `store`
/// (the historical free-function shape of the experiments).
fn ir_build(
    project: &xaas_buildsys::ProjectSpec,
    config: &IrPipelineConfig,
    store: &ImageStore,
    reference: &str,
) -> Result<IrContainerBuild, IrPipelineError> {
    IrBuildRequest::new(project, config)
        .reference(reference)
        .submit(&Orchestrator::uncached(store))
}

/// Deploy an IR container through a fresh uncached orchestrator session over `store`.
fn ir_deploy(
    build: &IrContainerBuild,
    project: &xaas_buildsys::ProjectSpec,
    system: &SystemModel,
    selection: &OptionAssignment,
    simd: SimdLevel,
    store: &ImageStore,
) -> Result<IrDeployment, DeployError> {
    IrDeployRequest::new(build, project, system)
        .selection(selection.clone())
        .simd(simd)
        .submit(&Orchestrator::uncached(store))
}

fn run_bars(
    system: &SystemModel,
    workload: &Workload,
    profiles: &[BuildProfile],
) -> Vec<TimingBar> {
    let engine = ExecutionEngine::new(system);
    profiles
        .iter()
        .filter_map(|profile| {
            engine
                .execute(workload, profile)
                .ok()
                .map(|report| TimingBar {
                    label: profile.label.clone(),
                    compute_seconds: report.compute_seconds,
                    io_seconds: report.io_seconds,
                    used_gpu: report.used_gpu,
                })
        })
        .collect()
}

/// **Figure 2**: impact of vectorization on the MD workload, x86 (Xeon Gold 6130) and ARM
/// (GH200), 16 threads, 100 timesteps.
pub fn figure2() -> Vec<FigurePanel> {
    let workload = gromacs::figure2_workload();
    let mut panels = Vec::new();
    let x86 = SystemModel::ault23();
    let x86_levels = [
        SimdLevel::None,
        SimdLevel::Sse2,
        SimdLevel::Sse41,
        SimdLevel::Avx2_128,
        SimdLevel::Avx256,
        SimdLevel::Avx512,
    ];
    let profiles: Vec<BuildProfile> = x86_levels
        .iter()
        .map(|&level| BuildProfile::new(level.gmx_name(), level, 16))
        .collect();
    panels.push(FigurePanel {
        title: format!(
            "x86 Execution Time: {} (16 threads, 100 steps)",
            x86.cpu.name
        ),
        bars: run_bars(&x86, &workload, &profiles),
    });

    let arm = SystemModel::clariden();
    let arm_levels = [SimdLevel::None, SimdLevel::Sve, SimdLevel::NeonAsimd];
    let profiles: Vec<BuildProfile> = arm_levels
        .iter()
        .map(|&level| BuildProfile::new(level.gmx_name(), level, 16))
        .collect();
    panels.push(FigurePanel {
        title: format!(
            "ARM Execution Time: {} (16 threads, 100 steps)",
            arm.cpu.name
        ),
        bars: run_bars(&arm, &workload, &profiles),
    });
    panels
}

/// One row of Table 4.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// Model name.
    pub model: String,
    /// Mean input tokens.
    pub tokens_in: f64,
    /// Mean output tokens.
    pub tokens_out: f64,
    /// Mean latency in seconds.
    pub time_seconds: f64,
    /// Mean cost in USD.
    pub cost_usd: f64,
    /// F1 min/median/max across runs.
    pub f1: MinMedMax,
    /// Precision min/median/max.
    pub precision: MinMedMax,
    /// Recall min/median/max.
    pub recall: MinMedMax,
}

/// **Table 4**: simulated-LLM discovery of the mini-GROMACS specialization points,
/// 10 runs per model, scored against the ground truth with normalisation.
pub fn table4(runs: u64) -> Vec<Table4Row> {
    let project = gromacs::project();
    let truth = from_project(&project);
    let config = AnalysisConfig {
        in_context_examples: true,
    };
    SimulatedLlm::catalog()
        .into_iter()
        .map(|model| {
            let mut f1 = Vec::new();
            let mut precision = Vec::new();
            let mut recall = Vec::new();
            let mut tokens_in = 0.0;
            let mut tokens_out = 0.0;
            let mut time = 0.0;
            let mut cost = 0.0;
            for run in 0..runs {
                let result = analyze(&model, &project.build_script, &truth, &config, run);
                let metrics = score(&result.document, &truth, true);
                f1.push(metrics.f1());
                precision.push(metrics.precision());
                recall.push(metrics.recall());
                tokens_in += result.tokens_in as f64;
                tokens_out += result.tokens_out as f64;
                time += result.latency_seconds;
                cost += result.cost_usd;
            }
            let n = runs.max(1) as f64;
            Table4Row {
                model: model.name.clone(),
                tokens_in: tokens_in / n,
                tokens_out: tokens_out / n,
                time_seconds: time / n,
                cost_usd: cost / n,
                f1: min_med_max(&f1),
                precision: min_med_max(&precision),
                recall: min_med_max(&recall),
            }
        })
        .collect()
}

/// One row of the Section 6.2 generalization experiment (llama.cpp, no in-context
/// examples): raw vs normalised F1.
#[derive(Debug, Clone, Serialize)]
pub struct GeneralizationRow {
    /// Model name.
    pub model: String,
    /// F1 without normalisation.
    pub f1_raw: MinMedMax,
    /// F1 with normalisation.
    pub f1_normalized: MinMedMax,
}

/// **Section 6.2, Generalization**: llama.cpp discovery without in-context examples.
pub fn table4_generalization(runs: u64) -> Vec<GeneralizationRow> {
    let project = llamacpp::project();
    let truth = from_project(&project);
    let config = AnalysisConfig {
        in_context_examples: false,
    };
    [
        "claude-3-7-sonnet-20250219",
        "gemini-flash-2-exp",
        "o3-mini-2025-01-31",
        "gpt-4o-2024-08-06",
    ]
    .iter()
    .filter_map(|name| SimulatedLlm::by_name(name))
    .map(|model| {
        let mut raw = Vec::new();
        let mut normalized = Vec::new();
        for run in 0..runs {
            let result = analyze(&model, &project.build_script, &truth, &config, run);
            raw.push(score(&result.document, &truth, false).f1());
            normalized.push(score(&result.document, &truth, true).f1());
        }
        GeneralizationRow {
            model: model.name.clone(),
            f1_raw: min_med_max(&raw),
            f1_normalized: min_med_max(&normalized),
        }
    })
    .collect()
}

/// **Figure 10**: GROMACS performance portability across Ault23, Aurora, and Clariden.
/// Test case A and B bars per build variant; the XaaS bar comes from an actual source-
/// container deployment.
pub fn figure10() -> Vec<FigurePanel> {
    let project = gromacs::project();
    let store = ImageStore::new();
    let mut panels = Vec::new();
    let cases: [(SystemModel, u32, u32); 3] = [
        (SystemModel::ault23(), 20_000, 1_000),
        (SystemModel::aurora(), 20_000, 1_000),
        (SystemModel::clariden(), 30_000, 3_000),
    ];
    for (system, steps_a, steps_b) in cases {
        let source_image = build_source_container(
            &project,
            crate::experiments::architecture_for(&system),
            &store,
            &format!("spcl/mini-gromacs:src-{}", system.name.to_ascii_lowercase()),
        );
        let deployment = SourceDeployRequest::new(&project, &source_image, &system)
            .submit(&Orchestrator::uncached(&store))
            .expect("source deployment succeeds");
        let mut profiles =
            xaas_apps::make_executable(xaas_apps::gromacs_baselines(&system), &system);
        // Replace the static "XaaS Source" stand-in with the profile of the real deployment.
        if let Some(slot) = profiles.iter_mut().find(|p| p.label == "XaaS Source") {
            let mut deployed_profile = deployment.build_profile.clone();
            deployed_profile.label = "XaaS Source".into();
            *slot = deployed_profile;
        }
        for (case, steps) in [("A", steps_a), ("B", steps_b)] {
            let workload = if case == "A" {
                gromacs::workload_test_a(steps)
            } else {
                gromacs::workload_test_b(steps)
            };
            panels.push(FigurePanel {
                title: format!("{} (Test {case}, {steps} steps)", system.name),
                bars: run_bars(&system, &workload, &profiles),
            });
        }
    }
    panels
}

/// **Figure 11**: llama.cpp performance portability across the three systems.
pub fn figure11() -> Vec<FigurePanel> {
    let workload = llamacpp::benchmark_workload(512, 128);
    [
        SystemModel::ault23(),
        SystemModel::aurora(),
        SystemModel::clariden(),
    ]
    .into_iter()
    .map(|system| {
        let profiles = xaas_apps::make_executable(xaas_apps::llamacpp_baselines(&system), &system);
        FigurePanel {
            title: format!("{} — llama-bench pp512/tg128 (13B Q4)", system.name),
            bars: run_bars(&system, &workload, &profiles),
        }
    })
    .collect()
}

/// **Figure 12 (top)**: IR containers on CPU — the SSE4.1→AVX-512 sweep deployed from a
/// single IR container, compared against a portable and a specialized container.
pub fn figure12_cpu() -> Vec<FigurePanel> {
    let project = gromacs::project();
    let store = ImageStore::new();
    let system = SystemModel::ault01_04();
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"]).with_values(
        "GMX_SIMD",
        &["SSE4.1", "AVX2_128", "AVX_256", "AVX2_256", "AVX_512"],
    );
    let build = ir_build(&project, &pipeline, &store, "spcl/mini-gromacs:ir-x86")
        .expect("IR container builds");
    let levels = [
        SimdLevel::Sse41,
        SimdLevel::Avx2_128,
        SimdLevel::Avx256,
        SimdLevel::Avx2_256,
        SimdLevel::Avx512,
    ];
    let mut panels = Vec::new();
    for (case, threads, steps) in [("A", 1u32, 200u32), ("B", 36u32, 200u32)] {
        let workload = if case == "A" {
            gromacs::workload_test_a(steps)
        } else {
            gromacs::workload_test_b(steps)
        };
        let mut profiles: Vec<BuildProfile> = Vec::new();
        // Performance-oblivious portable container: lowest-common-denominator SIMD.
        profiles.push(
            BuildProfile::new("Portable Container", SimdLevel::Sse41, threads)
                .with_libraries(LibraryQuality::Generic, LibraryQuality::Generic)
                .with_container_overhead(1.01),
        );
        for &level in &levels {
            let selection = OptionAssignment::new().with("GMX_SIMD", level.gmx_name());
            let deployment = ir_deploy(&build, &project, &system, &selection, level, &store)
                .expect("IR deployment succeeds");
            let mut profile = deployment.build_profile.clone();
            profile.label = format!("XaaS IR {}", level.gmx_name());
            profile.threads = threads;
            profiles.push(profile);
        }
        // Hand-specialized container built directly for AVX-512.
        profiles.push(
            BuildProfile::new("Specialized Container", SimdLevel::Avx512, threads)
                .with_libraries(LibraryQuality::Vendor, LibraryQuality::Vendor)
                .with_container_overhead(1.01),
        );
        panels.push(FigurePanel {
            title: format!("CPU, Test {case}, {threads} core(s), {steps} steps (Ault01-04)"),
            bars: run_bars(&system, &workload, &profiles),
        });
    }
    panels
}

/// **Figure 12 (bottom)**: IR containers with CUDA on V100 (Ault23) and A100 (Ault25):
/// Docker (specialized) vs XaaS IR deployment, tests A and B, I/O reported separately.
pub fn figure12_gpu() -> Vec<FigurePanel> {
    let project = gromacs::project();
    let store = ImageStore::new();
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_GPU"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"])
        .with_values("GMX_GPU", &["CUDA"]);
    let build = ir_build(&project, &pipeline, &store, "spcl/mini-gromacs:ir-cuda")
        .expect("IR container builds");
    let mut panels = Vec::new();
    for system in [SystemModel::ault23(), SystemModel::ault25()] {
        let simd = system.cpu.best_simd();
        let selection = OptionAssignment::new()
            .with("GMX_SIMD", simd.gmx_name())
            .with("GMX_GPU", "CUDA");
        // On Ault25 (EPYC without AVX-512) the IR container is deployed at AVX2_256,
        // which is not part of the sweep — fall back to the SSE4.1 configuration entry
        // and lower for the best ISA (the IR is shared anyway).
        let manifest_selection = if build.manifest_for(&selection).is_some() {
            selection
        } else {
            OptionAssignment::new()
                .with("GMX_SIMD", "SSE4.1")
                .with("GMX_GPU", "CUDA")
        };
        let deployment = ir_deploy(&build, &project, &system, &manifest_selection, simd, &store)
            .expect("GPU deployment succeeds");
        for (case, steps) in [("A", 20_000u32), ("B", 1_000u32)] {
            let workload = if case == "A" {
                gromacs::workload_test_a(steps)
            } else {
                gromacs::workload_test_b(steps)
            };
            let mut xaas_profile = deployment.build_profile.clone();
            xaas_profile.label = "XaaS IR".into();
            xaas_profile.threads = 16;
            // The Docker baseline is a hand-specialized CUDA container built with the same
            // FFT/BLAS stack as the IR deployment; only the build path differs.
            let docker = BuildProfile::new("Docker (specialized)", simd, 16)
                .with_gpu(GpuBackend::Cuda)
                .with_libraries(xaas_profile.blas, xaas_profile.fft)
                .with_container_overhead(1.01);
            panels.push(FigurePanel {
                title: format!("{} GPU, Test {case} ({steps} steps)", system.name),
                bars: run_bars(&system, &workload, &[docker, xaas_profile]),
            });
        }
    }
    panels
}

/// One row of the translation-unit reduction study (Section 6.4).
#[derive(Debug, Clone, Serialize)]
pub struct ReductionRow {
    /// Which sweep this row describes.
    pub sweep: String,
    /// Number of configurations.
    pub configurations: usize,
    /// Translation units across all configurations (ΣTᵢ).
    pub total_translation_units: usize,
    /// IR files actually built (T′).
    pub ir_files_built: usize,
    /// Reduction percentage.
    pub reduction_percent: f64,
    /// IR files that would be built with the vectorization-delay stage disabled.
    pub without_vectorization_delay: usize,
    /// IR files that would be built with the OpenMP-detection stage disabled.
    pub without_openmp_detection: usize,
}

/// **Section 6.4** — configurability and system dependency: the three GROMACS sweeps plus
/// the LULESH example, with per-stage ablations.
pub fn tu_reduction() -> Vec<ReductionRow> {
    let mut rows = Vec::new();
    let store = ImageStore::new();

    let mut run =
        |sweep_name: &str, project: &xaas_buildsys::ProjectSpec, config: IrPipelineConfig| {
            let full = ir_build(project, &config, &store, &format!("tu:{sweep_name}"))
                .expect("pipeline runs");
            let mut no_vec = config.clone();
            no_vec.stages.vectorization_delay = false;
            let without_vec = ir_build(project, &no_vec, &store, &format!("tu-novec:{sweep_name}"))
                .expect("pipeline runs");
            let mut no_omp = config.clone();
            no_omp.stages.openmp_detection = false;
            let without_omp = ir_build(project, &no_omp, &store, &format!("tu-noomp:{sweep_name}"))
                .expect("pipeline runs");
            rows.push(ReductionRow {
                sweep: sweep_name.to_string(),
                configurations: full.stats.configurations,
                total_translation_units: full.stats.total_translation_units,
                ir_files_built: full.stats.ir_files_built(),
                reduction_percent: full.stats.reduction_percent(),
                without_vectorization_delay: without_vec.stats.ir_files_built(),
                without_openmp_detection: without_omp.stats.ir_files_built(),
            });
        };

    let gromacs_project = gromacs::project();
    run(
        "GROMACS: 5 CPU ISAs",
        &gromacs_project,
        IrPipelineConfig::sweep_options(&gromacs_project, &["GMX_SIMD"]).with_values(
            "GMX_SIMD",
            &["SSE4.1", "AVX2_128", "AVX_256", "AVX2_256", "AVX_512"],
        ),
    );
    run(
        "GROMACS: CUDA x 2 vectorization",
        &gromacs_project,
        IrPipelineConfig::sweep_options(&gromacs_project, &["GMX_SIMD", "GMX_GPU"])
            .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"])
            .with_values("GMX_GPU", &["OFF", "CUDA"]),
    );
    run(
        "GROMACS: OpenMP x MPI",
        &gromacs_project,
        IrPipelineConfig::sweep_options(&gromacs_project, &["GMX_OPENMP", "GMX_MPI"]),
    );
    let lulesh_project = lulesh::project();
    run(
        "LULESH: MPI x OpenMP",
        &lulesh_project,
        IrPipelineConfig::sweep_options(&lulesh_project, &["WITH_MPI", "WITH_OPENMP"]),
    );
    rows
}

/// Per-system row of the fleet-specialization experiment.
#[derive(Debug, Clone, Serialize)]
pub struct FleetSystemRow {
    /// System name.
    pub system: String,
    /// SIMD level the system was specialized for.
    pub simd: String,
    /// Actions this system's *cold* deployment executed (empty per-deployment cache).
    pub cold_actions: usize,
    /// Actions this system's deployment executed inside the shared-cache fleet run.
    pub fleet_actions_executed: usize,
    /// Actions served from the shared cache for this system during the fleet run.
    pub fleet_actions_cached: usize,
}

/// The fleet-specialization experiment: one IR container served to the four paper
/// systems, comparing independent cold deployments against the concurrent
/// [`FleetSpecializer`] with a shared content-addressed action cache.
#[derive(Debug, Clone, Serialize)]
pub struct FleetExperiment {
    /// Per-system breakdown.
    pub systems: Vec<FleetSystemRow>,
    /// Total compile/lower actions across the four independent cold deployments.
    pub cold_actions: u64,
    /// Total actions the fleet run executed (shared-cache misses).
    pub fleet_actions: u64,
    /// Hit rate of the shared cache during the fleet run.
    pub fleet_hit_rate: f64,
    /// Actions executed when the same fleet is specialized again over the warm cache.
    pub warm_rerun_actions: u64,
    /// Hit rate of the warm rerun (1.0 when the cache fully absorbs the fleet).
    pub warm_rerun_hit_rate: f64,
    /// Distinct jobs the fleet ran (duplicate requests are deduplicated).
    pub jobs_executed: usize,
    /// Requests answered by a deduplicated job.
    pub jobs_deduplicated: usize,
    /// Worker threads used by the fleet run.
    pub workers: usize,
    /// Bytes the content-addressed store deduplicated across all deployments.
    pub store_dedup_bytes: u64,
    /// Union-graph vs per-job-sequential strategy comparison on the same fleet.
    pub strategies: FleetStrategyComparison,
}

/// One strategy's side of the union-vs-sequential fleet comparison.
#[derive(Debug, Clone, Serialize)]
pub struct FleetStrategyRun {
    /// Strategy name (`union-graph` or `sequential`).
    pub strategy: String,
    /// Engine submissions the wave needed (1 for the union graph, one per job
    /// sequentially).
    pub submissions: usize,
    /// Total trace records of the wave (preprocess through commit, all jobs).
    pub trace_actions: usize,
    /// Compile/lower actions executed (cache misses of the wave).
    pub actions_executed: u64,
    /// Serial wall-clock stages the wave's submissions impose: the union
    /// graph's critical-path depth, vs the *sum* of the per-job depths for the
    /// sequential strategy (each submission is a scheduling barrier). This is
    /// the deterministic scheduling claim; with the microsecond-scale simulated
    /// compiler, `wall_ms` is dominated by thread-coordination noise.
    pub stage_depth: usize,
    /// Wall-clock of the wave, in milliseconds.
    pub wall_ms: f64,
}

/// A/B comparison of [`FleetStrategy`] on the 4-system GROMACS fleet, each
/// strategy over its own cold shared cache.
#[derive(Debug, Clone, Serialize)]
pub struct FleetStrategyComparison {
    /// The union-graph wave (one engine submission).
    pub union_graph: FleetStrategyRun,
    /// The sequential per-job submissions.
    pub sequential: FleetStrategyRun,
    /// Whether every per-target image was byte-identical across strategies.
    pub byte_identical: bool,
}

/// **Fleet specialization** (the production shape behind Figures 8 and 12): build the
/// GROMACS IR container once, then specialize it for Ault23, Ault25, Ault01-04, and
/// Clariden. Cold = four independent deployments, each with an empty action cache;
/// fleet = the concurrent work-queue specializer sharing one cache (systems with a
/// common ISA share every lowered artifact); warm rerun = the same fleet again, fully
/// served from the cache.
pub fn fleet_specialization() -> FleetExperiment {
    let project = gromacs::project();
    let store = ImageStore::new();
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"]).with_values(
        "GMX_SIMD",
        &["SSE4.1", "AVX2_256", "AVX_512", "ARM_NEON_ASIMD"],
    );
    let build = ir_build(&project, &pipeline, &store, "spcl/mini-gromacs:ir-fleet")
        .expect("IR container builds");

    let fleet_systems = [
        SystemModel::ault23(),
        SystemModel::ault25(),
        SystemModel::ault01_04(),
        SystemModel::clariden(),
    ];
    let requests: Vec<FleetTarget> = fleet_systems
        .iter()
        .map(|system| {
            let simd = system.cpu.best_simd();
            FleetTarget::new(
                system.clone(),
                OptionAssignment::new().with("GMX_SIMD", simd.gmx_name()),
                simd,
            )
        })
        .collect();

    // Cold baseline: every system deploys with its own empty action cache.
    let cold: Vec<IrDeployment> = requests
        .iter()
        .map(|request| {
            ir_deploy(
                &build,
                &project,
                &request.system,
                &request.selection,
                request.simd,
                &store,
            )
            .expect("cold deployment succeeds")
        })
        .collect();
    let cold_actions: u64 = cold.iter().map(|d| d.actions.executed as u64).sum();

    // Fleet run: shared cache, parallel workers, deduplicated jobs.
    let cache = ActionCache::new(store.clone());
    let specializer = FleetSpecializer::new(cache.clone());
    let report = specializer.specialize_fleet(&build, &project, &requests);
    assert!(report.all_succeeded(), "fleet specialization succeeds");
    let fleet_stats = report.cache;

    // Warm rerun: the cache already holds every action of the fleet (report counters
    // are per-run deltas, so no stat reset is needed).
    let rerun = specializer.specialize_fleet(&build, &project, &requests);
    assert!(rerun.all_succeeded(), "warm rerun succeeds");
    let rerun_stats = rerun.cache;

    // Strategy A/B: the same fleet as one union-graph wave vs per-job sequential
    // submissions, each over its own cold cache sharing the build's store.
    let strategy_run = |strategy| {
        let specializer =
            FleetSpecializer::new(ActionCache::new(store.clone())).with_strategy(strategy);
        let started = std::time::Instant::now();
        let report = specializer.specialize_fleet(&build, &project, &requests);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        assert!(report.all_succeeded(), "{strategy} fleet succeeds");
        (report, wall_ms)
    };
    let (union_report, union_ms) = strategy_run(FleetStrategy::UnionGraph);
    let (sequential_report, sequential_ms) = strategy_run(FleetStrategy::Sequential);
    let byte_identical = union_report
        .deployments()
        .zip(sequential_report.deployments())
        .all(|(u, s)| u.image == s.image && u.reference == s.reference);
    let strategy_side = |report: &FleetReport, wall_ms: f64| FleetStrategyRun {
        strategy: report.strategy.as_str().to_string(),
        submissions: report.submissions,
        trace_actions: report.trace.len(),
        actions_executed: report.cache.misses,
        // The union wave's trace carries the one graph's critical-path depth;
        // the sequential report's merged trace sums the per-job depths.
        stage_depth: report.trace.stage_depth,
        wall_ms,
    };
    let strategies = FleetStrategyComparison {
        union_graph: strategy_side(&union_report, union_ms),
        sequential: strategy_side(&sequential_report, sequential_ms),
        byte_identical,
    };

    let systems = requests
        .iter()
        .zip(cold.iter())
        .zip(report.outcomes.iter())
        .map(|((request, cold_deployment), outcome)| {
            let fleet_actions = outcome
                .deployment
                .as_ref()
                .map(|d| d.actions)
                .unwrap_or_default();
            FleetSystemRow {
                system: request.system.name.clone(),
                simd: request.simd.gmx_name().to_string(),
                cold_actions: cold_deployment.actions.executed,
                fleet_actions_executed: fleet_actions.executed,
                fleet_actions_cached: fleet_actions.cached,
            }
        })
        .collect();

    FleetExperiment {
        systems,
        cold_actions,
        fleet_actions: fleet_stats.misses,
        fleet_hit_rate: fleet_stats.hit_rate(),
        warm_rerun_actions: rerun_stats.misses,
        warm_rerun_hit_rate: rerun_stats.hit_rate(),
        jobs_executed: report.jobs_executed,
        jobs_deduplicated: report.jobs_deduplicated,
        workers: report.workers,
        store_dedup_bytes: store.dedup_bytes(),
        strategies,
    }
}

/// A unique scratch directory under the OS temp dir (no `tempfile` dependency:
/// pid + process-local counter keep concurrent bench invocations apart).
fn scratch_root(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("xaas-bench-{tag}-{}-{n}", std::process::id()))
}

/// The warm-restart experiment: what the persistent disk tier buys across an
/// orchestrator's death and rebirth.
#[derive(Debug, Clone, Serialize)]
pub struct WarmRestartExperiment {
    /// Wall-clock of the cold session (IR build + fleet specialization), ms.
    pub cold_wall_ms: f64,
    /// Compile/lower actions the cold session executed (cache misses).
    pub cold_actions: u64,
    /// Wall-clock of the warm-restarted session replaying the same work, ms.
    pub warm_wall_ms: f64,
    /// Compile/lower actions the warm session re-executed — the headline claim
    /// is that this is **zero**: every keyed action is served from disk.
    pub warm_recomputes: u64,
    /// Warm-session hits served by the disk tier (first touch of each key).
    pub warm_disk_hits: u64,
    /// Warm-session hits served from memory (keys already promoted from disk).
    pub warm_memory_hits: u64,
    /// Disk-tier share of all warm-session lookups.
    pub disk_hit_ratio: f64,
    /// Whether every per-target image matched the cold session's byte for byte.
    pub byte_identical: bool,
    /// Keys the disk tier held when the cold session exited.
    pub disk_entries: usize,
    /// Blob bytes the disk tier held when the cold session exited.
    pub disk_bytes: u64,
}

/// **Warm restart** (the tiered-cache claim): specialize the GROMACS fleet on an
/// orchestrator whose action cache persists through an on-disk CAS tier, *kill*
/// the orchestrator (drop it — the in-memory L1 dies with it), recreate one over
/// the same cache root, and replay the identical IR build + fleet. The replay
/// must produce byte-identical images with zero compile/lower actions
/// re-executed, every keyed action read through the disk tier.
pub fn warm_restart() -> WarmRestartExperiment {
    let root = scratch_root("warm-restart");
    let project = gromacs::project();
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"]).with_values(
        "GMX_SIMD",
        &["SSE4.1", "AVX2_256", "AVX_512", "ARM_NEON_ASIMD"],
    );
    let fleet_systems = [
        SystemModel::ault23(),
        SystemModel::ault25(),
        SystemModel::ault01_04(),
        SystemModel::clariden(),
    ];
    let targets = || -> Vec<FleetTarget> {
        fleet_systems
            .iter()
            .map(|system| {
                let simd = system.cpu.best_simd();
                FleetTarget::new(
                    system.clone(),
                    OptionAssignment::new().with("GMX_SIMD", simd.gmx_name()),
                    simd,
                )
            })
            .collect()
    };

    // One full session: fresh orchestrator over the shared disk root, IR build,
    // fleet wave. Returns the per-target images and the session's orchestrator
    // so the caller can read tier stats before dropping it.
    let session = |label: &str| {
        let orch = Orchestrator::builder()
            .workers(4)
            .cache_tiers(xaas_container::TierConfig::new().disk_root(&root))
            .expect("tier stack initializes")
            .build();
        let started = std::time::Instant::now();
        let build = IrBuildRequest::new(&project, &pipeline)
            .reference("spcl/mini-gromacs:ir-restart")
            .submit(&orch)
            .expect("IR container builds");
        let report = FleetRequest::new(&build, &project)
            .targets(targets())
            .submit(&orch);
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        assert!(report.all_succeeded(), "{label} fleet succeeds");
        let images: Vec<_> = report.deployments().map(|d| d.image.clone()).collect();
        (orch, images, wall_ms)
    };

    let (cold_orch, cold_images, cold_wall_ms) = session("cold");
    let cold_stats = cold_orch.cache_stats();
    let (disk_entries, disk_bytes) = cold_orch
        .tiered_cache()
        .and_then(|t| t.disk_stats())
        .map(|d| (d.entries, d.bytes))
        .unwrap_or_default();
    // Kill the orchestrator: the in-memory L1 and store die with it. Only the
    // disk tier under `root` survives.
    drop(cold_orch);

    let (warm_orch, warm_images, warm_wall_ms) = session("warm");
    let warm_stats = warm_orch.cache_stats();
    let byte_identical = cold_images == warm_images;
    drop(warm_orch);
    let _ = std::fs::remove_dir_all(&root);

    WarmRestartExperiment {
        cold_wall_ms,
        cold_actions: cold_stats.misses,
        warm_wall_ms,
        warm_recomputes: warm_stats.misses,
        warm_disk_hits: warm_stats.disk_hits,
        warm_memory_hits: warm_stats.memory_hits(),
        disk_hit_ratio: warm_stats.tier_hit_ratio(xaas_container::CacheTier::Disk),
        byte_identical,
        disk_entries,
        disk_bytes,
    }
}

/// The engine-parallelism experiment: the same multi-configuration IR build executed
/// by the staged action-graph engine serially (1 worker — the seed path's schedule)
/// and in parallel.
#[derive(Debug, Clone, Serialize)]
pub struct EngineExperiment {
    /// Configurations in the sweep.
    pub configurations: usize,
    /// Total actions the build executed (preprocess through commit).
    pub actions_total: usize,
    /// Cache-routed compile actions that executed (cache misses).
    pub compile_actions_executed: usize,
    /// Cache-routed compile actions served from the cache.
    pub compile_actions_cached: usize,
    /// Actions per pipeline stage.
    pub actions_by_kind: BTreeMap<String, usize>,
    /// Serial wall-clock stages of the seed path: every action runs one after the
    /// other, so this equals `actions_total`.
    pub serial_stages: usize,
    /// Serial wall-clock stages the engine's DAG imposes (its critical-path depth):
    /// with ≥ 2 workers the build completes in this many waves instead.
    pub parallel_stage_depth: usize,
    /// Worker threads of the parallel run.
    pub workers: usize,
    /// Wall-clock of the single-worker build, in milliseconds.
    pub serial_ms: f64,
    /// Wall-clock of the parallel build, in milliseconds.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`. With the microsecond-scale simulated compiler,
    /// thread-coordination overhead can outweigh the parallelism, so the scheduling
    /// claim is `parallel_stage_depth` vs `serial_stages` (deterministic), not this
    /// wall-clock ratio (hardware- and load-dependent).
    pub speedup: f64,
    /// Whether the parallel image is byte-identical to the serial image (manifest
    /// digests compared in their respective stores).
    pub byte_identical: bool,
    /// Whether the parallel run executed the exact same action set as the serial run.
    pub same_action_set: bool,
    /// `Fifo` vs `CriticalPathFirst` on the GROMACS deployment (the graph with mixed
    /// machine-lower/sd-compile frontiers, where policy effects are visible).
    pub policy_comparison: Vec<PolicyRun>,
}

/// One scheduling-policy run of the GROMACS-sweep deployment comparison.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyRun {
    /// Policy name (`fifo`, `critical-path-first`).
    pub policy: String,
    /// Bounded `sd-compile` slots (modelling a licensed system toolchain), if any.
    pub sd_compile_cap: Option<usize>,
    /// Deployment wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Total ready-queue wait per action kind, in microseconds.
    pub queue_wait_micros_by_kind: BTreeMap<String, u64>,
    /// Identity of the first dispatched lower/compile action (FIFO starts with the
    /// manifest-order `sd-compile`; critical-path-first starts with the heaviest
    /// `machine-lower`).
    pub first_dispatched: String,
    /// Whether this run dispatched actions in the same order as the FIFO run.
    pub same_order_as_fifo: bool,
    /// Whether the deployed image is byte-identical to the FIFO run's image.
    pub byte_identical_to_fifo: bool,
}

/// **Engine parallelism**: build the GROMACS IR container (a 4-configuration
/// SIMD × GPU sweep) through the staged action-graph engine with one worker (the
/// serial schedule the pre-engine pipeline was limited to) and with a parallel worker
/// pool, over fresh uncached orchestrator sessions. The images must be
/// byte-identical; the parallel run executes the same actions in
/// `parallel_stage_depth` waves instead of `serial_stages` sequential steps.
/// `policy_comparison` then deploys a GROMACS SIMD × MPI sweep under `Fifo` and
/// under `CriticalPathFirst` with a bounded `sd-compile` slot: the dispatch order
/// differs, the artifacts do not.
pub fn engine_parallelism() -> EngineExperiment {
    let project = gromacs::project();
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_GPU"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"])
        .with_values("GMX_GPU", &["OFF", "CUDA"]);
    let reference = "spcl/mini-gromacs:ir-engine";

    let serial_store = ImageStore::new();
    let serial_orch = Orchestrator::builder()
        .uncached(serial_store.clone())
        .workers(1)
        .build();
    let serial_start = std::time::Instant::now();
    let serial = IrBuildRequest::new(&project, &pipeline)
        .reference(reference)
        .submit(&serial_orch)
        .expect("serial engine build succeeds");
    let serial_ms = serial_start.elapsed().as_secs_f64() * 1e3;

    let workers = 4;
    let parallel_store = ImageStore::new();
    let parallel_orch = Orchestrator::builder()
        .uncached(parallel_store.clone())
        .workers(workers)
        .build();
    let parallel_start = std::time::Instant::now();
    let parallel = IrBuildRequest::new(&project, &pipeline)
        .reference(reference)
        .submit(&parallel_orch)
        .expect("parallel engine build succeeds");
    let parallel_ms = parallel_start.elapsed().as_secs_f64() * 1e3;

    let byte_identical = serial_store.resolve(reference).ok()
        == parallel_store.resolve(reference).ok()
        && serial.image.layers == parallel.image.layers;
    let summary = parallel.actions;
    EngineExperiment {
        configurations: parallel.stats.configurations,
        actions_total: parallel.trace.len(),
        compile_actions_executed: summary.executed,
        compile_actions_cached: summary.cached,
        actions_by_kind: parallel
            .trace
            .by_kind()
            .into_iter()
            .map(|(kind, count)| (kind.as_str().to_string(), count))
            .collect(),
        serial_stages: serial.trace.len(),
        parallel_stage_depth: parallel.trace.stage_depth,
        workers,
        serial_ms,
        parallel_ms,
        speedup: if parallel_ms > 0.0 {
            serial_ms / parallel_ms
        } else {
            1.0
        },
        byte_identical,
        same_action_set: serial.trace.action_set() == parallel.trace.action_set(),
        policy_comparison: policy_comparison(),
    }
}

/// `Fifo` vs `CriticalPathFirst` (with a bounded `sd-compile` slot) deploying the
/// same GROMACS SIMD × MPI sweep: the MPI halo file ships as source, so the
/// deployment graph mixes `machine-lower` and `sd-compile` actions and the two
/// policies dispatch them in different orders while committing byte-identical
/// images.
fn policy_comparison() -> Vec<PolicyRun> {
    let project = gromacs::project();
    let pipeline = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_MPI"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"]);
    let build_store = ImageStore::new();
    let build = ir_build(&project, &pipeline, &build_store, "policy:ir").expect("build succeeds");
    let system = SystemModel::ault23();
    let selection = OptionAssignment::new()
        .with("GMX_SIMD", "AVX_512")
        .with("GMX_MPI", "ON");

    let sd_cap = 1usize;
    let mut runs = Vec::new();
    let mut fifo_order: Vec<String> = Vec::new();
    let mut fifo_layers = Vec::new();
    for policy_name in ["fifo", "critical-path-first"] {
        let mut builder = Orchestrator::builder()
            .uncached(ImageStore::new())
            .workers(4);
        let cap = if policy_name == "fifo" {
            None
        } else {
            builder = builder.policy(
                CriticalPathFirst::new().with_cap(xaas::engine::ActionKind::SdCompile, sd_cap),
            );
            Some(sd_cap)
        };
        let orch = builder.build();
        let start = std::time::Instant::now();
        let deployment = IrDeployRequest::new(&build, &project, &system)
            .selection(selection.clone())
            .simd(SimdLevel::Avx512)
            .submit(&orch)
            .expect("policy deployment succeeds");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let order = deployment.trace.execution_order();
        if policy_name == "fifo" {
            fifo_order = order.clone();
            fifo_layers = deployment.image.layers.clone();
        }
        runs.push(PolicyRun {
            policy: deployment.trace.policy.clone(),
            sd_compile_cap: cap,
            wall_ms,
            queue_wait_micros_by_kind: deployment
                .trace
                .queue_wait_micros_by_kind()
                .into_iter()
                .map(|(kind, micros)| (kind.as_str().to_string(), micros))
                .collect(),
            first_dispatched: order
                .iter()
                .find(|identity| {
                    identity.starts_with("machine-lower") || identity.starts_with("sd-compile")
                })
                .cloned()
                .unwrap_or_default(),
            same_order_as_fifo: order == fifo_order,
            byte_identical_to_fifo: deployment.image.layers == fifo_layers,
        });
    }
    runs
}

/// One row of the Section 6.5 network comparison.
#[derive(Debug, Clone, Serialize)]
pub struct NetworkRow {
    /// Configuration label.
    pub configuration: String,
    /// Peak intra-node bandwidth in GB/s.
    pub peak_bandwidth_gbs: f64,
    /// Bandwidth at 1 MiB messages.
    pub bandwidth_1mib_gbs: f64,
    /// Bandwidth at 1 GiB messages.
    pub bandwidth_1gib_gbs: f64,
}

/// **Section 6.5**: intra-node bandwidth of bare-metal Cray MPICH, containerized MPI via
/// the cxi libfabric replacement, and the LinkX provider, on a Clariden-like GH200 node.
pub fn network() -> Vec<NetworkRow> {
    let model = BandwidthModel::default();
    let configurations = [
        (
            "Bare-metal Cray-MPICH (shm)",
            MpiFlavor::CrayMpich,
            false,
            false,
        ),
        (
            "Container MPICH via cxi",
            MpiFlavor::ContainerMpich,
            true,
            false,
        ),
        (
            "Container OpenMPI via cxi",
            MpiFlavor::ContainerOpenMpi,
            true,
            false,
        ),
        (
            "Container MPICH via LinkX",
            MpiFlavor::ContainerMpich,
            true,
            true,
        ),
        (
            "Container OpenMPI via LinkX",
            MpiFlavor::ContainerOpenMpi,
            true,
            true,
        ),
    ];
    configurations
        .iter()
        .map(|(label, flavor, containerized, linkx)| NetworkRow {
            configuration: label.to_string(),
            peak_bandwidth_gbs: model.peak_bandwidth(*flavor, *containerized, *linkx),
            bandwidth_1mib_gbs: model.bandwidth_at(*flavor, *containerized, *linkx, 1 << 20),
            bandwidth_1gib_gbs: model.bandwidth_at(*flavor, *containerized, *linkx, 1 << 30),
        })
        .collect()
}

/// GPU compatibility matrix (Figure 9): which shipped device-code bundles run on which
/// devices, and how.
#[derive(Debug, Clone, Serialize)]
pub struct GpuCompatRow {
    /// Bundle description.
    pub bundle: String,
    /// Device name.
    pub device: String,
    /// Outcome (`native`, `jit-from-ptx`, `incompatible`).
    pub outcome: String,
}

/// **Figure 9 / Section 4.3**: CUDA compatibility of the XaaS device-code bundle.
pub fn gpu_compatibility() -> Vec<GpuCompatRow> {
    use xaas_hpcsim::{GpuCompatibility, GpuModel, Version};
    let devices = [
        GpuModel::nvidia_v100(),
        GpuModel::nvidia_a100(),
        GpuModel::nvidia_gh200(),
    ];
    let bundle = plan_bundle(
        RuntimeRequirement::AnyMinorVersion,
        &[GpuModel::nvidia_v100(), GpuModel::nvidia_a100()],
        Version::new(12, 8),
    );
    devices
        .iter()
        .map(|device| {
            let outcome = match bundle_compatibility(&bundle, device) {
                GpuCompatibility::Native => "native".to_string(),
                GpuCompatibility::JitFromPtx => "jit-from-ptx".to_string(),
                GpuCompatibility::Incompatible(reason) => format!("incompatible ({reason})"),
            };
            GpuCompatRow {
                bundle: format!(
                    "cubins sm_70+sm_80, PTX compute_80, CUDA {}",
                    bundle.runtime
                ),
                device: device.name.clone(),
                outcome,
            }
        })
        .collect()
}

/// **Figure 4(c)**: intersection of the mini-GROMACS specialization points with the
/// discovered features of every evaluation system.
pub fn intersection_summary() -> BTreeMap<String, Vec<String>> {
    let project = gromacs::project();
    let document = from_project(&project);
    let mut summary = BTreeMap::new();
    for system in SystemModel::all_evaluation_systems() {
        let features = discover(&system);
        let common = intersect(&document, &features);
        let mut lines = Vec::new();
        lines.push(format!(
            "GPU backends: {}",
            join(common.choices(xaas_specs::SpecCategory::GpuBackend))
        ));
        lines.push(format!(
            "Vectorization: {}",
            join(common.choices(xaas_specs::SpecCategory::Vectorization))
        ));
        lines.push(format!(
            "FFT: {}",
            join(common.choices(xaas_specs::SpecCategory::Fft))
        ));
        lines.push(format!(
            "Excluded: {}",
            common
                .excluded
                .iter()
                .map(|e| format!("{} ({})", e.name, e.reason))
                .collect::<Vec<_>>()
                .join("; ")
        ));
        summary.insert(system.name.clone(), lines);
    }
    summary
}

fn join(items: Vec<&str>) -> String {
    if items.is_empty() {
        "none".to_string()
    } else {
        items.join(", ")
    }
}

/// The container platform architecture matching a system's CPU family.
pub fn architecture_for(system: &SystemModel) -> xaas_container::Architecture {
    xaas::source_container::architecture_of(system)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shapes_hold() {
        let panels = figure2();
        assert_eq!(panels.len(), 2);
        let x86 = &panels[0].bars;
        assert!(
            x86[0].compute_seconds > 4.0 * x86[1].compute_seconds,
            "None >> SSE2"
        );
        assert!(
            x86.last().unwrap().compute_seconds < x86[1].compute_seconds,
            "AVX-512 fastest"
        );
        let arm = &panels[1].bars;
        assert!(arm[0].compute_seconds > 2.5 * arm[1].compute_seconds);
        assert!(
            arm[2].compute_seconds < arm[1].compute_seconds,
            "NEON beats SVE on Grace"
        );
    }

    #[test]
    fn table4_has_seven_models_with_sane_metrics() {
        let rows = table4(5);
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(row.f1.max <= 1.0 && row.f1.min >= 0.0);
            assert!(row.cost_usd > 0.0);
            assert!(row.tokens_in > 0.0);
        }
        let gemini = rows
            .iter()
            .find(|r| r.model.contains("gemini-flash-2"))
            .unwrap();
        let haiku = rows.iter().find(|r| r.model.contains("haiku")).unwrap();
        assert!(gemini.f1.median > haiku.f1.median);
    }

    #[test]
    fn generalization_normalization_helps() {
        let rows = table4_generalization(5);
        assert!(!rows.is_empty());
        for row in rows {
            assert!(row.f1_normalized.median >= row.f1_raw.median);
        }
    }

    #[test]
    fn figure11_xaas_matches_specialized_and_beats_naive() {
        let panels = figure11();
        assert_eq!(panels.len(), 3);
        for panel in panels {
            let get = |label: &str| {
                panel
                    .bars
                    .iter()
                    .find(|b| b.label == label)
                    .map(|b| b.compute_seconds)
                    .unwrap_or(f64::NAN)
            };
            let naive = get("Naive Build");
            let specialized = get("Specialized");
            let xaas = get("XaaS Source Container");
            assert!(naive > 1.5 * specialized, "{}", panel.title);
            assert!((xaas / specialized - 1.0).abs() < 0.05, "{}", panel.title);
        }
    }

    #[test]
    fn figure12_cpu_specialization_beats_portable_by_about_2x() {
        let panels = figure12_cpu();
        assert_eq!(panels.len(), 2);
        for panel in &panels {
            let portable = panel.bars.first().unwrap();
            let best_ir = panel
                .bars
                .iter()
                .filter(|b| b.label.starts_with("XaaS IR"))
                .map(|b| b.compute_seconds)
                .fold(f64::INFINITY, f64::min);
            let ratio = portable.compute_seconds / best_ir;
            assert!(
                ratio > 1.4,
                "{}: IR specialization should win by >1.4x, got {ratio}",
                panel.title
            );
            // The specialized container and the best IR deployment are equivalent.
            let specialized = panel.bars.last().unwrap().compute_seconds;
            assert!((best_ir / specialized - 1.0).abs() < 0.1, "{}", panel.title);
        }
    }

    #[test]
    fn figure12_gpu_docker_and_xaas_ir_are_equivalent() {
        let panels = figure12_gpu();
        assert_eq!(panels.len(), 4);
        for panel in panels {
            let docker = panel.bars[0].compute_seconds;
            let xaas_time = panel.bars[1].compute_seconds;
            assert!((xaas_time / docker - 1.0).abs() < 0.05, "{}", panel.title);
            assert!(panel.bars.iter().all(|b| b.used_gpu), "{}", panel.title);
        }
    }

    #[test]
    fn tu_reduction_rows_reproduce_hypothesis_1() {
        let rows = tu_reduction();
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(
                row.ir_files_built < row.total_translation_units,
                "{}",
                row.sweep
            );
            assert!(
                row.without_vectorization_delay >= row.ir_files_built,
                "{}",
                row.sweep
            );
            assert!(
                row.without_openmp_detection >= row.ir_files_built,
                "{}",
                row.sweep
            );
        }
        let isa_sweep = &rows[0];
        assert!(isa_sweep.reduction_percent > 60.0);
    }

    #[test]
    fn fleet_specialization_beats_cold_deployments() {
        let experiment = fleet_specialization();
        assert_eq!(experiment.systems.len(), 4);
        assert!(
            experiment.fleet_actions < experiment.cold_actions,
            "shared cache must perform strictly fewer actions: fleet {} vs cold {}",
            experiment.fleet_actions,
            experiment.cold_actions
        );
        assert!(experiment.fleet_hit_rate > 0.0 && experiment.fleet_hit_rate < 1.0);
        assert_eq!(
            experiment.warm_rerun_actions, 0,
            "warm fleet compiles nothing"
        );
        assert!((experiment.warm_rerun_hit_rate - 1.0).abs() < 1e-12);
        assert_eq!(experiment.jobs_executed, 4);
        assert_eq!(experiment.jobs_deduplicated, 0);
        // Ault23 and Ault01-04 share AVX-512: at least one of them is fully cached
        // except for its system-dependent sources.
        let avx512: Vec<_> = experiment
            .systems
            .iter()
            .filter(|row| row.simd == "AVX_512")
            .collect();
        assert_eq!(avx512.len(), 2);
        assert!(avx512.iter().any(|row| row.fleet_actions_cached > 0));
        // Union-vs-sequential A/B: one submission per wave, never more actions
        // than the sequential strategy, byte-identical images.
        let strategies = &experiment.strategies;
        assert_eq!(strategies.union_graph.submissions, 1);
        assert_eq!(strategies.sequential.submissions, experiment.jobs_executed);
        assert!(
            strategies.union_graph.trace_actions <= strategies.sequential.trace_actions,
            "union wave must not execute more actions: {} vs {}",
            strategies.union_graph.trace_actions,
            strategies.sequential.trace_actions
        );
        assert_eq!(
            strategies.union_graph.actions_executed, strategies.sequential.actions_executed,
            "strategies execute the same cache misses"
        );
        assert!(
            strategies.union_graph.stage_depth < strategies.sequential.stage_depth,
            "one wave imposes fewer serial stages than per-job barriers: {} vs {}",
            strategies.union_graph.stage_depth,
            strategies.sequential.stage_depth
        );
        assert!(strategies.byte_identical);
    }

    #[test]
    fn engine_parallelism_is_byte_identical_with_fewer_serial_stages() {
        let experiment = engine_parallelism();
        assert_eq!(experiment.configurations, 4);
        assert!(experiment.byte_identical, "{experiment:?}");
        assert!(experiment.same_action_set);
        assert!(
            experiment.parallel_stage_depth < experiment.serial_stages,
            "the DAG must need fewer serial stages than the seed path: {} vs {}",
            experiment.parallel_stage_depth,
            experiment.serial_stages
        );
        assert!(experiment.compile_actions_executed > 0);
        assert_eq!(
            experiment.compile_actions_cached, 0,
            "uncached engines miss"
        );
        assert!(experiment.actions_by_kind.contains_key("ir-lower"));
        assert_eq!(experiment.actions_by_kind["commit"], 1);
    }

    #[test]
    fn network_rows_match_section_6_5() {
        let rows = network();
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.configuration.contains(label))
                .unwrap()
        };
        assert!((get("Bare-metal").peak_bandwidth_gbs - 64.0).abs() < 1e-9);
        assert!((get("OpenMPI via cxi").peak_bandwidth_gbs - 23.5).abs() < 1e-9);
        assert!(get("OpenMPI via LinkX").peak_bandwidth_gbs > 64.0);
    }

    #[test]
    fn gpu_compat_and_intersection_summaries() {
        let compat = gpu_compatibility();
        assert_eq!(compat.len(), 3);
        assert!(compat.iter().any(|r| r.outcome == "jit-from-ptx"));
        let summary = intersection_summary();
        assert!(summary["Ault23"].iter().any(|l| l.contains("CUDA")));
        assert!(summary["Aurora"].iter().any(|l| l.contains("SYCL")));
    }
}
