//! Table 4 benchmark: simulated-LLM specialization discovery and scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xaas_apps::gromacs;
use xaas_bench::{render, table4, table4_generalization};
use xaas_specs::{analyze, from_project, score, AnalysisConfig, SimulatedLlm};

fn bench_table4(c: &mut Criterion) {
    println!("{}", render::render_table4(&table4(10)));
    println!(
        "{}",
        render::render_generalization(&table4_generalization(10))
    );

    c.bench_function("table04/full_table_10_runs", |b| {
        b.iter(|| black_box(table4(10)));
    });

    let project = gromacs::project();
    let truth = from_project(&project);
    let config = AnalysisConfig::default();
    let mut group = c.benchmark_group("table04/single_model_run_and_score");
    for model_name in [
        "gemini-flash-2-exp",
        "claude-3-7-sonnet-20250219",
        "gpt-4o-2024-08-06",
    ] {
        let model = SimulatedLlm::by_name(model_name).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(model_name),
            &model,
            |b, model| {
                b.iter(|| {
                    let result = analyze(model, &project.build_script, &truth, &config, 0);
                    black_box(score(&result.document, &truth, true))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_table4
}
criterion_main!(benches);
