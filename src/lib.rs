//! Integration surface of the XaaS Containers reproduction.
//!
//! This root crate exists to host the cross-crate integration tests
//! (`tests/`), the property tests, and the runnable examples (`examples/`).
//! It re-exports the workspace crates so downstream experimentation can depend
//! on a single package.

pub use xaas;
pub use xaas_apps as apps;
pub use xaas_buildsys as buildsys;
pub use xaas_container as container;
pub use xaas_hpcsim as hpcsim;
pub use xaas_specs as specs;
pub use xaas_xir as xir;
