//! The staged action-graph engine: one executor for every XaaS pipeline.
//!
//! The paper's source and IR containers are two points on one pipeline —
//! preprocess → (OpenMP-aware dedup) → lower-to-IR → specialize → link — and this
//! module makes that pipeline an explicit, cache-aware artifact instead of three
//! near-duplicate monolithic functions. The pieces:
//!
//! * [`graph`] — [`ActionGraph`]: a DAG of [`ActionKind`]-tagged nodes with explicit
//!   dependency edges, built stage by stage by the pipeline drivers;
//! * [`executor`] — a work-stealing executor that runs the ready frontier across
//!   worker threads, routes keyed nodes through a
//!   [`CacheBackend`](xaas_container::CacheBackend) (an
//!   [`ActionCache`](xaas_container::ActionCache) or the always-compute
//!   [`NoCache`](xaas_container::NoCache)), and isolates failures to the failed
//!   node's transitive dependents;
//! * [`trace`] — [`ActionTrace`]: a deterministic, node-ordered record of what ran
//!   and what the cache absorbed, from which the historical [`ActionSummary`]
//!   counters are derived.
//!
//! The drivers in [`ir_container`](crate::ir_container), [`deploy`](crate::deploy),
//! [`source_container`](crate::source_container), and
//! [`scheduler`](crate::scheduler) all construct graphs and submit them to one
//! shared [`Engine`]; intra-build parallelism (compiling the translation units of a
//! configuration sweep concurrently) falls out of the executor rather than being
//! special-cased per pipeline.
//!
//! ```
//! use xaas::engine::{ActionGraph, ActionKind, Engine};
//! use xaas_container::{ImageStore, NoCache};
//! use std::sync::Arc;
//!
//! let engine = Engine::new(Arc::new(NoCache::new(ImageStore::new())));
//! let mut graph: ActionGraph<'_, std::convert::Infallible> = ActionGraph::new();
//! let hello = graph.add(ActionKind::Preprocess, "hello", &[], |_| Ok(b"hi".to_vec()));
//! let shout = graph.add(ActionKind::Link, "shout", &[hello], |inputs| {
//!     Ok(inputs.dep(0).to_ascii_uppercase())
//! });
//! let run = engine.run(graph);
//! assert_eq!(run.output(shout), Some(&b"HI"[..]));
//! ```

pub mod executor;
pub mod graph;
pub mod plan;
pub mod trace;

pub use executor::{ActionOutputs, GraphRun, NodeOutcome};
pub use graph::{ActionGraph, ActionId, ActionInputs};
pub use plan::{add_commit_action, LinkSlot, PreprocessPlanner};
pub use trace::{ActionKind, ActionRecord, ActionSummary, ActionTrace};

use std::sync::Arc;
use xaas_container::{ActionCache, CacheBackend, CacheStats, ImageStore, NoCache};

/// The shared execution engine: a worker pool plus a cache backend.
///
/// Cloning is cheap (the backend is shared); every pipeline entry point of the crate
/// ultimately executes through an `Engine`.
#[derive(Clone)]
pub struct Engine {
    cache: Arc<dyn CacheBackend>,
    workers: usize,
}

impl Engine {
    /// An engine over `cache` with a worker count derived from the host parallelism
    /// (clamped to `[2, 8]` — actions are small compile steps).
    pub fn new(cache: Arc<dyn CacheBackend>) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        Self { cache, workers }
    }

    /// An engine that memoizes every keyed action in `cache`.
    pub fn cached(cache: &ActionCache) -> Self {
        Self::new(Arc::new(cache.clone()))
    }

    /// An engine that never caches: every action executes, artifacts and images land
    /// in `store`. This is the explicit replacement for handing the pipelines a
    /// private empty [`ActionCache`].
    pub fn uncached(store: &ImageStore) -> Self {
        Self::new(Arc::new(NoCache::new(store.clone())))
    }

    /// Override the worker count (at least 1). One worker executes the graph with no
    /// concurrency — the reference schedule the property tests compare parallel runs
    /// against. (Even then, execution order is dependency-driven, not node order;
    /// outputs and traces are assembled in node order regardless of schedule.)
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The cache backend every keyed action routes through.
    pub fn cache(&self) -> &dyn CacheBackend {
        self.cache.as_ref()
    }

    /// The backend's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.backend_stats()
    }

    /// The content-addressed store behind the cache (images are committed here).
    pub fn store(&self) -> &ImageStore {
        self.cache.store()
    }

    /// Execute `graph`: run the ready frontier across the worker pool, route keyed
    /// nodes through the cache, record a deterministic [`ActionTrace`], and isolate
    /// failures to their transitive dependents.
    pub fn run<'env, E: Send>(&self, graph: ActionGraph<'env, E>) -> GraphRun<E> {
        executor::run_graph(graph, self.cache.as_ref(), self.workers)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("cache", &self.cache.backend_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use xaas_container::BuildKey;

    fn key(name: &str) -> BuildKey {
        BuildKey::new(name, "xir.ir", "opts", "toolchain-test")
    }

    #[test]
    fn diamond_graph_delivers_dependency_outputs_in_order() {
        let engine = Engine::uncached(&ImageStore::new()).with_workers(4);
        let mut graph: ActionGraph<'_, std::convert::Infallible> = ActionGraph::new();
        let left = graph.add(ActionKind::Preprocess, "left", &[], |_| Ok(b"L".to_vec()));
        let right = graph.add(ActionKind::Preprocess, "right", &[], |_| Ok(b"R".to_vec()));
        let join = graph.add(ActionKind::Link, "join", &[left, right], |inputs| {
            let mut combined = inputs.dep(0).to_vec();
            combined.extend_from_slice(inputs.dep(1));
            Ok(combined)
        });
        let commit = graph.add(ActionKind::Commit, "commit", &[join], |inputs| {
            assert_eq!(inputs.len(), 1);
            Ok(inputs.dep(0).to_vec())
        });
        let run = engine.run(graph);
        assert!(run.succeeded());
        assert_eq!(run.output(commit), Some(&b"LR"[..]));
        // Trace is in node order with the declared kinds, regardless of scheduling.
        let kinds: Vec<ActionKind> = run.trace.records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ActionKind::Preprocess,
                ActionKind::Preprocess,
                ActionKind::Link,
                ActionKind::Commit
            ]
        );
        assert_eq!(run.trace.stage_depth, 3);
    }

    #[test]
    fn failures_skip_dependents_but_not_independent_work() {
        let engine = Engine::uncached(&ImageStore::new()).with_workers(2);
        let mut graph: ActionGraph<'_, String> = ActionGraph::new();
        let bad = graph.add(ActionKind::Preprocess, "bad", &[], |_| {
            Err("boom".to_string())
        });
        let downstream = graph.add(ActionKind::Link, "downstream", &[bad], |_| Ok(vec![]));
        let independent = graph.add(ActionKind::Preprocess, "independent", &[], |_| {
            Ok(b"fine".to_vec())
        });
        let run = engine.run(graph);
        assert!(!run.succeeded());
        assert!(matches!(&run.outcomes[bad], NodeOutcome::Failed(e) if e == "boom"));
        assert!(matches!(
            run.outcomes[downstream],
            NodeOutcome::Skipped { root } if root == bad
        ));
        assert_eq!(run.output(independent), Some(&b"fine"[..]));
        // into_outputs surfaces the typed error of the failing node.
        assert_eq!(run.into_outputs().unwrap_err(), "boom");
    }

    #[test]
    fn panicking_actions_propagate_to_the_caller_instead_of_hanging() {
        let engine = Engine::uncached(&ImageStore::new()).with_workers(3);
        let mut graph: ActionGraph<'_, String> = ActionGraph::new();
        graph.add(ActionKind::Preprocess, "fine", &[], |_| Ok(vec![1]));
        let boom = graph.add(ActionKind::Preprocess, "boom", &[], |_| {
            panic!("kaboom in action")
        });
        graph.add(ActionKind::Link, "downstream", &[boom], |_| Ok(vec![]));
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(graph)))
            .expect_err("the action panic must re-raise on the caller thread");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("kaboom in action")
        );

        // Keyed actions behave the same: the panic crosses the cache backend.
        let mut keyed: ActionGraph<'_, String> = ActionGraph::new();
        keyed.add_cached(ActionKind::IrLower, "boom", key("p"), &[], |_| {
            panic!("keyed kaboom")
        });
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(keyed)))
            .expect_err("keyed action panic must re-raise");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("keyed kaboom")
        );
    }

    #[test]
    fn keyed_actions_route_through_the_cache_backend() {
        let store = ImageStore::new();
        let cache = ActionCache::new(store.clone());
        let engine = Engine::cached(&cache).with_workers(3);
        let calls = AtomicUsize::new(0);

        fn build<'env>(
            label: &str,
            calls: &'env AtomicUsize,
        ) -> ActionGraph<'env, std::convert::Infallible> {
            let mut graph = ActionGraph::new();
            for unit in ["a", "b", "c"] {
                graph.add_cached(
                    ActionKind::IrLower,
                    format!("{label}:{unit}"),
                    key(unit),
                    &[],
                    move |_| {
                        calls.fetch_add(1, Ordering::SeqCst);
                        Ok(format!("ir:{unit}").into_bytes())
                    },
                );
            }
            graph
        }
        let cold = engine.run(build("cold", &calls));
        assert!(cold.succeeded());
        assert_eq!(
            cold.trace.summary(),
            ActionSummary {
                executed: 3,
                cached: 0
            }
        );
        let warm = engine.run(build("warm", &calls));
        assert_eq!(
            warm.trace.summary(),
            ActionSummary {
                executed: 0,
                cached: 3
            }
        );
        assert_eq!(calls.load(Ordering::SeqCst), 3, "warm run computes nothing");
        assert_eq!(warm.output(0), cold.output(0));
        // Identity sets agree even though the cached flags differ.
        assert_ne!(cold.trace.records[0].label, warm.trace.records[0].label);
        assert_eq!(
            cold.trace.records[0].key_digest,
            warm.trace.records[0].key_digest
        );
    }

    #[test]
    fn parallel_and_serial_runs_produce_identical_outputs_and_traces() {
        fn build_graph(counter: &AtomicUsize) -> ActionGraph<'_, std::convert::Infallible> {
            let mut graph = ActionGraph::new();
            let mut lowers = Vec::new();
            for unit in 0..24 {
                let id = graph.add(
                    ActionKind::IrLower,
                    format!("unit{unit:02}"),
                    &[],
                    move |_| Ok(vec![unit as u8; 4]),
                );
                lowers.push(id);
            }
            graph.add(ActionKind::Link, "link", &lowers, move |inputs| {
                counter.fetch_add(1, Ordering::SeqCst);
                Ok(inputs.iter().flat_map(|b| b.to_vec()).collect())
            });
            graph
        }
        let counter = AtomicUsize::new(0);
        let serial = Engine::uncached(&ImageStore::new())
            .with_workers(1)
            .run(build_graph(&counter));
        let parallel = Engine::uncached(&ImageStore::new())
            .with_workers(8)
            .run(build_graph(&counter));
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        assert_eq!(serial.trace, parallel.trace);
        assert_eq!(serial.output(24), parallel.output(24));
        assert_eq!(serial.trace.stage_depth, 2);
        assert_eq!(serial.trace.len(), 25);
    }
}
