//! The XIR intermediate representation.
//!
//! XIR is a typed, register-based IR with *structured* control flow (loops and
//! conditionals remain explicit regions rather than a basic-block CFG). Keeping loops
//! structured is what lets the deployment-time vectoriser re-plan lane widths for the
//! selected ISA — the property the paper relies on when it argues that vectorisation
//! must be delayed until the target is known (Section 4.3).

use crate::ast::{BinOp, Type};
use crate::memo::DigestCell;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An operand of an IR operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// A named virtual register or local variable.
    Reg(String),
    /// Integer immediate.
    ImmInt(i64),
    /// Floating-point immediate.
    ImmFloat(f64),
}

impl Operand {
    /// The register name if this operand is a register.
    pub fn reg(&self) -> Option<&str> {
        match self {
            Operand::Reg(name) => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(name) => write!(f, "%{name}"),
            Operand::ImmInt(v) => write!(f, "{v}"),
            Operand::ImmFloat(v) => write!(f, "{v:?}"),
        }
    }
}

/// One IR operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IrOp {
    /// `dest = imm`
    Const {
        /// Destination register.
        dest: String,
        /// Immediate value.
        value: Operand,
    },
    /// `dest = src`
    Move {
        /// Destination register.
        dest: String,
        /// Source operand.
        src: Operand,
    },
    /// `dest = lhs op rhs`
    Bin {
        /// Destination register.
        dest: String,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dest = -operand` or `dest = !operand`
    Un {
        /// Destination register.
        dest: String,
        /// Logical not (true) or arithmetic negation (false).
        not: bool,
        /// Operand.
        operand: Operand,
    },
    /// `dest = base[index]`
    Load {
        /// Destination register.
        dest: String,
        /// Buffer name.
        base: String,
        /// Index operand.
        index: Operand,
    },
    /// `base[index] = value`
    Store {
        /// Buffer name.
        base: String,
        /// Index operand.
        index: Operand,
        /// Value operand.
        value: Operand,
    },
    /// `dest = call callee(args…)`
    Call {
        /// Destination register (None for void calls).
        dest: Option<String>,
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// A counted loop region: `for (var = start; var < end; var += step) body`.
    Loop {
        /// Loop induction variable (a register).
        var: String,
        /// Start operand.
        start: Operand,
        /// Exclusive end operand.
        end: Operand,
        /// Constant step (always positive).
        step: i64,
        /// Whether an `omp parallel for` pragma marks the loop as thread-parallel.
        parallel: bool,
        /// Whether an `omp simd` pragma hints vectorisation.
        simd_hint: bool,
        /// Vector width assigned by the vectoriser (None until lowering).
        vector_width: Option<u32>,
        /// Set when early scalar optimisation destroyed the structured form, capping later
        /// re-vectorisation (models the paper's "optimisations must be delayed" finding).
        prevectorization_blocked: bool,
        /// Body operations.
        body: Vec<IrOp>,
    },
    /// A generic while loop (not vectorisable).
    While {
        /// Operations recomputing the condition before each iteration.
        cond_ops: Vec<IrOp>,
        /// Register holding the condition result.
        cond: String,
        /// Body operations.
        body: Vec<IrOp>,
    },
    /// Conditional region.
    If {
        /// Register holding the condition.
        cond: String,
        /// Then branch.
        then_body: Vec<IrOp>,
        /// Else branch.
        else_body: Vec<IrOp>,
    },
    /// Return from the function.
    Return {
        /// Optional return value.
        value: Option<Operand>,
    },
}

impl IrOp {
    /// The destination register written by this op, if it is a simple value-producing op.
    pub fn dest(&self) -> Option<&str> {
        match self {
            IrOp::Const { dest, .. }
            | IrOp::Move { dest, .. }
            | IrOp::Bin { dest, .. }
            | IrOp::Un { dest, .. }
            | IrOp::Load { dest, .. } => Some(dest),
            IrOp::Call { dest, .. } => dest.as_deref(),
            _ => None,
        }
    }

    /// Whether this op has side effects beyond writing its destination register.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            IrOp::Store { .. }
                | IrOp::Call { .. }
                | IrOp::Loop { .. }
                | IrOp::While { .. }
                | IrOp::If { .. }
                | IrOp::Return { .. }
        )
    }

    /// Registers read by this op (does not recurse into nested regions).
    pub fn uses(&self, out: &mut Vec<String>) {
        let mut push = |o: &Operand| {
            if let Operand::Reg(name) = o {
                out.push(name.clone());
            }
        };
        match self {
            IrOp::Const { value, .. } => push(value),
            IrOp::Move { src, .. } => push(src),
            IrOp::Bin { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
            IrOp::Un { operand, .. } => push(operand),
            IrOp::Load { index, .. } => push(index),
            IrOp::Store { index, value, .. } => {
                push(index);
                push(value);
            }
            IrOp::Call { args, .. } => {
                for a in args {
                    push(a);
                }
            }
            IrOp::Loop { start, end, .. } => {
                push(start);
                push(end);
            }
            IrOp::While { cond, .. } => out.push(cond.clone()),
            IrOp::If { cond, .. } => out.push(cond.clone()),
            IrOp::Return { value: Some(v) } => push(v),
            IrOp::Return { value: None } => {}
        }
    }
}

/// A function in IR form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrFunction {
    /// Function name.
    pub name: String,
    /// Exported kernel entry point.
    pub is_kernel: bool,
    /// Return type.
    pub return_type: Type,
    /// Parameters (name, type).
    pub params: Vec<(String, Type)>,
    /// Body operations.
    pub body: Vec<IrOp>,
}

impl IrFunction {
    /// Count all operations, recursing into regions.
    pub fn op_count(&self) -> usize {
        fn count(ops: &[IrOp]) -> usize {
            ops.iter()
                .map(|op| match op {
                    IrOp::Loop { body, .. } => 1 + count(body),
                    IrOp::While { cond_ops, body, .. } => 1 + count(cond_ops) + count(body),
                    IrOp::If {
                        then_body,
                        else_body,
                        ..
                    } => 1 + count(then_body) + count(else_body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }

    /// Collect all loops (depth-first) with a mutable visitor.
    pub fn visit_loops_mut(&mut self, visitor: &mut dyn FnMut(&mut IrOp)) {
        fn walk(ops: &mut [IrOp], visitor: &mut dyn FnMut(&mut IrOp)) {
            for op in ops {
                match op {
                    IrOp::Loop { .. } => {
                        visitor(op);
                        if let IrOp::Loop { body, .. } = op {
                            walk(body, visitor);
                        }
                    }
                    IrOp::While { cond_ops, body, .. } => {
                        walk(cond_ops, visitor);
                        walk(body, visitor);
                    }
                    IrOp::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, visitor);
                        walk(else_body, visitor);
                    }
                    _ => {}
                }
            }
        }
        walk(&mut self.body, visitor);
    }

    /// Collect immutable references to all loops (depth-first).
    pub fn loops(&self) -> Vec<&IrOp> {
        fn walk<'a>(ops: &'a [IrOp], out: &mut Vec<&'a IrOp>) {
            for op in ops {
                match op {
                    IrOp::Loop { body, .. } => {
                        out.push(op);
                        walk(body, out);
                    }
                    IrOp::While { cond_ops, body, .. } => {
                        walk(cond_ops, out);
                        walk(body, out);
                    }
                    IrOp::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, out);
                        walk(else_body, out);
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }

    /// Names of functions called by this function.
    pub fn callees(&self) -> Vec<String> {
        fn walk(ops: &[IrOp], out: &mut Vec<String>) {
            for op in ops {
                match op {
                    IrOp::Call { callee, .. } => out.push(callee.clone()),
                    IrOp::Loop { body, .. } => walk(body, out),
                    IrOp::While { cond_ops, body, .. } => {
                        walk(cond_ops, out);
                        walk(body, out);
                    }
                    IrOp::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, out);
                        walk(else_body, out);
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out.sort();
        out.dedup();
        out
    }
}

/// Compilation metadata carried with an IR module (provenance for the XaaS pipeline).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleMetadata {
    /// Preprocessor definitions that were active.
    pub definitions: Vec<String>,
    /// Whether OpenMP lowering was enabled (`-fopenmp`).
    pub openmp: bool,
    /// Optimisation level recorded as a string (`O0`, `O2`, `O3`).
    pub opt_level: String,
    /// Target-specific flags that were *dropped* and delayed to deployment (e.g. `-mavx2`).
    pub delayed_flags: Vec<String>,
}

/// A compiled translation unit in IR form — the unit stored inside IR containers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrModule {
    /// Module name (usually the source path).
    pub name: String,
    /// Source file this module was produced from.
    pub source_file: String,
    /// Functions.
    pub functions: Vec<IrFunction>,
    /// Compilation metadata.
    pub metadata: ModuleMetadata,
    /// Memoized [`content_digest`](IrModule::content_digest) — an identity cache,
    /// ignored by equality and serialization; cloning resets it (see
    /// [`crate::memo::DigestCell`]).
    #[serde(default, skip_serializing_if = "DigestCell::skip")]
    pub digest_memo: DigestCell,
}

impl IrModule {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&IrFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a function mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut IrFunction> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Total operation count across functions.
    pub fn op_count(&self) -> usize {
        self.functions.iter().map(IrFunction::op_count).sum()
    }

    /// Number of loops across all functions.
    pub fn loop_count(&self) -> usize {
        self.functions.iter().map(|f| f.loops().len()).sum()
    }

    /// A stable hexadecimal content digest of the module (identical to the bitcode
    /// content identity): same module → same digest, across processes and sessions.
    /// Build caches key lowered artifacts on this without re-encoding the module.
    ///
    /// The digest is computed once and memoized; mutate a *clone* (which resets the
    /// memo), never a module whose digest was already observed.
    pub fn content_digest(&self) -> String {
        self.digest_memo
            .get_or_init(|| crate::bitcode::content_id(self))
    }

    /// Render a readable textual form (useful in tests and debugging).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "; module {} (from {})\n",
            self.name, self.source_file
        ));
        for f in &self.functions {
            out.push_str(&format!(
                "define {} @{}({}) {{\n",
                f.return_type,
                f.name,
                f.params
                    .iter()
                    .map(|(n, t)| format!("{t} %{n}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            render_ops(&f.body, 1, &mut out);
            out.push_str("}\n");
        }
        out
    }
}

fn render_ops(ops: &[IrOp], indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    for op in ops {
        match op {
            IrOp::Const { dest, value } => out.push_str(&format!("{pad}%{dest} = const {value}\n")),
            IrOp::Move { dest, src } => out.push_str(&format!("{pad}%{dest} = mov {src}\n")),
            IrOp::Bin { dest, op, lhs, rhs } => {
                out.push_str(&format!("{pad}%{dest} = {op:?} {lhs}, {rhs}\n"))
            }
            IrOp::Un { dest, not, operand } => out.push_str(&format!(
                "{pad}%{dest} = {} {operand}\n",
                if *not { "not" } else { "neg" }
            )),
            IrOp::Load { dest, base, index } => {
                out.push_str(&format!("{pad}%{dest} = load {base}[{index}]\n"))
            }
            IrOp::Store { base, index, value } => {
                out.push_str(&format!("{pad}store {base}[{index}] = {value}\n"))
            }
            IrOp::Call { dest, callee, args } => {
                let args = args
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                match dest {
                    Some(d) => out.push_str(&format!("{pad}%{d} = call @{callee}({args})\n")),
                    None => out.push_str(&format!("{pad}call @{callee}({args})\n")),
                }
            }
            IrOp::Loop {
                var,
                start,
                end,
                step,
                parallel,
                vector_width,
                body,
                ..
            } => {
                let mut attrs = Vec::new();
                if *parallel {
                    attrs.push("parallel".to_string());
                }
                if let Some(w) = vector_width {
                    attrs.push(format!("vector_width={w}"));
                }
                out.push_str(&format!(
                    "{pad}loop %{var} = {start} .. {end} step {step} {}{{\n",
                    if attrs.is_empty() {
                        String::new()
                    } else {
                        format!("[{}] ", attrs.join(", "))
                    }
                ));
                render_ops(body, indent + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            IrOp::While { cond, body, .. } => {
                out.push_str(&format!("{pad}while %{cond} {{\n"));
                render_ops(body, indent + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            IrOp::If {
                cond,
                then_body,
                else_body,
            } => {
                out.push_str(&format!("{pad}if %{cond} {{\n"));
                render_ops(then_body, indent + 1, out);
                if !else_body.is_empty() {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    render_ops(else_body, indent + 1, out);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            IrOp::Return { value } => match value {
                Some(v) => out.push_str(&format!("{pad}ret {v}\n")),
                None => out.push_str(&format!("{pad}ret void\n")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axpy_ir() -> IrModule {
        IrModule {
            name: "axpy".into(),
            source_file: "axpy.ck".into(),
            metadata: ModuleMetadata::default(),
            digest_memo: crate::memo::DigestCell::new(),
            functions: vec![IrFunction {
                name: "axpy".into(),
                is_kernel: true,
                return_type: Type::Void,
                params: vec![
                    ("y".into(), Type::FloatPtr),
                    ("x".into(), Type::FloatPtr),
                    ("a".into(), Type::Float),
                    ("n".into(), Type::Int),
                ],
                body: vec![IrOp::Loop {
                    var: "i".into(),
                    start: Operand::ImmInt(0),
                    end: Operand::Reg("n".into()),
                    step: 1,
                    parallel: true,
                    simd_hint: false,
                    vector_width: None,
                    prevectorization_blocked: false,
                    body: vec![
                        IrOp::Load {
                            dest: "t0".into(),
                            base: "x".into(),
                            index: Operand::Reg("i".into()),
                        },
                        IrOp::Bin {
                            dest: "t1".into(),
                            op: BinOp::Mul,
                            lhs: Operand::Reg("a".into()),
                            rhs: Operand::Reg("t0".into()),
                        },
                        IrOp::Load {
                            dest: "t2".into(),
                            base: "y".into(),
                            index: Operand::Reg("i".into()),
                        },
                        IrOp::Bin {
                            dest: "t3".into(),
                            op: BinOp::Add,
                            lhs: Operand::Reg("t2".into()),
                            rhs: Operand::Reg("t1".into()),
                        },
                        IrOp::Store {
                            base: "y".into(),
                            index: Operand::Reg("i".into()),
                            value: Operand::Reg("t3".into()),
                        },
                    ],
                }],
            }],
        }
    }

    #[test]
    fn op_and_loop_counts() {
        let module = axpy_ir();
        assert_eq!(module.loop_count(), 1);
        assert_eq!(module.op_count(), 6);
        assert!(module.function("axpy").is_some());
    }

    #[test]
    fn op_dest_uses_and_side_effects() {
        let op = IrOp::Bin {
            dest: "t".into(),
            op: BinOp::Add,
            lhs: Operand::Reg("a".into()),
            rhs: Operand::ImmInt(1),
        };
        assert_eq!(op.dest(), Some("t"));
        let mut uses = Vec::new();
        op.uses(&mut uses);
        assert_eq!(uses, vec!["a"]);
        assert!(!op.has_side_effects());
        assert!(IrOp::Store {
            base: "y".into(),
            index: Operand::ImmInt(0),
            value: Operand::ImmInt(0)
        }
        .has_side_effects());
    }

    #[test]
    fn text_rendering_mentions_loops_and_stores() {
        let text = axpy_ir().to_text();
        assert!(text.contains("define void @axpy"));
        assert!(text.contains("loop %i"));
        assert!(text.contains("store y"));
        assert!(text.contains("[parallel]"));
    }

    #[test]
    fn serde_roundtrip_preserves_module() {
        let module = axpy_ir();
        let json = serde_json::to_string(&module).unwrap();
        let back: IrModule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, module);
    }

    #[test]
    fn callees_collects_nested_calls() {
        let mut module = axpy_ir();
        module.functions[0].body.push(IrOp::Call {
            dest: None,
            callee: "log_step".into(),
            args: vec![],
        });
        assert_eq!(module.functions[0].callees(), vec!["log_step".to_string()]);
    }
}
