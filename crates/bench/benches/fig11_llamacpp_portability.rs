//! Figure 11 benchmark: llama.cpp portability across the three systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xaas_apps::{llamacpp, llamacpp_baselines, make_executable};
use xaas_bench::{figure11, render};
use xaas_hpcsim::{ExecutionEngine, SystemModel};

fn bench_figure11(c: &mut Criterion) {
    println!(
        "{}",
        render::render_panels("Figure 11: llama.cpp performance portability", &figure11())
    );

    c.bench_function("fig11/all_systems", |b| {
        b.iter(|| black_box(figure11()));
    });

    let workload = llamacpp::benchmark_workload(512, 128);
    let mut group = c.benchmark_group("fig11/execution_model_per_system");
    for system in [
        SystemModel::ault23(),
        SystemModel::aurora(),
        SystemModel::clariden(),
    ] {
        let profiles = make_executable(llamacpp_baselines(&system), &system);
        group.bench_with_input(
            BenchmarkId::from_parameter(system.name.clone()),
            &system,
            |b, system| {
                let engine = ExecutionEngine::new(system);
                b.iter(|| {
                    for profile in &profiles {
                        black_box(engine.execute(&workload, profile).unwrap());
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_figure11
}
criterion_main!(benches);
