//! Multi-tenant service integration: concurrent [`Session`]s through one
//! [`OrchestratorService`] stay deterministic — byte-identical images vs
//! sequential execution, single-flight cache semantics across sessions — while
//! admission control returns typed errors and cross-session actions interleave
//! on the shared ready queue. Every scenario runs under a watchdog so a
//! deadlocked multiplexer fails the suite fast instead of hanging CI.

use proptest::prelude::*;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use xaas::engine::ActionGraph;
use xaas::prelude::*;
use xaas::service::{AdmissionError, OrchestratorService, ServiceError, ServiceLimits};
use xaas_buildsys::OptionAssignment;
use xaas_container::{ActionCache, ImageStore};
use xaas_hpcsim::SystemModel;

/// Watchdog: run `f` on a worker thread and fail loudly if it neither returns
/// nor errors within `secs` (a deadlocked multiplexer would otherwise hang the
/// suite).
fn with_timeout<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("service request must complete (no deadlock) within the timeout")
}

fn lulesh_sweep() -> (xaas_buildsys::ProjectSpec, IrPipelineConfig) {
    let project = xaas_apps::lulesh::project();
    let config = IrPipelineConfig::sweep_options(&project, &["WITH_MPI", "WITH_OPENMP"]);
    (project, config)
}

/// Occupy the service's worker pool with a gated no-op submission, so admitted
/// requests queue behind it deterministically. Returns the release sender and
/// the handle to drain afterwards.
fn occupy_engine(
    service: &OrchestratorService,
) -> (mpsc::Sender<()>, GraphHandle<std::convert::Infallible>) {
    let (release, gate) = mpsc::channel::<()>();
    let gate = Arc::new(Mutex::new(gate));
    let mut graph: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
    graph.add(ActionKind::Preprocess, "gate", &[], move |_| {
        gate.lock().unwrap().recv().ok();
        Ok(vec![0])
    });
    let handle = service
        .orchestrator()
        .engine()
        .submit_graph(graph)
        .expect("analysis-clean graph");
    (release, handle)
}

#[test]
fn concurrent_sessions_with_overlapping_keys_are_single_flight_and_byte_identical() {
    with_timeout(60, || {
        let (project, config) = lulesh_sweep();

        // Sequential baseline: one session builds once.
        let baseline_service = OrchestratorService::builder().workers(2).build();
        let baseline = baseline_service
            .session("solo")
            .submit(IrBuildRequest::new(&project, &config).reference("base:ir"))
            .unwrap();
        let baseline_misses = baseline_service.cache_stats().misses;

        // Four tenants race the same BuildKeys through one shared service.
        let service = OrchestratorService::builder().workers(4).build();
        let tenants = ["alice", "bob", "carol", "dave"];
        let builds: Vec<IrContainerBuild> = std::thread::scope(|scope| {
            let handles: Vec<_> = tenants
                .iter()
                .map(|tenant| {
                    let session = service.session(*tenant);
                    let (project, config) = (&project, &config);
                    scope.spawn(move || {
                        session
                            .submit(
                                IrBuildRequest::new(project, config)
                                    .reference(format!("{tenant}:ir")),
                            )
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (tenant, build) in tenants.iter().zip(&builds) {
            assert_eq!(
                build.image.layers, baseline.image.layers,
                "tenant {tenant} built a different image than the sequential baseline"
            );
            assert_eq!(build.units, baseline.units);
            assert_eq!(build.trace.tenant.as_deref(), Some(*tenant));
        }
        // Single-flight across sessions: every overlapping key computed exactly
        // once service-wide, no matter how the four submissions interleaved.
        assert_eq!(
            service.cache_stats().misses,
            baseline_misses,
            "overlapping keys must compute once across sessions"
        );
        let stats = service.stats();
        assert_eq!(stats.admitted, tenants.len() as u64);
        assert_eq!(stats.in_flight, 0);
    });
}

#[test]
fn admission_control_returns_typed_backpressure_and_rejection() {
    with_timeout(60, || {
        let (project, config) = lulesh_sweep();
        let service = OrchestratorService::builder()
            .workers(1)
            .limits(ServiceLimits::default().per_tenant(1).global(2))
            .build();
        let (release, gate_handle) = occupy_engine(&service);

        let alice = service.session("alice");
        let bob = service.session("bob");
        std::thread::scope(|scope| {
            // Alice's first request is admitted, then parks behind the gate.
            let alice_first = {
                let session = alice.clone();
                let (project, config) = (project.clone(), config.clone());
                scope.spawn(move || {
                    session.submit(IrBuildRequest::new(&project, &config).reference("alice:ir"))
                })
            };
            while service.stats().in_flight < 1 {
                std::thread::yield_now();
            }

            // Her second is refused with per-tenant backpressure...
            let error = alice
                .submit(IrBuildRequest::new(&project, &config).reference("alice:again"))
                .unwrap_err();
            match error {
                ServiceError::Admission(AdmissionError::Backpressure {
                    ref tenant,
                    in_flight,
                    limit,
                }) => {
                    assert_eq!(tenant, "alice");
                    assert_eq!((in_flight, limit), (1, 1));
                }
                other => panic!("expected Backpressure, got {other}"),
            }
            assert!(error.is_backpressure());

            // ...while bob still gets in (fair: the refusal was alice's lane).
            let bob_first = {
                let session = bob.clone();
                let (project, config) = (project.clone(), config.clone());
                scope.spawn(move || {
                    session.submit(IrBuildRequest::new(&project, &config).reference("bob:ir"))
                })
            };
            while service.stats().in_flight < 2 {
                std::thread::yield_now();
            }

            // Global limit reached: even a fresh tenant is rejected outright.
            let error = service
                .session("carol")
                .submit(IrBuildRequest::new(&project, &config).reference("carol:ir"))
                .unwrap_err();
            assert!(
                matches!(
                    error,
                    ServiceError::Admission(AdmissionError::Rejected {
                        in_flight: 2,
                        limit: 2,
                        ..
                    })
                ),
                "expected global Rejected, got {error}"
            );

            release.send(()).unwrap();
            alice_first.join().unwrap().unwrap();
            bob_first.join().unwrap().unwrap();
        });
        gate_handle.wait();

        let stats = service.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.backpressured, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.in_flight, 0);
    });
}

#[test]
fn cross_session_actions_share_the_ready_queue_at_depth_above_one() {
    with_timeout(60, || {
        // One worker: with the gate holding it, both sessions' whole graphs
        // queue together, so dispatched records observe ready_submissions > 1.
        let service = OrchestratorService::builder().workers(1).build();
        let (release, gate_handle) = occupy_engine(&service);

        let (lulesh, lulesh_config) = lulesh_sweep();
        let gromacs = xaas_apps::gromacs::project();
        let gromacs_config = IrPipelineConfig::sweep_options(&gromacs, &["GMX_SIMD"])
            .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"]);

        let (lulesh_build, gromacs_build) = std::thread::scope(|scope| {
            let first = {
                let session = service.session("lulesh-team");
                let (project, config) = (&lulesh, &lulesh_config);
                scope.spawn(move || {
                    session
                        .submit(IrBuildRequest::new(project, config).reference("mx:lulesh"))
                        .unwrap()
                })
            };
            let second = {
                let session = service.session("gromacs-team");
                let (project, config) = (&gromacs, &gromacs_config);
                scope.spawn(move || {
                    session
                        .submit(IrBuildRequest::new(project, config).reference("mx:gromacs"))
                        .unwrap()
                })
            };
            // Both submissions must have queued work before the gate opens.
            while service
                .orchestrator()
                .engine()
                .queue_stats()
                .waiting_submissions
                < 2
            {
                std::thread::yield_now();
            }
            release.send(()).unwrap();
            (first.join().unwrap(), second.join().unwrap())
        });
        gate_handle.wait();

        let depth = lulesh_build
            .trace
            .max_ready_submissions()
            .max(gromacs_build.trace.max_ready_submissions());
        assert!(
            depth > 1,
            "multi-graph queue depth must exceed 1 when two sessions queue together (got {depth})"
        );
        assert_eq!(lulesh_build.trace.tenant.as_deref(), Some("lulesh-team"));
        assert_eq!(gromacs_build.trace.tenant.as_deref(), Some("gromacs-team"));
    });
}

#[test]
fn drain_refuses_new_work_then_resume_reopens() {
    with_timeout(60, || {
        let (project, config) = lulesh_sweep();
        let service = OrchestratorService::builder().workers(2).build();
        let session = service.session("tenant");
        session
            .submit(IrBuildRequest::new(&project, &config).reference("drain:before"))
            .unwrap();

        service.drain();
        let error = session
            .submit(IrBuildRequest::new(&project, &config).reference("drain:refused"))
            .unwrap_err();
        assert!(matches!(
            error,
            ServiceError::Admission(AdmissionError::Draining)
        ));
        service.drain_wait();
        assert_eq!(service.stats().in_flight, 0);
        assert!(service.is_draining());

        service.resume();
        session
            .submit(IrBuildRequest::new(&project, &config).reference("drain:after"))
            .unwrap();
        assert_eq!(service.stats().refused_draining, 1);
    });
}

#[test]
fn fleet_specializer_waves_run_as_service_sessions() {
    with_timeout(60, || {
        let cache = ActionCache::new(ImageStore::new());
        let gromacs = xaas_apps::gromacs::project();
        let config = IrPipelineConfig::sweep_options(&gromacs, &["GMX_SIMD"])
            .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"]);
        let build = IrBuildRequest::new(&gromacs, &config)
            .reference("svc-fleet:ir")
            .submit(&Orchestrator::with_cache(&cache))
            .unwrap();

        let specializer = FleetSpecializer::new(cache).with_workers(2);
        let targets = vec![
            FleetTarget::best_for(
                SystemModel::ault23(),
                OptionAssignment::new().with("GMX_SIMD", "AVX_512"),
            ),
            FleetTarget::best_for(
                SystemModel::ault25(),
                OptionAssignment::new().with("GMX_SIMD", "SSE4.1"),
            ),
        ];
        let report = specializer.specialize_fleet(&build, &gromacs, &targets);
        assert!(report.all_succeeded());
        // The wave ran as the service's "fleet" tenant: admitted through the
        // session, tenant-tagged in the wave trace.
        assert_eq!(report.trace.tenant.as_deref(), Some("fleet"));
        let stats = specializer.service().stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(specializer.session().tenant(), "fleet");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N sessions submitting overlapping `BuildKey`s (same sweep, tenant-varied
    /// deploy selections) through one service produce byte-identical images to
    /// the same requests executed sequentially on a single session — scheduling
    /// and tenancy never leak into artifacts.
    #[test]
    fn concurrent_session_builds_and_deploys_match_sequential_bytes(
        tenants in 2usize..=4,
        mpi_on in any::<bool>(),
        omp_flags in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let (project, config) = lulesh_sweep();
        let mpi = if mpi_on { "ON" } else { "OFF" };
        let selection_for = |index: usize| {
            OptionAssignment::new()
                .with("WITH_MPI", mpi)
                .with("WITH_OPENMP", if omp_flags[index % omp_flags.len()] { "ON" } else { "OFF" })
        };
        let system = SystemModel::ault23();

        // Sequential: one session performs every tenant's requests in order.
        let sequential = OrchestratorService::builder().workers(2).build();
        let solo = sequential.session("solo");
        let seq_build = solo
            .submit(IrBuildRequest::new(&project, &config).reference("prop:ir"))
            .unwrap();
        let seq_deploys: Vec<IrDeployment> = (0..tenants)
            .map(|index| {
                solo.submit(
                    IrDeployRequest::new(&seq_build, &project, &system)
                        .selection(selection_for(index)),
                )
                .unwrap()
            })
            .collect();

        // Concurrent: one session per tenant, all racing the shared service.
        let service = OrchestratorService::builder().workers(4).build();
        let results: Vec<(IrContainerBuild, IrDeployment)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..tenants)
                .map(|index| {
                    let session = service.session(format!("tenant{index}"));
                    let (project, config) = (&project, &config);
                    let system = &system;
                    let selection = selection_for(index);
                    scope.spawn(move || {
                        let build = session
                            .submit(
                                IrBuildRequest::new(project, config)
                                    .reference(format!("prop:ir{index}")),
                            )
                            .unwrap();
                        let deploy = session
                            .submit(
                                IrDeployRequest::new(&build, project, system)
                                    .selection(selection),
                            )
                            .unwrap();
                        (build, deploy)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (index, (build, deploy)) in results.iter().enumerate() {
            prop_assert_eq!(
                &build.image.layers, &seq_build.image.layers,
                "tenant {} build diverged from sequential", index
            );
            prop_assert_eq!(
                &deploy.image.layers, &seq_deploys[index].image.layers,
                "tenant {} deployment diverged from sequential", index
            );
        }
        // Overlapping keys computed once service-wide (single-flight holds
        // across sessions): the concurrent service never computes more than the
        // sequential one did for the same request set.
        prop_assert!(service.cache_stats().misses <= sequential.cache_stats().misses);
    }
}

/// Per-request cache deltas are scoped to the request. Two sessions interleave
/// fleets with *disjoint* keyed actions (different ISAs) through one shared
/// service; each [`FleetReport`]'s cache counters must equal both the counts
/// derived from its own trace and the counts the same request produces when it
/// runs alone. The historical implementation subtracted before/after snapshots
/// of the *shared* backend's counters, silently attributing the other tenant's
/// hits and misses to this request whenever the two overlapped in time.
#[test]
fn per_request_cache_deltas_are_scoped_under_two_session_interleaving() {
    with_timeout(120, || {
        let project = xaas_apps::gromacs::project();
        let config = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"]).with_values(
            "GMX_SIMD",
            &["SSE4.1", "AVX2_256", "AVX_512", "ARM_NEON_ASIMD"],
        );
        let target_for = |system: SystemModel| {
            let simd = system.cpu.best_simd();
            FleetTarget::new(
                system,
                OptionAssignment::new().with("GMX_SIMD", simd.gmx_name()),
                simd,
            )
        };
        // Disjoint keyed work: an x86 system for tenant A, an ARM system for
        // tenant B — no machine-lower or sd-compile key is shared, so each
        // request's standalone counts are its exact expectation regardless of
        // how the two interleave.
        let system_a = SystemModel::ault23;
        let system_b = SystemModel::clariden;

        // Standalone expectations: each fleet alone on an identically warmed
        // (IR build only) service.
        let standalone = |system: fn() -> SystemModel| {
            let service = OrchestratorService::builder().workers(4).build();
            let build = service
                .session("warmup")
                .submit(IrBuildRequest::new(&project, &config).reference("scoped:ir"))
                .unwrap();
            service
                .session("solo")
                .submit_fleet(FleetRequest::new(&build, &project).target(target_for(system())))
                .unwrap()
                .cache
        };
        let expect_a = standalone(system_a);
        let expect_b = standalone(system_b);
        assert!(expect_a.misses > 0 && expect_b.misses > 0);

        // Several rounds of a fresh shared service with both fleets racing:
        // under the old shared-backend subtraction any temporal overlap leaks
        // the other tenant's counters into this report.
        for round in 0..4 {
            let service = OrchestratorService::builder().workers(4).build();
            let build = service
                .session("warmup")
                .submit(IrBuildRequest::new(&project, &config).reference("scoped:ir"))
                .unwrap();
            let barrier = std::sync::Barrier::new(2);
            let (report_a, report_b) = std::thread::scope(|scope| {
                let run = |tenant: &'static str, system: fn() -> SystemModel| {
                    let session = service.session(tenant);
                    let (build, project, barrier) = (&build, &project, &barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        session
                            .submit_fleet(
                                FleetRequest::new(build, project).target(target_for(system())),
                            )
                            .unwrap()
                    })
                };
                let a = run("tenant-a", system_a);
                let b = run("tenant-b", system_b);
                (a.join().unwrap(), b.join().unwrap())
            });

            for (tenant, report, expect) in [("a", &report_a, expect_a), ("b", &report_b, expect_b)]
            {
                // Internal consistency: the delta is derived from this
                // request's own trace records, nothing else.
                let summary = report.trace.summary();
                assert_eq!(
                    report.cache.hits, summary.cached as u64,
                    "round {round} tenant {tenant}: hits beyond own trace"
                );
                assert_eq!(
                    report.cache.misses, summary.executed as u64,
                    "round {round} tenant {tenant}: misses beyond own trace"
                );
                // Cross-run determinism: interleaving with the other tenant
                // never changes this request's own counts.
                assert_eq!(
                    (report.cache.hits, report.cache.misses),
                    (expect.hits, expect.misses),
                    "round {round} tenant {tenant}: concurrent counts diverge from standalone"
                );
            }
        }
    });
}
