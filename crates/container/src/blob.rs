//! Cheaply-clonable, immutable blob handles.
//!
//! Artifact bytes flow through the whole pipeline — store, action cache, engine
//! executor, build/deploy drivers — and used to be copied at every hand-off. A
//! [`Blob`] wraps the bytes in an `Arc<[u8]>` so a clone is a reference-count bump:
//! the store, a cache hit, and every graph node that consumes the output all share
//! one allocation.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// Cloning is O(1) (an atomic increment); the payload is shared and can never be
/// mutated, which is exactly the contract a content-addressed store needs — the
/// bytes behind a digest must not change after insertion.
#[derive(Clone)]
pub struct Blob(Arc<[u8]>);

impl Blob {
    /// Wrap owned bytes. The `Vec`'s buffer is moved into the shared allocation.
    pub fn new(bytes: Vec<u8>) -> Self {
        Blob(Arc::from(bytes))
    }

    /// Copy a borrowed slice into a new blob.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Blob(Arc::from(bytes))
    }

    /// The payload as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Length of the payload in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy the payload out into an owned `Vec<u8>`.
    ///
    /// This is the explicit escape hatch for callers that genuinely need owned
    /// bytes; everything on the hot path should pass the handle along instead.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Whether two handles share the same allocation (not just equal bytes).
    /// Used by tests to prove a path is zero-copy.
    pub fn ptr_eq(a: &Blob, b: &Blob) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Deref for Blob {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Blob {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Blob {
    fn from(bytes: Vec<u8>) -> Self {
        Blob::new(bytes)
    }
}

impl From<&[u8]> for Blob {
    fn from(bytes: &[u8]) -> Self {
        Blob::copy_from_slice(bytes)
    }
}

impl From<String> for Blob {
    fn from(text: String) -> Self {
        Blob::new(text.into_bytes())
    }
}

impl PartialEq for Blob {
    fn eq(&self, other: &Self) -> bool {
        Blob::ptr_eq(self, other) || self.0 == other.0
    }
}

impl Eq for Blob {}

impl PartialEq<[u8]> for Blob {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Blob {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Blob {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Blob {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Blob {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Blob {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl fmt::Debug for Blob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Blob({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Blob::new(b"payload".to_vec());
        let b = a.clone();
        assert!(Blob::ptr_eq(&a, &b));
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        assert!(!a.is_empty());
    }

    #[test]
    fn equal_bytes_in_distinct_allocations_compare_equal() {
        let a = Blob::new(b"same".to_vec());
        let b = Blob::copy_from_slice(b"same");
        assert!(!Blob::ptr_eq(&a, &b));
        assert_eq!(a, b);
        assert_ne!(a, Blob::new(b"other".to_vec()));
    }

    #[test]
    fn compares_against_slices_and_vectors() {
        let blob = Blob::from(b"abc".to_vec());
        assert_eq!(blob, b"abc");
        assert_eq!(blob, *b"abc");
        assert_eq!(blob, b"abc".to_vec());
        assert_eq!(blob, b"abc".as_slice());
        assert_eq!(&blob[..2], b"ab");
    }

    #[test]
    fn deref_and_to_vec_roundtrip() {
        let blob = Blob::from("text".to_string());
        assert_eq!(&blob[..], b"text");
        assert_eq!(blob.to_vec(), b"text".to_vec());
        assert_eq!(blob.as_ref(), b"text");
        let empty = Blob::new(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(format!("{blob:?}"), "Blob(4 bytes)");
    }
}
