//! `reproduce analyze` — the pre-submission static analyzer run over the real
//! driver graphs (GROMACS and LULESH IR builds, deployments, and a fleet
//! wave), emitting every report as JSON, plus the analyzer-overhead
//! measurement the per-PR snapshot records (nanoseconds per node over a
//! union graph shaped like the 2,048-request service load).

use serde::Serialize;
use std::time::Instant;
use xaas::engine::{ActionGraph, AnalysisReport};
use xaas::prelude::*;
use xaas_apps::{gromacs, lulesh};
use xaas_buildsys::OptionAssignment;
use xaas_container::{ActionCache, BuildKey, ImageStore};
use xaas_hpcsim::{SimdLevel, SystemModel};

/// One linted driver graph: the target it came from and the full report.
#[derive(Debug, Clone, Serialize)]
pub struct LintedGraph {
    /// Which driver graph was linted (e.g. `gromacs ir-build stage-A`).
    pub target: String,
    /// Nodes in the analyzed graph.
    pub nodes: usize,
    /// Deny-level diagnostics (nonzero fails `reproduce analyze`).
    pub denies: usize,
    /// Warn-level diagnostics.
    pub warnings: usize,
    /// Note-level diagnostics.
    pub notes: usize,
    /// The full typed report.
    pub report: AnalysisReport,
}

/// The `reproduce analyze` section: every driver graph's lint verdict.
#[derive(Debug, Clone, Serialize)]
pub struct AnalyzeSection {
    /// Per-graph reports.
    pub graphs: Vec<LintedGraph>,
    /// Deny-level diagnostics across all graphs.
    pub total_denies: usize,
    /// Whether every driver graph is free of deny-level diagnostics.
    pub clean: bool,
}

fn lint(target: &str, report: AnalysisReport) -> LintedGraph {
    LintedGraph {
        target: target.to_string(),
        nodes: report.nodes,
        denies: report.denies(),
        warnings: report.warnings(),
        notes: report.notes(),
        report,
    }
}

/// Lint the GROMACS and LULESH driver graphs — IR-build stage-A, a deployment
/// per application, and a two-system GROMACS fleet wave — under the default
/// strict engine. The builds themselves execute once (deploy/fleet lints need
/// a built IR container); every `analyze` call is purely static.
pub fn analyze_driver_graphs() -> AnalyzeSection {
    let orch = Orchestrator::with_cache(&ActionCache::new(ImageStore::new()));

    let lulesh_project = lulesh::project();
    let lulesh_config =
        IrPipelineConfig::sweep_options(&lulesh_project, &["WITH_MPI", "WITH_OPENMP"]);
    let gromacs_project = gromacs::project();
    let gromacs_config = IrPipelineConfig::sweep_options(&gromacs_project, &["GMX_SIMD"])
        .with_values("GMX_SIMD", &["SSE4.1", "AVX2_256", "AVX_512"]);

    let mut graphs = Vec::new();
    graphs.push(lint(
        "lulesh ir-build stage-A",
        IrBuildRequest::new(&lulesh_project, &lulesh_config)
            .analyze(&orch)
            .expect("lulesh stage-A plans"),
    ));
    graphs.push(lint(
        "gromacs ir-build stage-A",
        IrBuildRequest::new(&gromacs_project, &gromacs_config)
            .analyze(&orch)
            .expect("gromacs stage-A plans"),
    ));

    let lulesh_build = IrBuildRequest::new(&lulesh_project, &lulesh_config)
        .reference("analyze:lulesh:ir")
        .submit(&orch)
        .expect("lulesh IR container builds");
    let gromacs_build = IrBuildRequest::new(&gromacs_project, &gromacs_config)
        .reference("analyze:gromacs:ir")
        .submit(&orch)
        .expect("gromacs IR container builds");

    graphs.push(lint(
        "lulesh ir-deploy (ault23)",
        IrDeployRequest::new(&lulesh_build, &lulesh_project, &SystemModel::ault23())
            .select("WITH_MPI", "ON")
            .select("WITH_OPENMP", "ON")
            .analyze(&orch)
            .expect("lulesh deploy plans"),
    ));
    graphs.push(lint(
        "gromacs ir-deploy (ault23, AVX-512)",
        IrDeployRequest::new(&gromacs_build, &gromacs_project, &SystemModel::ault23())
            .selection(OptionAssignment::new().with("GMX_SIMD", SimdLevel::Avx512.gmx_name()))
            .simd(SimdLevel::Avx512)
            .analyze(&orch)
            .expect("gromacs deploy plans"),
    ));
    graphs.push(lint(
        "gromacs fleet union wave (ault23 + ault25)",
        FleetRequest::new(&gromacs_build, &gromacs_project)
            .target(FleetTarget::new(
                SystemModel::ault23(),
                OptionAssignment::new().with("GMX_SIMD", SimdLevel::Avx512.gmx_name()),
                SimdLevel::Avx512,
            ))
            .target(FleetTarget::new(
                SystemModel::ault25(),
                OptionAssignment::new().with("GMX_SIMD", SimdLevel::Avx2_256.gmx_name()),
                SimdLevel::Avx2_256,
            ))
            .analyze(&orch)
            .expect("fleet wave plans"),
    ));

    let total_denies = graphs.iter().map(|g| g.denies).sum();
    AnalyzeSection {
        graphs,
        total_denies,
        clean: total_denies == 0,
    }
}

/// The analyzer-overhead measurement for the per-PR snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct AnalysisOverhead {
    /// Nodes in the synthetic load-shaped union graph.
    pub nodes: usize,
    /// Nanoseconds of analysis per graph node, amortised over enough passes
    /// to dominate timer noise.
    pub ns_per_node: f64,
}

/// Time the full pass pipeline over a union graph shaped like the service
/// load's 2,048-request mixed phase: 2,048 job-tagged four-stage deploy
/// pipelines (preprocess → ir-lower → keyed sd-compile → link) sharing keyed
/// artifacts across jobs, exactly the shape `submit_graph` preflights.
pub fn analysis_overhead() -> AnalysisOverhead {
    const JOBS: usize = 2_048;
    const PASSES: u32 = 8;
    let engine = Engine::cached(&ActionCache::new(ImageStore::new()));
    let mut graph: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
    let mut primaries: Vec<ActionId> = Vec::new();
    for job in 0..JOBS {
        graph.set_job(Some(job));
        let pre = graph.add(ActionKind::Preprocess, format!("pre{job}"), &[], |_| {
            Ok(vec![0])
        });
        let lower = graph.add(ActionKind::IrLower, format!("lower{job}"), &[pre], |_| {
            Ok(vec![0])
        });
        // Jobs share 64 distinct artifact identities; repeats alias the first
        // grafting via an ordering edge, the fleet union-graph pattern.
        let artifact = job % 64;
        let key = BuildKey::new(
            format!("load-artifact-{artifact}"),
            "x86_64",
            "O2",
            "clang-17",
        );
        let deps: Vec<ActionId> = match primaries.get(artifact) {
            Some(&primary) => vec![lower, primary],
            None => vec![lower],
        };
        let compile = graph.add_cached(
            ActionKind::SdCompile,
            format!("compile{job}"),
            key,
            &deps,
            |_| Ok(vec![0]),
        );
        if primaries.len() == artifact {
            primaries.push(compile);
        }
        graph.add(ActionKind::Link, format!("link{job}"), &[compile], |_| {
            Ok(vec![0])
        });
    }
    graph.set_job(None);

    let nodes = graph.len();
    std::hint::black_box(engine.analyze(&graph));
    let started = Instant::now();
    for _ in 0..PASSES {
        std::hint::black_box(engine.analyze(&graph));
    }
    let elapsed_ns = started.elapsed().as_nanos() as f64 / f64::from(PASSES);
    AnalysisOverhead {
        nodes,
        ns_per_node: elapsed_ns / nodes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_driver_graphs_are_deny_free() {
        let section = analyze_driver_graphs();
        assert!(
            section.clean,
            "driver graphs must stay deny-free: {:?}",
            section
                .graphs
                .iter()
                .filter(|g| g.denies > 0)
                .map(|g| &g.target)
                .collect::<Vec<_>>()
        );
        assert!(section.graphs.iter().all(|g| g.nodes > 0));
    }

    #[test]
    fn the_overhead_probe_covers_the_load_shape() {
        let overhead = analysis_overhead();
        assert_eq!(overhead.nodes, 2_048 * 4);
        assert!(overhead.ns_per_node > 0.0);
    }
}
