//! Filesystem layers.
//!
//! A layer is an ordered set of file entries (path → bytes, plus whiteouts for deletions),
//! serialised into a deterministic archive so that identical content always produces the
//! same digest. This mirrors how OCI layers are tar archives addressed by the digest of
//! their bytes, which is the property the XaaS pipeline relies on when it reuses layers
//! between configurations (dependency layers, toolchain layers, IR layers).

use crate::digest::Digest;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Kind of a single entry inside a layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerEntry {
    /// A regular file with content.
    File {
        /// File payload.
        content: Vec<u8>,
        /// Unix-style permission bits (only the executable bit matters for the model).
        mode: u32,
    },
    /// A directory marker.
    Directory,
    /// A symbolic link to another path inside the image.
    Symlink {
        /// Link target.
        target: String,
    },
    /// A whiteout: deletes the path from lower layers when the image is flattened.
    Whiteout,
}

impl LayerEntry {
    /// Size in bytes accounted for this entry.
    pub fn size(&self) -> u64 {
        match self {
            LayerEntry::File { content, .. } => content.len() as u64,
            _ => 0,
        }
    }
}

/// A single filesystem layer: a deterministic map from paths to entries.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable description, recorded in the image history.
    pub created_by: String,
    entries: BTreeMap<String, LayerEntry>,
}

impl Layer {
    /// Create an empty layer with a `created_by` history note.
    pub fn new(created_by: impl Into<String>) -> Self {
        Self {
            created_by: created_by.into(),
            entries: BTreeMap::new(),
        }
    }

    /// Add (or replace) a regular file.
    pub fn add_file(&mut self, path: impl Into<String>, content: impl Into<Vec<u8>>) -> &mut Self {
        self.entries.insert(
            normalize_path(&path.into()),
            LayerEntry::File {
                content: content.into(),
                mode: 0o644,
            },
        );
        self
    }

    /// Add (or replace) an executable file.
    pub fn add_executable(
        &mut self,
        path: impl Into<String>,
        content: impl Into<Vec<u8>>,
    ) -> &mut Self {
        self.entries.insert(
            normalize_path(&path.into()),
            LayerEntry::File {
                content: content.into(),
                mode: 0o755,
            },
        );
        self
    }

    /// Add a text file (convenience wrapper over [`Layer::add_file`]).
    pub fn add_text(&mut self, path: impl Into<String>, content: impl Into<String>) -> &mut Self {
        self.add_file(path, content.into().into_bytes())
    }

    /// Add a directory marker.
    pub fn add_directory(&mut self, path: impl Into<String>) -> &mut Self {
        self.entries
            .insert(normalize_path(&path.into()), LayerEntry::Directory);
        self
    }

    /// Add a symlink.
    pub fn add_symlink(&mut self, path: impl Into<String>, target: impl Into<String>) -> &mut Self {
        self.entries.insert(
            normalize_path(&path.into()),
            LayerEntry::Symlink {
                target: target.into(),
            },
        );
        self
    }

    /// Record a whiteout (deletion of a path provided by a lower layer).
    pub fn add_whiteout(&mut self, path: impl Into<String>) -> &mut Self {
        self.entries
            .insert(normalize_path(&path.into()), LayerEntry::Whiteout);
        self
    }

    /// Number of entries in this layer.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the layer carries no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total byte size of file contents in this layer.
    pub fn size_bytes(&self) -> u64 {
        self.entries.values().map(LayerEntry::size).sum()
    }

    /// Iterate over `(path, entry)` pairs in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &LayerEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Look up an entry by path.
    pub fn get(&self, path: &str) -> Option<&LayerEntry> {
        self.entries.get(&normalize_path(path))
    }

    /// Serialise the layer into a deterministic archive byte stream ("tarball" stand-in).
    ///
    /// The format is a simple length-prefixed record stream; determinism comes from the
    /// `BTreeMap` ordering, so `diff_id` is stable for identical content.
    pub fn to_archive(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.size_bytes() as usize);
        out.extend_from_slice(b"XAASLAYER1");
        write_str(&mut out, &self.created_by);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (path, entry) in &self.entries {
            write_str(&mut out, path);
            match entry {
                LayerEntry::File { content, mode } => {
                    out.push(0);
                    out.extend_from_slice(&mode.to_le_bytes());
                    out.extend_from_slice(&(content.len() as u64).to_le_bytes());
                    out.extend_from_slice(content);
                }
                LayerEntry::Directory => out.push(1),
                LayerEntry::Symlink { target } => {
                    out.push(2);
                    write_str(&mut out, target);
                }
                LayerEntry::Whiteout => out.push(3),
            }
        }
        out
    }

    /// Parse an archive produced by [`Layer::to_archive`].
    pub fn from_archive(bytes: &[u8]) -> Result<Self, LayerError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let magic = cur.take(10)?;
        if magic != b"XAASLAYER1" {
            return Err(LayerError::BadMagic);
        }
        let created_by = cur.read_str()?;
        let count = cur.read_u64()? as usize;
        let mut layer = Layer::new(created_by);
        for _ in 0..count {
            let path = cur.read_str()?;
            let tag = cur.read_u8()?;
            let entry = match tag {
                0 => {
                    let mode = cur.read_u32()?;
                    let len = cur.read_u64()? as usize;
                    let content = cur.take(len)?.to_vec();
                    LayerEntry::File { content, mode }
                }
                1 => LayerEntry::Directory,
                2 => LayerEntry::Symlink {
                    target: cur.read_str()?,
                },
                3 => LayerEntry::Whiteout,
                other => return Err(LayerError::BadEntryTag(other)),
            };
            layer.entries.insert(path, entry);
        }
        Ok(layer)
    }

    /// The diff ID: digest of the uncompressed archive (as in OCI image config `rootfs.diff_ids`).
    pub fn diff_id(&self) -> Digest {
        Digest::of_bytes(&self.to_archive())
    }
}

/// Errors while decoding layer archives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerError {
    /// Archive magic did not match.
    BadMagic,
    /// Unexpected end of archive.
    Truncated,
    /// Unknown entry tag byte.
    BadEntryTag(u8),
    /// Embedded string was not UTF-8.
    BadString,
}

impl fmt::Display for LayerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerError::BadMagic => write!(f, "layer archive has an invalid magic header"),
            LayerError::Truncated => write!(f, "layer archive is truncated"),
            LayerError::BadEntryTag(t) => write!(f, "unknown layer entry tag {t}"),
            LayerError::BadString => write!(f, "layer archive contains a non-UTF-8 string"),
        }
    }
}

impl std::error::Error for LayerError {}

/// A flattened root filesystem assembled from an ordered list of layers.
///
/// The XaaS deployment step flattens the source/IR container plus the newly built layers
/// into the final image root; whiteouts in upper layers remove paths from lower ones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RootFs {
    files: BTreeMap<String, LayerEntry>,
}

impl RootFs {
    /// Flatten layers bottom-to-top.
    pub fn flatten<'a>(layers: impl IntoIterator<Item = &'a Layer>) -> Self {
        let mut files = BTreeMap::new();
        for layer in layers {
            for (path, entry) in layer.iter() {
                match entry {
                    LayerEntry::Whiteout => {
                        files.remove(path);
                        // A whiteout on a directory removes everything below it.
                        let prefix = format!("{}/", path);
                        files.retain(|p: &String, _| !p.starts_with(&prefix));
                    }
                    other => {
                        files.insert(path.to_string(), other.clone());
                    }
                }
            }
        }
        RootFs { files }
    }

    /// Look up a path.
    pub fn get(&self, path: &str) -> Option<&LayerEntry> {
        self.files.get(&normalize_path(path))
    }

    /// Read a file as UTF-8 text.
    pub fn read_text(&self, path: &str) -> Option<String> {
        match self.get(path) {
            Some(LayerEntry::File { content, .. }) => String::from_utf8(content.clone()).ok(),
            _ => None,
        }
    }

    /// All paths currently present.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Paths under a given directory prefix.
    pub fn paths_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        let norm = normalize_path(prefix);
        self.files.keys().filter_map(move |p| {
            if p == &norm || p.starts_with(&format!("{}/", norm)) {
                Some(p.as_str())
            } else {
                None
            }
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the root filesystem holds no entries.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total content size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.files.values().map(LayerEntry::size).sum()
    }
}

/// Normalise a path: leading `/`, no trailing `/`, collapse `//`.
pub fn normalize_path(path: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for part in path.split('/') {
        if part.is_empty() || part == "." {
            continue;
        }
        parts.push(part);
    }
    format!("/{}", parts.join("/"))
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LayerError> {
        if self.pos + n > self.bytes.len() {
            return Err(LayerError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn read_u8(&mut self) -> Result<u8, LayerError> {
        Ok(self.take(1)?[0])
    }
    fn read_u32(&mut self) -> Result<u32, LayerError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn read_u64(&mut self) -> Result<u64, LayerError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn read_str(&mut self) -> Result<String, LayerError> {
        let len = self.read_u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| LayerError::BadString)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_layer() -> Layer {
        let mut l = Layer::new("COPY src /app/src");
        l.add_text("/app/src/main.ck", "kernel main() {}");
        l.add_executable("/usr/bin/xirc", b"\x7fXIR".to_vec());
        l.add_directory("/app/build");
        l.add_symlink("/usr/lib/libfft.so", "/usr/lib/libfft.so.3");
        l
    }

    #[test]
    fn archive_roundtrip_preserves_layer() {
        let layer = sample_layer();
        let archive = layer.to_archive();
        let back = Layer::from_archive(&archive).unwrap();
        assert_eq!(back, layer);
    }

    #[test]
    fn diff_id_is_deterministic_and_content_sensitive() {
        let a = sample_layer();
        let b = sample_layer();
        assert_eq!(a.diff_id(), b.diff_id());
        let mut c = sample_layer();
        c.add_text("/extra", "x");
        assert_ne!(a.diff_id(), c.diff_id());
    }

    #[test]
    fn diff_id_independent_of_insertion_order() {
        let mut a = Layer::new("x");
        a.add_text("/a", "1").add_text("/b", "2");
        let mut b = Layer::new("x");
        b.add_text("/b", "2").add_text("/a", "1");
        assert_eq!(a.diff_id(), b.diff_id());
    }

    #[test]
    fn normalize_path_collapses_components() {
        assert_eq!(normalize_path("app//src/./x"), "/app/src/x");
        assert_eq!(normalize_path("/app/src/"), "/app/src");
        assert_eq!(normalize_path(""), "/");
    }

    #[test]
    fn rootfs_flatten_applies_overrides_and_whiteouts() {
        let mut base = Layer::new("base");
        base.add_text("/etc/os-release", "ubuntu 22.04");
        base.add_text("/opt/mpi/lib/libmpi.so", "generic mpich");
        base.add_text("/opt/mpi/include/mpi.h", "header");

        let mut upper = Layer::new("hook");
        upper.add_text("/opt/mpi/lib/libmpi.so", "cray mpich");
        upper.add_whiteout("/opt/mpi/include");

        let root = RootFs::flatten([&base, &upper]);
        assert_eq!(
            root.read_text("/opt/mpi/lib/libmpi.so").unwrap(),
            "cray mpich"
        );
        assert!(root.get("/opt/mpi/include/mpi.h").is_none());
        assert_eq!(root.read_text("/etc/os-release").unwrap(), "ubuntu 22.04");
    }

    #[test]
    fn rootfs_paths_under_prefix() {
        let root = RootFs::flatten([&sample_layer()]);
        let under: Vec<_> = root.paths_under("/app").collect();
        assert!(under.contains(&"/app/src/main.ck"));
        assert!(under.contains(&"/app/build"));
        assert!(!under.contains(&"/usr/bin/xirc"));
    }

    #[test]
    fn truncated_archive_is_rejected() {
        let archive = sample_layer().to_archive();
        let err = Layer::from_archive(&archive[..archive.len() - 3]).unwrap_err();
        assert_eq!(err, LayerError::Truncated);
        assert_eq!(
            Layer::from_archive(b"NOTALAYERX"),
            Err(LayerError::BadMagic)
        );
    }

    #[test]
    fn layer_size_accounting() {
        let layer = sample_layer();
        assert_eq!(layer.len(), 4);
        assert_eq!(layer.size_bytes(), "kernel main() {}".len() as u64 + 4);
        assert!(!layer.is_empty());
    }
}
