//! # xaas-xir
//!
//! The XIR compiler toolchain: the LLVM/Clang stand-in for the XaaS Containers
//! reproduction.
//!
//! The crate implements a complete, small compiler for the CK kernel language:
//!
//! * [`preprocess`] — `#define`/`#if`/`#include` handling with stable content hashing
//!   (the identity the IR-container pipeline deduplicates on);
//! * [`parse`]/[`ast`] — front-end;
//! * [`openmp`] — AST-level OpenMP construct detection (pipeline stage 3 of Figure 7);
//! * [`lower`]/[`ir`] — a typed, structured IR that can be serialised as [`bitcode`];
//! * [`passes`] — target-independent optimisation, including the deliberately harmful
//!   early scalar unrolling used to demonstrate why optimisation must be delayed;
//! * [`target`] — deployment-time vectorisation and lowering to a [`target::MachineModule`];
//! * [`interp`] — executable semantics for tests and examples.
//!
//! The [`Compiler`] driver ties the stages together the way `clang -c` would, and
//! [`CompileFlags::parse`] classifies command-line flags the way the XaaS pipeline needs:
//! definitions and OpenMP affect the IR, ISA flags are *delayed* until deployment.
//!
//! ```
//! use xaas_xir::{Compiler, CompileFlags};
//!
//! let compiler = Compiler::new();
//! let flags = CompileFlags::parse(["-O3", "-DSCALE=2.0", "-mavx512f"].iter().map(|s| s.to_string()));
//! assert_eq!(flags.delayed_target_flags, vec!["-mavx512f"]);
//! let module = compiler
//!     .compile_to_ir("scale.ck", "kernel void scale(float* x, int n) {\n  for (int i = 0; i < n; i = i + 1) { x[i] = SCALE * x[i]; }\n}", &flags)
//!     .unwrap();
//! assert_eq!(module.loop_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod bitcode;
pub mod interp;
pub mod ir;
pub mod lex;
pub mod lower;
pub mod memo;
pub mod openmp;
pub mod parse;
pub mod passes;
pub mod preprocess;
pub mod target;

use std::collections::BTreeMap;
use std::fmt;

pub use ast::TranslationUnit;
pub use interp::{Interpreter, RunResult, Value};
pub use ir::{IrFunction, IrModule, IrOp, ModuleMetadata, Operand};
pub use memo::DigestCell;
pub use openmp::OpenMpReport;
pub use passes::OptLevel;
pub use preprocess::{Definitions, PreprocessedUnit};
pub use target::{lower_to_machine, MachineModule, TargetIsa, VectorizationReport};

/// Classified compilation flags for one translation unit.
///
/// The classification is the heart of the pipeline's flag handling (Figure 7): content-
/// relevant flags (definitions, OpenMP, optimisation level) participate in IR identity,
/// while ISA/tuning flags are recorded but *delayed* until deployment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileFlags {
    /// `-D` definitions in their original textual form.
    pub definitions: Vec<String>,
    /// Whether `-fopenmp` was passed.
    pub openmp: bool,
    /// Optimisation level (defaults to O2 when unspecified).
    pub opt: Option<OptLevel>,
    /// Target/ISA flags (`-m…`, `-march=…`, `-mtune=…`) that are delayed to deployment.
    pub delayed_target_flags: Vec<String>,
    /// Include directories (`-I…`) — recorded for provenance.
    pub include_dirs: Vec<String>,
    /// Flags that fit none of the categories above.
    pub other: Vec<String>,
}

impl CompileFlags {
    /// Parse a flag list (order preserved within each category).
    pub fn parse(flags: impl IntoIterator<Item = String>) -> Self {
        let mut result = CompileFlags::default();
        for flag in flags {
            let flag = flag.trim().to_string();
            if flag.is_empty() {
                continue;
            }
            if flag.starts_with("-D") {
                result.definitions.push(flag);
            } else if flag == "-fopenmp" || flag == "-qopenmp" {
                result.openmp = true;
            } else if let Some(level) = flag.strip_prefix("-O").and_then(|_| OptLevel::parse(&flag))
            {
                result.opt = Some(level);
            } else if flag.starts_with("-m")
                || flag.starts_with("-march=")
                || flag.starts_with("-mtune=")
            {
                result.delayed_target_flags.push(flag);
            } else if flag.starts_with("-I") {
                result.include_dirs.push(flag);
            } else {
                result.other.push(flag);
            }
        }
        result
    }

    /// The flags that determine IR content (used as the identity key by the pipeline):
    /// definitions, OpenMP, and optimisation level — *not* the delayed target flags.
    pub fn ir_relevant_key(&self) -> String {
        let mut defs = self.definitions.clone();
        defs.sort();
        format!(
            "defs={};openmp={};opt={}",
            defs.join(","),
            self.openmp,
            self.opt.unwrap_or(OptLevel::O2).as_str()
        )
    }

    /// The effective optimisation level.
    pub fn opt_level(&self) -> OptLevel {
        self.opt.unwrap_or(OptLevel::O2)
    }

    /// A copy of the flags with the delayed ISA/tuning flags removed — the flag set a
    /// target-independent IR compile actually uses (the delayed flags are applied at
    /// deployment-time lowering instead).
    pub fn without_delayed_target_flags(&self) -> CompileFlags {
        let mut flags = self.clone();
        flags.delayed_target_flags.clear();
        flags
    }

    /// Definitions as a [`Definitions`] set.
    pub fn definition_set(&self) -> Definitions {
        Definitions::from_flags(self.definitions.iter().map(String::as_str))
    }
}

/// Errors from the compiler driver.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Preprocessing failed.
    Preprocess(preprocess::PreprocessError),
    /// Parsing failed.
    Parse(parse::ParseError),
    /// Lowering failed.
    Lower(lower::LowerError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Preprocess(e) => write!(f, "preprocess: {e}"),
            CompileError::Parse(e) => write!(f, "parse: {e}"),
            CompileError::Lower(e) => write!(f, "lower: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<preprocess::PreprocessError> for CompileError {
    fn from(value: preprocess::PreprocessError) -> Self {
        CompileError::Preprocess(value)
    }
}
impl From<parse::ParseError> for CompileError {
    fn from(value: parse::ParseError) -> Self {
        CompileError::Parse(value)
    }
}
impl From<lower::LowerError> for CompileError {
    fn from(value: lower::LowerError) -> Self {
        CompileError::Lower(value)
    }
}

/// The compiler driver (`xirc`): preprocess → parse → lower → optimise.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    /// Header files available to `#include` (name → content).
    pub headers: BTreeMap<String, String>,
}

impl Compiler {
    /// A compiler with no headers registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a header file.
    pub fn add_header(&mut self, name: impl Into<String>, content: impl Into<String>) -> &mut Self {
        self.headers.insert(name.into(), content.into());
        self
    }

    /// Run only the preprocessor (`xirc -E`).
    pub fn preprocess_only(
        &self,
        file: &str,
        source: &str,
        flags: &CompileFlags,
    ) -> Result<PreprocessedUnit, CompileError> {
        Ok(preprocess::preprocess(
            file,
            source,
            &flags.definition_set(),
            &self.headers,
        )?)
    }

    /// Parse the preprocessed source into an AST.
    pub fn parse_unit(
        &self,
        file: &str,
        source: &str,
        flags: &CompileFlags,
    ) -> Result<TranslationUnit, CompileError> {
        let preprocessed = self.preprocess_only(file, source, flags)?;
        Ok(parse::parse(file, &preprocessed.text)?)
    }

    /// Report OpenMP usage of a file under the given flags (pipeline stage 3).
    pub fn openmp_report(
        &self,
        file: &str,
        source: &str,
        flags: &CompileFlags,
    ) -> Result<OpenMpReport, CompileError> {
        let unit = self.parse_unit(file, source, flags)?;
        Ok(openmp::analyze(&unit))
    }

    /// Full compilation to an (optimised, target-independent) IR module.
    pub fn compile_to_ir(
        &self,
        file: &str,
        source: &str,
        flags: &CompileFlags,
    ) -> Result<IrModule, CompileError> {
        let preprocessed = self.preprocess_only(file, source, flags)?;
        let unit = parse::parse(file, &preprocessed.text)?;
        let metadata = ModuleMetadata {
            definitions: flags.definitions.clone(),
            openmp: flags.openmp,
            opt_level: flags.opt_level().as_str().to_string(),
            delayed_flags: flags.delayed_target_flags.clone(),
        };
        let options = lower::LowerOptions {
            openmp: flags.openmp,
            metadata,
        };
        let mut module = lower::lower(&unit, &options)?;
        passes::optimize(&mut module, flags.opt_level());
        Ok(module)
    }

    /// Compile and immediately lower for a target (the "traditional build" path that XaaS
    /// source containers use at deployment, and that specialized containers use up front).
    pub fn compile_to_machine(
        &self,
        file: &str,
        source: &str,
        flags: &CompileFlags,
        target: &TargetIsa,
    ) -> Result<MachineModule, CompileError> {
        let module = self.compile_to_ir(file, source, flags)?;
        Ok(target::lower_to_machine(&module, target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = r#"
#include "scale.h"
kernel void scale(float* x, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i = i + 1) { x[i] = FACTOR * x[i]; }
}
#ifdef WITH_EXTRA
kernel void extra(float* x) { x[0] = 1.0; }
#endif
"#;

    fn compiler() -> Compiler {
        let mut c = Compiler::new();
        c.add_header("scale.h", "#define FACTOR 2.0\n");
        c
    }

    #[test]
    fn flag_classification_delays_isa_flags() {
        let flags = CompileFlags::parse(
            [
                "-O3",
                "-DWITH_EXTRA",
                "-fopenmp",
                "-mavx512f",
                "-march=armv8-a+sve",
                "-I/usr/include",
                "-Wall",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert!(flags.openmp);
        assert_eq!(flags.opt, Some(OptLevel::O3));
        assert_eq!(flags.definitions, vec!["-DWITH_EXTRA"]);
        assert_eq!(
            flags.delayed_target_flags,
            vec!["-mavx512f", "-march=armv8-a+sve"]
        );
        assert_eq!(flags.include_dirs, vec!["-I/usr/include"]);
        assert_eq!(flags.other, vec!["-Wall"]);
    }

    #[test]
    fn ir_relevant_key_ignores_target_flags_and_flag_order() {
        let a = CompileFlags::parse(
            ["-DA", "-DB", "-O3", "-mavx2"]
                .iter()
                .map(|s| s.to_string()),
        );
        let b = CompileFlags::parse(
            ["-DB", "-DA", "-O3", "-msse4.1"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.ir_relevant_key(), b.ir_relevant_key());
        let c = CompileFlags::parse(["-DA", "-O3"].iter().map(|s| s.to_string()));
        assert_ne!(a.ir_relevant_key(), c.ir_relevant_key());
    }

    #[test]
    fn compile_to_ir_respects_definitions_and_headers() {
        let compiler = compiler();
        let plain = compiler
            .compile_to_ir(
                "scale.ck",
                SOURCE,
                &CompileFlags::parse(["-O2".to_string()]),
            )
            .unwrap();
        assert_eq!(plain.functions.len(), 1);
        let with_extra = compiler
            .compile_to_ir(
                "scale.ck",
                SOURCE,
                &CompileFlags::parse(["-O2".to_string(), "-DWITH_EXTRA".to_string()]),
            )
            .unwrap();
        assert_eq!(with_extra.functions.len(), 2);
        // The FACTOR macro from the header is substituted.
        assert!(plain.to_text().contains('2'));
    }

    #[test]
    fn openmp_report_via_driver() {
        let compiler = compiler();
        let report = compiler
            .openmp_report("scale.ck", SOURCE, &CompileFlags::default())
            .unwrap();
        assert!(report.uses_openmp());
        let no_omp_source =
            "kernel void f(float* x, int n) { for (int i = 0; i < n; i = i + 1) { x[i] = 0.0; } }";
        let report = compiler
            .openmp_report("f.ck", no_omp_source, &CompileFlags::default())
            .unwrap();
        assert!(!report.uses_openmp());
    }

    #[test]
    fn compile_to_machine_applies_target_width() {
        let compiler = compiler();
        let flags = CompileFlags::parse(["-O3", "-fopenmp"].iter().map(|s| s.to_string()));
        let machine = compiler
            .compile_to_machine(
                "scale.ck",
                SOURCE,
                &flags,
                &TargetIsa::vector("avx2", 8, true),
            )
            .unwrap();
        assert_eq!(machine.function("scale").unwrap().loop_widths, vec![8]);
        assert_eq!(machine.vectorization.vectorized_count(), 1);
    }

    #[test]
    fn errors_propagate_with_context() {
        let compiler = Compiler::new();
        // Missing header.
        let err = compiler
            .compile_to_ir("scale.ck", SOURCE, &CompileFlags::default())
            .unwrap_err();
        assert!(matches!(err, CompileError::Preprocess(_)));
        // Syntax error.
        let err = compiler
            .compile_to_ir("bad.ck", "kernel void f( {", &CompileFlags::default())
            .unwrap_err();
        assert!(matches!(err, CompileError::Parse(_)));
        // Unsupported loop shape.
        let err = compiler
            .compile_to_ir(
                "bad.ck",
                "kernel void f(float* x, int n) { for (int i = 0; i < n; i = i * 2) { x[i] = 0.0; } }",
                &CompileFlags::default(),
            )
            .unwrap_err();
        assert!(matches!(err, CompileError::Lower(_)));
    }

    #[test]
    fn default_opt_level_is_o2() {
        let flags = CompileFlags::default();
        assert_eq!(flags.opt_level(), OptLevel::O2);
    }

    #[test]
    fn without_delayed_target_flags_keeps_ir_relevant_flags() {
        let flags = CompileFlags::parse(
            ["-O3", "-DA", "-fopenmp", "-mavx512f"]
                .iter()
                .map(|s| s.to_string()),
        );
        let stripped = flags.without_delayed_target_flags();
        assert!(stripped.delayed_target_flags.is_empty());
        assert_eq!(stripped.ir_relevant_key(), flags.ir_relevant_key());
        assert_eq!(stripped.definitions, flags.definitions);
        assert!(stripped.openmp);
    }
}
