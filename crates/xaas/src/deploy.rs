//! Deployment of IR containers (Section 4.3.1 and Figure 8).
//!
//! The user selects one configuration and the target ISA; XaaS then lowers the selected
//! subset of IR files (applying vectorisation now that the ISA is known), compiles the
//! system-dependent source files against the system's MPI, lets the build system finish
//! linking and installation, and commits a new, system-specialized image whose tag
//! encodes the specialization points.

use crate::engine::{
    add_commit_action, ActionGraph, ActionId, ActionKind, ActionTrace, Engine, LinkSlot,
    PreprocessPlanner,
};
use crate::ir_container::{
    paths as ir_paths, ActionSummary, ConfigurationManifest, IrContainerBuild, UnitAssignment,
    TOOLCHAIN_ID,
};
use crate::targets::{derive_build_profile, target_isa_for};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use xaas_buildsys::{OptionAssignment, ProjectSpec};
use xaas_container::{
    annotation_keys, ActionCache, BuildKey, DeploymentFormat, Image, ImageStore, Layer, Platform,
};
use xaas_hpcsim::{BuildProfile, SimdLevel, SystemModel};
use xaas_xir::{
    lower_to_machine, CompileFlags, Compiler, MachineModule, TargetIsa, VectorizationReport,
};

/// Errors during IR-container deployment.
#[derive(Debug)]
#[allow(missing_docs)] // variant payload fields are documented by the Display impl
pub enum DeployError {
    /// No manifest matches the requested configuration.
    UnknownConfiguration(String),
    /// The requested SIMD level cannot execute on the target system.
    UnsupportedSimd { level: SimdLevel, system: String },
    /// A referenced IR unit is missing from the container.
    MissingUnit(String),
    /// A system-dependent source failed to compile at deployment.
    Compile {
        file: String,
        error: xaas_xir::CompileError,
    },
    /// A cached artifact failed to decode (action-cache corruption).
    Cache(String),
    /// The orchestrator's scheduling policy is invalid (e.g. a zero concurrency cap).
    Policy(crate::engine::PolicyError),
    /// The pre-submission static analyzer rejected the deployment graph
    /// (deny-level diagnostics under
    /// [`AnalysisMode::Strict`](crate::engine::AnalysisMode)); nothing executed.
    Analysis(Box<crate::engine::AnalysisReport>),
    /// The executor broke its scheduling contract (a node skipped without a
    /// failure, or cancelled mid-run) — not a deployment error.
    Engine(crate::engine::GraphFault),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::UnknownConfiguration(label) => {
                write!(f, "no configuration matches `{label}`")
            }
            DeployError::UnsupportedSimd { level, system } => {
                write!(f, "SIMD level {level} is not supported on {system}")
            }
            DeployError::MissingUnit(id) => write!(f, "IR unit {id} missing from the container"),
            DeployError::Compile { file, error } => write!(f, "compiling {file}: {error}"),
            DeployError::Cache(detail) => write!(f, "action cache: {detail}"),
            DeployError::Policy(error) => write!(f, "{error}"),
            DeployError::Analysis(report) => write!(f, "graph rejected by analysis: {report}"),
            DeployError::Engine(fault) => write!(f, "executor fault: {fault}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<crate::engine::GraphRunError<DeployError>> for DeployError {
    fn from(value: crate::engine::GraphRunError<DeployError>) -> Self {
        match value.into_action() {
            Ok(error) => error,
            Err(fault) => DeployError::Engine(fault),
        }
    }
}

impl From<Box<crate::engine::AnalysisReport>> for DeployError {
    fn from(value: Box<crate::engine::AnalysisReport>) -> Self {
        DeployError::Analysis(value)
    }
}

/// Statistics of one deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeploymentStats {
    /// IR units lowered to machine code.
    pub lowered_units: usize,
    /// System-dependent sources compiled from scratch.
    pub compiled_source_units: usize,
    /// Loops vectorised at the selected width.
    pub vectorized_loops: usize,
    /// Loops left scalar (blocked or scalar target).
    pub scalar_loops: usize,
}

/// The result of deploying an IR container.
#[derive(Debug, Clone)]
pub struct IrDeployment {
    /// The new system-specialized image.
    pub image: Image,
    /// Reference under which the deployed image was committed.
    pub reference: String,
    /// The configuration that was selected.
    pub assignment: OptionAssignment,
    /// The SIMD level the IR was lowered for.
    pub simd: SimdLevel,
    /// Lowered machine modules keyed by source file.
    pub machine_modules: BTreeMap<String, MachineModule>,
    /// Aggregated vectorisation report.
    pub vectorization: VectorizationReport,
    /// Deployment statistics.
    pub stats: DeploymentStats,
    /// Performance profile of the deployed build.
    pub build_profile: BuildProfile,
    /// Lower/compile actions executed vs served from the action cache. Reported outside
    /// [`DeploymentStats`] so warm and cold deployments stay otherwise identical.
    pub actions: ActionSummary,
    /// The full, deterministic action trace of the deployment.
    pub trace: ActionTrace,
}

/// Deploy an IR container over an uncached ([`NoCache`](xaas_container::NoCache)-backed)
/// orchestrator — every lower/compile action runs.
#[deprecated(
    since = "0.2.0",
    note = "use xaas::orchestrator::IrDeployRequest with Orchestrator::uncached(store)"
)]
pub fn deploy_ir_container(
    build: &IrContainerBuild,
    project: &ProjectSpec,
    system: &SystemModel,
    selection: &OptionAssignment,
    simd: SimdLevel,
    store: &ImageStore,
) -> Result<IrDeployment, DeployError> {
    crate::orchestrator::IrDeployRequest::new(build, project, system)
        .selection(selection.clone())
        .simd(simd)
        .submit(&crate::orchestrator::Orchestrator::uncached(store))
}

/// Deploy an IR container, routing every lower/compile action through `cache`.
#[deprecated(
    since = "0.2.0",
    note = "use xaas::orchestrator::IrDeployRequest with Orchestrator::with_cache(cache)"
)]
pub fn deploy_ir_container_cached(
    build: &IrContainerBuild,
    project: &ProjectSpec,
    system: &SystemModel,
    selection: &OptionAssignment,
    simd: SimdLevel,
    cache: &ActionCache,
) -> Result<IrDeployment, DeployError> {
    crate::orchestrator::IrDeployRequest::new(build, project, system)
        .selection(selection.clone())
        .simd(simd)
        .submit(&crate::orchestrator::Orchestrator::with_cache(cache))
}

/// One planned deployment action: either lower a stored IR unit or compile a
/// system-dependent source. `files` lists every manifest unit served by the action
/// (several units can share one deduplicated artifact).
enum DeployTask<'plan> {
    Lower {
        id: &'plan str,
        files: Vec<&'plan str>,
    },
    Compile {
        path: &'plan str,
        content: &'plan str,
        files: Vec<&'plan str>,
    },
}

/// Deploy an IR container through an explicitly configured `engine`.
#[deprecated(
    since = "0.2.0",
    note = "use xaas::orchestrator::IrDeployRequest with Orchestrator::from_engine(engine)"
)]
pub fn deploy_ir_container_with(
    build: &IrContainerBuild,
    project: &ProjectSpec,
    system: &SystemModel,
    selection: &OptionAssignment,
    simd: SimdLevel,
    engine: &Engine,
) -> Result<IrDeployment, DeployError> {
    crate::orchestrator::IrDeployRequest::new(build, project, system)
        .selection(selection.clone())
        .simd(simd)
        .submit(&crate::orchestrator::Orchestrator::from_engine(
            engine.clone(),
        ))
}

/// The typed pieces a deployment's Link action assembles for the driver.
struct Assembled {
    image: Image,
    machine_modules: BTreeMap<String, MachineModule>,
    vectorization: VectorizationReport,
    stats: DeploymentStats,
}

/// The plan phase of one IR deployment: everything validated and owned, but no
/// graph built yet. Produced by [`plan_ir_deploy`], turned into graph nodes by
/// [`graft_ir_deploy`] (into a private graph for a standalone deployment, or into
/// the fleet's union graph), and consumed by [`finish_ir_deploy`] once the nodes
/// have run.
pub(crate) struct DeployPlan<'a> {
    build: &'a IrContainerBuild,
    project: &'a ProjectSpec,
    pub(crate) system: &'a SystemModel,
    manifest: &'a ConfigurationManifest,
    pub(crate) simd: SimdLevel,
    target: TargetIsa,
    compiler: Compiler,
    sd_flags: CompileFlags,
    tasks: Vec<DeployTask<'a>>,
    reference: String,
    assembled: LinkSlot<Assembled>,
}

/// Cross-job index of already-grafted keyed artifact nodes, shared by every job of
/// one union-graph wave. A job whose artifact identity is already present grafts a
/// *cache-probe alias* — a keyed node ordered after the identity's first node by a
/// dependency edge — instead of a second compute node: the expensive closure
/// exists once per wave, and the alias deterministically replays the cache hit the
/// sequential strategy would have observed, keeping per-job traces and hit/miss
/// deltas strategy-independent.
#[derive(Default)]
pub(crate) struct SharedDeployArtifacts {
    primaries: BTreeMap<String, ActionId>,
}

/// What [`graft_ir_deploy`] reports back about the job's subgraph.
pub(crate) struct GraftedDeploy {
    /// Critical-path depth of the job's own nodes (cross-job alias edges
    /// excluded) — exactly the `stage_depth` the job's standalone submission
    /// would record, so union-graph per-job traces stay comparable.
    pub(crate) stage_depth: usize,
}

/// Validate one deployment and plan its deduplicated tasks (Figure 8's *select*
/// step): resolve the configuration manifest, check the SIMD level against the
/// system, split the manifest's units into one lower/compile task per distinct
/// artifact, and derive the system-dependent compile flags from the selected
/// configuration's [`compile_flags`](crate::ir_container::ConfigurationManifest::compile_flags)
/// (optimisation level, OpenMP, …) rather than a hardcoded flag set.
pub(crate) fn plan_ir_deploy<'a>(
    build: &'a IrContainerBuild,
    project: &'a ProjectSpec,
    system: &'a SystemModel,
    selection: &OptionAssignment,
    simd: SimdLevel,
) -> Result<DeployPlan<'a>, DeployError> {
    let manifest = build
        .manifest_for(selection)
        .ok_or_else(|| DeployError::UnknownConfiguration(selection.label()))?;
    if !system.cpu.supports(simd) {
        return Err(DeployError::UnsupportedSimd {
            level: simd,
            system: system.name.clone(),
        });
    }
    let target = target_isa_for(simd);

    let mut compiler = Compiler::new();
    for (name, content) in &project.headers {
        compiler.add_header(name.clone(), content.clone());
    }

    // System-dependent sources are compiled with the selected configuration's flags
    // (not a hardcoded set): definitions plus the manifest's non-target compile flags.
    let mut sd_args = manifest.definitions.clone();
    sd_args.extend(manifest.compile_flags.iter().cloned());
    let sd_flags = CompileFlags::parse(sd_args);

    // One deduplicated task per distinct IR unit / source path.
    let mut tasks: Vec<DeployTask<'a>> = Vec::new();
    let mut task_by_artifact: BTreeMap<&str, usize> = BTreeMap::new();
    for UnitAssignment { file, artifact, .. } in &manifest.units {
        if let Some(id) = artifact.strip_prefix("ir:") {
            if !build.units.contains_key(id) {
                return Err(DeployError::MissingUnit(id.to_string()));
            }
            match task_by_artifact.get(artifact.as_str()) {
                Some(&index) => match &mut tasks[index] {
                    DeployTask::Lower { files, .. } => files.push(file),
                    DeployTask::Compile { .. } => unreachable!("artifact kinds are disjoint"),
                },
                None => {
                    task_by_artifact.insert(artifact, tasks.len());
                    tasks.push(DeployTask::Lower {
                        id,
                        files: vec![file],
                    });
                }
            }
        } else if let Some(path) = artifact.strip_prefix("src:") {
            let source = project
                .source(path)
                .ok_or_else(|| DeployError::MissingUnit(path.to_string()))?;
            match task_by_artifact.get(artifact.as_str()) {
                Some(&index) => match &mut tasks[index] {
                    DeployTask::Compile { files, .. } => files.push(file),
                    DeployTask::Lower { .. } => unreachable!("artifact kinds are disjoint"),
                },
                None => {
                    task_by_artifact.insert(artifact, tasks.len());
                    tasks.push(DeployTask::Compile {
                        path,
                        content: source.content.as_str(),
                        files: vec![file],
                    });
                }
            }
        }
    }

    let reference = format!(
        "{}:{}-{}-{}",
        project.name,
        system.name.to_ascii_lowercase(),
        crate::ir_container::sanitize(&manifest.label).to_ascii_lowercase(),
        simd.gmx_name().to_ascii_lowercase()
    );
    Ok(DeployPlan {
        build,
        project,
        system,
        manifest,
        simd,
        target,
        compiler,
        sd_flags,
        tasks,
        reference,
        assembled: LinkSlot::new(),
    })
}

/// Graft one planned deployment onto `graph` as a self-contained subgraph —
/// Figure 8 as a DAG, in **one** submission:
///
/// 1. **preprocess** (parallel): system-dependent sources, producing the content
///    digests their compile actions are keyed by;
/// 2. **machine-lower + sd-compile** (parallel, cache-routed): lowering a stored
///    IR unit is keyed on (unit content id, target ISA); compiling a
///    system-dependent source on (preprocessed-content digest, IR-relevant flags,
///    target ISA) — the `sd-compile` key is *derived* from its preprocess
///    dependency's output at dispatch time
///    ([`ActionGraph::add_cached_derived`]), which is what collapses the historic
///    two-submission deploy into one graph;
/// 3. **link + commit**: assemble and commit the system-specialized image.
///
/// With `shared` (the fleet's union-graph wave index), keyed artifacts another job
/// already planned become cache-probe aliases instead of second compute nodes:
/// the shared `BuildKey` executes once per wave and fans out to every consuming
/// job's Link.
pub(crate) fn graft_ir_deploy<'env>(
    plan: &'env DeployPlan<'env>,
    graph: &mut ActionGraph<'env, DeployError>,
    store: &'env ImageStore,
    mut shared: Option<&mut SharedDeployArtifacts>,
) -> GraftedDeploy {
    // Preprocess nodes first, in task order — the same record layout the
    // two-submission driver produced (all preprocess records precede artifacts).
    let mut preprocess = PreprocessPlanner::new();
    let mut preprocess_actions: Vec<Option<ActionId>> = Vec::with_capacity(plan.tasks.len());
    for task in &plan.tasks {
        preprocess_actions.push(match task {
            DeployTask::Compile { path, content, .. } => Some(preprocess.action_for(
                graph,
                &plan.compiler,
                path,
                content,
                &plan.sd_flags,
                |file, error| DeployError::Compile { file, error },
            )),
            DeployTask::Lower { .. } => None,
        });
    }

    let mut artifact_actions: Vec<ActionId> = Vec::with_capacity(plan.tasks.len());
    let mut artifact_depth = 0usize;
    for (task, preprocess_action) in plan.tasks.iter().zip(&preprocess_actions) {
        match task {
            DeployTask::Lower { id, .. } => {
                let unit = &plan.build.units[*id];
                // Code generation: vectorise and lower the stored IR for the selected
                // ISA. The unit id *is* the content digest of the IR, so (id, target)
                // fully determines the lowered artifact.
                let key = BuildKey::new(*id, &plan.target.name, "lower", TOOLCHAIN_ID);
                let identity = format!("lower|{}", key.digest().as_str());
                let primary = shared
                    .as_ref()
                    .and_then(|s| s.primaries.get(&identity).copied());
                let action = match primary {
                    Some(primary) => graph.add_cached(
                        ActionKind::MachineLower,
                        unit.source_file.clone(),
                        key,
                        &[primary],
                        move |inputs| Ok(inputs.dep(0).to_vec()),
                    ),
                    None => {
                        let target = &plan.target;
                        let action =
                            graph.add_cached(
                                ActionKind::MachineLower,
                                unit.source_file.clone(),
                                key,
                                &[],
                                move |_| {
                                    let machine = lower_to_machine(&unit.module, target);
                                    Ok(serde_json::to_vec(&machine)
                                        .expect("machine module serialises"))
                                },
                            );
                        if let Some(shared) = shared.as_mut() {
                            shared.primaries.insert(identity, action);
                        }
                        action
                    }
                };
                artifact_actions.push(action);
                artifact_depth = artifact_depth.max(1);
            }
            DeployTask::Compile { path, content, .. } => {
                let preprocess_action =
                    preprocess_action.expect("compile tasks plan a preprocess action");
                // The key folds in the *preprocessed* content digest (the cache
                // contract): it covers the headers the compiler resolves, so caches
                // shared across projects can never serve code built against
                // different header definitions. The digest is the preprocess
                // dependency's output, so the key is derived at dispatch time.
                let (_, definitions) = PreprocessPlanner::identity(path, &plan.sd_flags);
                let identity = format!(
                    "sd|{path}|{definitions}|{}|{}",
                    plan.sd_flags.ir_relevant_key(),
                    plan.target.name
                );
                let target = &plan.target;
                let sd_flags = &plan.sd_flags;
                let path = *path;
                let key_of = move |inputs: &crate::engine::ActionInputs| {
                    BuildKey::new(
                        String::from_utf8_lossy(inputs.dep(0)).into_owned(),
                        &target.name,
                        format!("file={path};{}", sd_flags.ir_relevant_key()),
                        TOOLCHAIN_ID,
                    )
                };
                let primary = shared
                    .as_ref()
                    .and_then(|s| s.primaries.get(&identity).copied());
                let action = match primary {
                    Some(primary) => graph.add_cached_derived(
                        ActionKind::SdCompile,
                        path.to_string(),
                        key_of,
                        &[preprocess_action, primary],
                        move |inputs| Ok(inputs.dep(1).to_vec()),
                    ),
                    None => {
                        let compiler = &plan.compiler;
                        let content = *content;
                        let action =
                            graph.add_cached_derived(
                                ActionKind::SdCompile,
                                path.to_string(),
                                key_of,
                                &[preprocess_action],
                                move |_| {
                                    let machine = compiler
                                        .compile_to_machine(path, content, sd_flags, target)
                                        .map_err(|error| DeployError::Compile {
                                            file: path.to_string(),
                                            error,
                                        })?;
                                    Ok(serde_json::to_vec(&machine)
                                        .expect("machine module serialises"))
                                },
                            );
                        if let Some(shared) = shared.as_mut() {
                            shared.primaries.insert(identity, action);
                        }
                        action
                    }
                };
                artifact_actions.push(action);
                artifact_depth = artifact_depth.max(2);
            }
        }
    }

    let link_action = {
        let reference = plan.reference.as_str();
        graph.add(
            ActionKind::Link,
            format!("{reference} image"),
            &artifact_actions,
            move |inputs| {
                let mut machine_modules: BTreeMap<String, MachineModule> = BTreeMap::new();
                // file → producing dependency output: the artifact actions emit exactly
                // the serialised machine module, so the layer below reuses those bytes
                // instead of re-serialising every module a second time.
                let mut machine_bytes: BTreeMap<String, &xaas_container::Blob> = BTreeMap::new();
                let mut vectorization = VectorizationReport::default();
                let mut stats = DeploymentStats::default();
                for (index, task) in plan.tasks.iter().enumerate() {
                    let (label, files, lowered) = match task {
                        DeployTask::Lower { files, .. } => (files[0], files, true),
                        DeployTask::Compile { path, files, .. } => (*path, files, false),
                    };
                    let machine: MachineModule = serde_json::from_slice(inputs.dep(index))
                        .map_err(|e| {
                            DeployError::Cache(format!("machine module for {label}: {e}"))
                        })?;
                    for file in files {
                        vectorization
                            .loops
                            .extend(machine.vectorization.loops.iter().cloned());
                        if lowered {
                            stats.lowered_units += 1;
                        } else {
                            stats.compiled_source_units += 1;
                        }
                        machine_modules.insert(file.to_string(), machine.clone());
                        machine_bytes.insert(file.to_string(), inputs.dep_blob(index));
                    }
                }
                stats.vectorized_loops = vectorization.vectorized_count();
                stats.scalar_loops = vectorization.scalar_count();

                // Linking and installation: assemble the deployed image from the IR
                // container image.
                let mut image = Image::derive_from(&plan.build.image, reference);
                image.platform =
                    Platform::linux(crate::source_container::architecture_of(plan.system));
                image.set_deployment_format(DeploymentFormat::Binary);
                image.annotate(
                    annotation_keys::SELECTED_CONFIGURATION,
                    plan.manifest.label.clone(),
                );
                image.annotate(annotation_keys::TARGET_SYSTEM, plan.system.name.clone());
                image.annotate("dev.xaas.simd", plan.simd.gmx_name());

                let mut lowered =
                    Layer::new(format!("RUN xaas lower --target {}", plan.target.name));
                for (file, bytes) in &machine_bytes {
                    lowered.add_file(
                        format!("/xaas/obj/{}.o", file.replace('/', "_")),
                        bytes.to_vec(),
                    );
                }
                for target_spec in &plan.project.targets {
                    lowered.add_executable(
                        format!("/opt/app/bin/{}", target_spec.name),
                        format!(
                            "linked {} for {} ({})",
                            target_spec.name, plan.system.name, plan.target.name
                        )
                        .into_bytes(),
                    );
                }
                // Dependency layers are reassembled for the selected configuration only.
                for dependency in &plan.manifest.dependencies {
                    lowered.add_text(
                        format!("/opt/deps/{dependency}/.provenance"),
                        format!("dependency layer {dependency} for {}", plan.manifest.label),
                    );
                }
                image.push_layer(lowered);
                plan.assembled.put(Assembled {
                    image,
                    machine_modules,
                    vectorization,
                    stats,
                });
                Ok(Vec::new())
            },
        )
    };
    add_commit_action(
        graph,
        format!("{} commit", plan.reference),
        store,
        &plan.assembled,
        |assembled| &assembled.image,
        link_action,
    );

    GraftedDeploy {
        stage_depth: artifact_depth + 2,
    }
}

/// The finish phase: consume the plan after its subgraph ran, returning the
/// [`IrDeployment`] carrying `trace` (the job's own trace — the full run for a
/// standalone submission, the job's split of the wave trace for a union-graph
/// fleet).
pub(crate) fn finish_ir_deploy(
    plan: DeployPlan<'_>,
    trace: ActionTrace,
) -> Result<IrDeployment, DeployError> {
    let Assembled {
        image,
        machine_modules,
        vectorization,
        stats,
    } = plan.assembled.into_inner().expect("link action ran");

    let threads = plan.system.cpu.total_cores().min(36);
    let mut build_profile = derive_build_profile(
        format!("XaaS IR ({} {})", plan.system.name, plan.simd.gmx_name()),
        &plan.manifest.assignment,
        plan.system,
        threads,
    )
    .with_container_overhead(1.01);
    build_profile.simd = plan.simd;

    let actions = trace.summary();
    Ok(IrDeployment {
        image,
        reference: plan.reference,
        assignment: plan.manifest.assignment.clone(),
        simd: plan.simd,
        machine_modules,
        vectorization,
        stats,
        build_profile,
        actions,
        trace,
    })
}

/// Run one already-validated plan through `engine` as its own single graph
/// submission: graft ([`graft_ir_deploy`]), run, finish ([`finish_ir_deploy`]).
/// The sequential fleet strategy calls this after planning so its
/// [`FleetReport::submissions`](crate::orchestrator::FleetReport::submissions)
/// counter counts only jobs that actually reached the engine.
pub(crate) fn run_planned_ir_deploy(
    plan: DeployPlan<'_>,
    engine: &Engine,
) -> Result<IrDeployment, DeployError> {
    let mut graph: ActionGraph<'_, DeployError> = ActionGraph::new();
    graft_ir_deploy(&plan, &mut graph, engine.store(), None);
    engine.preflight(&graph)?;
    let run = engine.run(graph);
    let (_, trace) = run.into_outputs()?;
    finish_ir_deploy(plan, trace)
}

/// Deploy an IR container through `engine` in **one** graph submission (the driver
/// behind [`IrDeployRequest`](crate::orchestrator::IrDeployRequest)): plan
/// ([`plan_ir_deploy`]), graft the subgraph onto a private graph
/// ([`graft_ir_deploy`]), run it, finish ([`finish_ir_deploy`]).
pub(crate) fn run_ir_deploy(
    build: &IrContainerBuild,
    project: &ProjectSpec,
    system: &SystemModel,
    selection: &OptionAssignment,
    simd: SimdLevel,
    engine: &Engine,
) -> Result<IrDeployment, DeployError> {
    let plan = plan_ir_deploy(build, project, system, selection, simd)?;
    run_planned_ir_deploy(plan, engine)
}

/// Run the pre-submission static analyzer over the exact graph one deployment
/// would submit — plan ([`plan_ir_deploy`]) and graft ([`graft_ir_deploy`])
/// onto a private graph, then lint it — without executing a single node.
pub(crate) fn analyze_ir_deploy(
    build: &IrContainerBuild,
    project: &ProjectSpec,
    system: &SystemModel,
    selection: &OptionAssignment,
    simd: SimdLevel,
    engine: &Engine,
) -> Result<crate::engine::AnalysisReport, DeployError> {
    let plan = plan_ir_deploy(build, project, system, selection, simd)?;
    let mut graph: ActionGraph<'_, DeployError> = ActionGraph::new();
    graft_ir_deploy(&plan, &mut graph, engine.store(), None);
    Ok(engine.analyze(&graph))
}

/// Convenience: list the IR blob paths of an IR container image (used by examples/tests
/// to show what a deployment would pull).
pub fn ir_blob_paths(image: &Image) -> Vec<String> {
    image
        .rootfs()
        .paths_under(ir_paths::IR_ROOT)
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir_container::IrPipelineConfig;
    use crate::orchestrator::{IrBuildRequest, IrDeployRequest, Orchestrator};
    use xaas_apps::gromacs;
    use xaas_xir::{Interpreter, Value};

    /// Old free-function deployment shape, routed through the orchestrator (uncached).
    fn deploy(
        build: &IrContainerBuild,
        project: &ProjectSpec,
        system: &SystemModel,
        selection: &OptionAssignment,
        simd: SimdLevel,
        store: &ImageStore,
    ) -> Result<IrDeployment, DeployError> {
        IrDeployRequest::new(build, project, system)
            .selection(selection.clone())
            .simd(simd)
            .submit(&Orchestrator::uncached(store))
    }

    /// Old `_cached` deployment shape, routed through the orchestrator (shared cache).
    fn deploy_cached(
        build: &IrContainerBuild,
        project: &ProjectSpec,
        system: &SystemModel,
        selection: &OptionAssignment,
        simd: SimdLevel,
        cache: &ActionCache,
    ) -> Result<IrDeployment, DeployError> {
        IrDeployRequest::new(build, project, system)
            .selection(selection.clone())
            .simd(simd)
            .submit(&Orchestrator::with_cache(cache))
    }

    fn gromacs_ir_build(store: &ImageStore) -> (ProjectSpec, IrContainerBuild) {
        let project = gromacs::project();
        let config = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_GPU"])
            .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"])
            .with_values("GMX_GPU", &["OFF", "CUDA"]);
        let build = IrBuildRequest::new(&project, &config)
            .reference("spcl/mini-gromacs:ir")
            .submit(&Orchestrator::uncached(store))
            .unwrap();
        (project, build)
    }

    #[test]
    fn deployment_lowers_ir_for_the_selected_isa() {
        let store = ImageStore::new();
        let (project, build) = gromacs_ir_build(&store);
        let system = SystemModel::ault23();
        let selection = OptionAssignment::new()
            .with("GMX_SIMD", "AVX_512")
            .with("GMX_GPU", "CUDA");
        let deployment = deploy(
            &build,
            &project,
            &system,
            &selection,
            SimdLevel::Avx512,
            &store,
        )
        .unwrap();
        assert!(deployment.stats.lowered_units > 5);
        assert!(deployment.stats.vectorized_loops > 0);
        assert_eq!(deployment.simd, SimdLevel::Avx512);
        // Vectorised loops use the AVX-512 width.
        let widths: Vec<u32> = deployment
            .machine_modules
            .values()
            .flat_map(|m| m.functions.iter().flat_map(|f| f.loop_widths.clone()))
            .collect();
        assert!(widths.contains(&16));
        assert!(store.load(&deployment.reference).is_ok());
        assert_eq!(
            deployment.image.deployment_format(),
            DeploymentFormat::Binary
        );
        assert_eq!(
            deployment.build_profile.gpu_backend,
            Some(xaas_hpcsim::GpuBackend::Cuda)
        );
    }

    #[test]
    fn same_container_deploys_to_different_isas() {
        let store = ImageStore::new();
        let (project, build) = gromacs_ir_build(&store);
        let selection = OptionAssignment::new()
            .with("GMX_SIMD", "SSE4.1")
            .with("GMX_GPU", "OFF");
        let narrow = deploy(
            &build,
            &project,
            &SystemModel::ault01_04(),
            &selection,
            SimdLevel::Sse41,
            &store,
        )
        .unwrap();
        let wide = deploy(
            &build,
            &project,
            &SystemModel::ault01_04(),
            &selection,
            SimdLevel::Avx512,
            &store,
        )
        .unwrap();
        let width_of = |d: &IrDeployment| {
            d.machine_modules
                .values()
                .flat_map(|m| m.functions.iter().flat_map(|f| f.loop_widths.clone()))
                .max()
                .unwrap_or(1)
        };
        assert_eq!(width_of(&narrow), 4);
        assert_eq!(width_of(&wide), 16);
        assert_ne!(
            narrow.reference, wide.reference,
            "image tags encode the specialization"
        );
    }

    #[test]
    fn warm_cache_deployment_is_identical_and_runs_no_actions() {
        let store = ImageStore::new();
        let (project, build) = gromacs_ir_build(&store);
        let cache = ActionCache::new(store.clone());
        let system = SystemModel::ault23();
        let selection = OptionAssignment::new()
            .with("GMX_SIMD", "AVX_512")
            .with("GMX_GPU", "OFF");
        let cold = deploy_cached(
            &build,
            &project,
            &system,
            &selection,
            SimdLevel::Avx512,
            &cache,
        )
        .unwrap();
        assert_eq!(cold.actions.cached, 0);
        assert!(cold.actions.executed > 0);
        let warm = deploy_cached(
            &build,
            &project,
            &system,
            &selection,
            SimdLevel::Avx512,
            &cache,
        )
        .unwrap();
        assert_eq!(warm.actions.executed, 0, "warm deployment runs no compiler");
        assert_eq!(warm.actions.cached, cold.actions.executed);
        assert_eq!(warm.machine_modules, cold.machine_modules);
        assert_eq!(warm.stats, cold.stats);
        assert_eq!(warm.image.layers, cold.image.layers);
    }

    #[test]
    fn unsupported_simd_level_is_rejected() {
        let store = ImageStore::new();
        let (project, build) = gromacs_ir_build(&store);
        let selection = OptionAssignment::new()
            .with("GMX_SIMD", "AVX_512")
            .with("GMX_GPU", "OFF");
        let error = deploy(
            &build,
            &project,
            &SystemModel::ault25(), // EPYC 7742: no AVX-512
            &selection,
            SimdLevel::Avx512,
            &store,
        )
        .unwrap_err();
        assert!(matches!(error, DeployError::UnsupportedSimd { .. }));
    }

    #[test]
    fn unknown_configuration_is_rejected() {
        let store = ImageStore::new();
        let (project, build) = gromacs_ir_build(&store);
        let selection = OptionAssignment::new().with("GMX_GPU", "HIP");
        let error = deploy(
            &build,
            &project,
            &SystemModel::ault23(),
            &selection,
            SimdLevel::Avx512,
            &store,
        )
        .unwrap_err();
        assert!(matches!(error, DeployError::UnknownConfiguration(_)));
    }

    #[test]
    fn deployed_kernels_compute_the_same_results_as_a_direct_build() {
        let store = ImageStore::new();
        let (project, build) = gromacs_ir_build(&store);
        let system = SystemModel::ault23();
        let selection = OptionAssignment::new()
            .with("GMX_SIMD", "AVX_512")
            .with("GMX_GPU", "OFF");
        let deployment = deploy(
            &build,
            &project,
            &system,
            &selection,
            SimdLevel::Avx512,
            &store,
        )
        .unwrap();
        let machine = deployment
            .machine_modules
            .get("src/mdrun/integrator.ck")
            .expect("integrator module present");
        let interp = Interpreter::for_machine(machine);
        let result = interp
            .run(
                "integrate",
                vec![
                    Value::FloatBuffer(vec![0.0; 16]),
                    Value::FloatBuffer(vec![1.0; 16]),
                    Value::FloatBuffer(vec![2.0; 16]),
                    Value::Float(0.5),
                    Value::Int(16),
                ],
            )
            .unwrap();
        let x = result.buffers["x"].as_float_buffer().unwrap();
        assert!(x.iter().all(|&v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    fn ir_blob_paths_lists_stored_bitcode() {
        let store = ImageStore::new();
        let (_project, build) = gromacs_ir_build(&store);
        let blobs = ir_blob_paths(&build.image);
        assert_eq!(blobs.len(), build.units.len());
        assert!(blobs.iter().all(|p| p.ends_with(".xbc")));
    }
}
