//! GPU models: vendors, programming backends, compute capabilities, and the CUDA
//! compatibility rules of Figure 9 (driver vs runtime vs PTX vs cubin).

use serde::{Deserialize, Serialize};
use std::fmt;

/// GPU programming backends an application may support (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GpuBackend {
    /// NVIDIA CUDA.
    Cuda,
    /// AMD HIP / ROCm.
    Hip,
    /// Khronos SYCL (Intel oneAPI DPC++, AdaptiveCpp).
    Sycl,
    /// OpenCL.
    OpenCl,
    /// OpenACC directives.
    OpenAcc,
}

impl GpuBackend {
    /// Canonical name as used in build flags (e.g. `-DGMX_GPU=CUDA`).
    pub fn as_str(&self) -> &'static str {
        match self {
            GpuBackend::Cuda => "CUDA",
            GpuBackend::Hip => "HIP",
            GpuBackend::Sycl => "SYCL",
            GpuBackend::OpenCl => "OpenCL",
            GpuBackend::OpenAcc => "OpenACC",
        }
    }

    /// Parse from a build-flag value (case-insensitive).
    pub fn parse(text: &str) -> Option<Self> {
        match text.trim().to_ascii_uppercase().as_str() {
            "CUDA" => Some(GpuBackend::Cuda),
            "HIP" | "ROCM" => Some(GpuBackend::Hip),
            "SYCL" | "ONEAPI" | "DPCPP" => Some(GpuBackend::Sycl),
            "OPENCL" => Some(GpuBackend::OpenCl),
            "OPENACC" => Some(GpuBackend::OpenAcc),
            _ => None,
        }
    }
}

impl fmt::Display for GpuBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// GPU hardware vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuVendor {
    /// NVIDIA.
    Nvidia,
    /// AMD.
    Amd,
    /// Intel.
    Intel,
}

/// A semantic version with major/minor parts (CUDA runtime, driver, ROCm, Level Zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Version {
    /// Major component.
    pub major: u32,
    /// Minor component.
    pub minor: u32,
}

impl Version {
    /// Construct a version.
    pub const fn new(major: u32, minor: u32) -> Self {
        Self { major, minor }
    }

    /// Parse `major.minor` (extra components ignored).
    pub fn parse(text: &str) -> Option<Self> {
        let mut parts = text.trim().split('.');
        let major = parts.next()?.parse().ok()?;
        let minor = parts.next().unwrap_or("0").parse().ok()?;
        Some(Self { major, minor })
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

/// Compute capability of an NVIDIA device (or the analogous generation id for others).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ComputeCapability {
    /// Major generation (7 = Volta, 8 = Ampere, 9 = Hopper, …).
    pub major: u32,
    /// Minor revision.
    pub minor: u32,
}

impl ComputeCapability {
    /// Construct a compute capability.
    pub const fn new(major: u32, minor: u32) -> Self {
        Self { major, minor }
    }

    /// `sm_XY` string used by device-code generation.
    pub fn sm_name(&self) -> String {
        format!("sm_{}{}", self.major, self.minor)
    }

    /// `compute_XY` string used for PTX (virtual architecture).
    pub fn virtual_name(&self) -> String {
        format!("compute_{}{}", self.major, self.minor)
    }
}

impl fmt::Display for ComputeCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

/// A GPU device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Marketing name.
    pub name: String,
    /// Vendor.
    pub vendor: GpuVendor,
    /// Compute capability (NVIDIA) or generation analogue.
    pub compute_capability: ComputeCapability,
    /// Device memory in GiB.
    pub memory_gib: u32,
    /// Peak single-precision throughput relative to a V100 (1.0 = V100).
    pub relative_throughput: f64,
    /// Backends the device's driver stack supports natively.
    pub supported_backends: Vec<GpuBackend>,
    /// Installed driver version on the host (the left half of Figure 9).
    pub driver_version: Version,
    /// Maximum CUDA/Level-Zero/ROCm runtime version the driver supports.
    pub max_runtime_version: Version,
}

impl GpuModel {
    /// NVIDIA V100 (Ault23).
    pub fn nvidia_v100() -> Self {
        Self {
            name: "NVIDIA V100".into(),
            vendor: GpuVendor::Nvidia,
            compute_capability: ComputeCapability::new(7, 0),
            memory_gib: 16,
            relative_throughput: 1.0,
            supported_backends: vec![GpuBackend::Cuda, GpuBackend::OpenCl, GpuBackend::Sycl],
            driver_version: Version::new(550, 54),
            max_runtime_version: Version::new(12, 4),
        }
    }

    /// NVIDIA A100 (Ault25).
    pub fn nvidia_a100() -> Self {
        Self {
            name: "NVIDIA A100".into(),
            vendor: GpuVendor::Nvidia,
            compute_capability: ComputeCapability::new(8, 0),
            memory_gib: 40,
            relative_throughput: 1.9,
            supported_backends: vec![GpuBackend::Cuda, GpuBackend::OpenCl, GpuBackend::Sycl],
            driver_version: Version::new(550, 54),
            max_runtime_version: Version::new(12, 4),
        }
    }

    /// NVIDIA H100 (GH200 device side, Clariden).
    pub fn nvidia_gh200() -> Self {
        Self {
            name: "NVIDIA GH200 (H100)".into(),
            vendor: GpuVendor::Nvidia,
            compute_capability: ComputeCapability::new(9, 0),
            memory_gib: 96,
            relative_throughput: 3.4,
            supported_backends: vec![GpuBackend::Cuda, GpuBackend::OpenCl, GpuBackend::Sycl],
            driver_version: Version::new(555, 42),
            max_runtime_version: Version::new(12, 8),
        }
    }

    /// Intel Data Center GPU Max 1550 (Aurora).
    pub fn intel_max_1550() -> Self {
        Self {
            name: "Intel Data Center GPU Max 1550".into(),
            vendor: GpuVendor::Intel,
            compute_capability: ComputeCapability::new(12, 60),
            memory_gib: 128,
            relative_throughput: 1.6,
            supported_backends: vec![GpuBackend::Sycl, GpuBackend::OpenCl, GpuBackend::OpenAcc],
            driver_version: Version::new(1, 3),
            max_runtime_version: Version::new(1, 3),
        }
    }

    /// AMD MI250X (kept for catalogue completeness).
    pub fn amd_mi250x() -> Self {
        Self {
            name: "AMD MI250X".into(),
            vendor: GpuVendor::Amd,
            compute_capability: ComputeCapability::new(9, 0),
            memory_gib: 128,
            relative_throughput: 2.2,
            supported_backends: vec![GpuBackend::Hip, GpuBackend::OpenCl, GpuBackend::Sycl],
            driver_version: Version::new(6, 0),
            max_runtime_version: Version::new(6, 0),
        }
    }

    /// Whether this device can run code using `backend`.
    pub fn supports_backend(&self, backend: GpuBackend) -> bool {
        self.supported_backends.contains(&backend)
    }
}

/// How device code is shipped inside a container image (Figure 9).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceCode {
    /// A compiled binary (`cubin`/`hsaco`) for one exact compute capability.
    Cubin(ComputeCapability),
    /// Portable virtual ISA (PTX/SPIR-V) for a minimum compute capability, JIT-compiled
    /// by the driver on newer devices.
    Ptx(ComputeCapability),
}

/// Outcome of checking whether shipped device code can execute on a device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GpuCompatibility {
    /// Runs natively (exact cubin match).
    Native,
    /// Runs after driver JIT compilation of PTX (startup cost, full performance after).
    JitFromPtx,
    /// Cannot run: reason recorded.
    Incompatible(String),
}

impl GpuCompatibility {
    /// True when the code can execute at all.
    pub fn runs(&self) -> bool {
        !matches!(self, GpuCompatibility::Incompatible(_))
    }
}

/// Check the CUDA-style compatibility rules of Figure 9.
///
/// * The container runtime version must not exceed what the host driver supports
///   (minor-version compatibility within a major release is granted).
/// * A `cubin` only runs on a device with the same compute-capability major and a
///   minor that is ≥ the compiled one.
/// * PTX runs on any device with compute capability ≥ the PTX target via JIT.
pub fn check_gpu_compatibility(
    device: &GpuModel,
    container_runtime: Version,
    code: &DeviceCode,
) -> GpuCompatibility {
    // Driver vs runtime. CUDA minor version compatibility: any 12.x runtime
    // works on a 12.y driver, so only the major version constrains admission.
    let max = device.max_runtime_version;
    if container_runtime.major > max.major {
        return GpuCompatibility::Incompatible(format!(
            "container runtime {container_runtime} needs a newer driver (max supported major {})",
            max.major
        ));
    }
    let dev_cc = device.compute_capability;
    match code {
        DeviceCode::Cubin(cc) => {
            if cc.major == dev_cc.major && dev_cc.minor >= cc.minor {
                GpuCompatibility::Native
            } else {
                GpuCompatibility::Incompatible(format!(
                    "cubin for {} cannot run on device {}",
                    cc.sm_name(),
                    dev_cc.sm_name()
                ))
            }
        }
        DeviceCode::Ptx(cc) => {
            if dev_cc >= *cc {
                GpuCompatibility::JitFromPtx
            } else {
                GpuCompatibility::Incompatible(format!(
                    "PTX targets {} which is newer than device {}",
                    cc.virtual_name(),
                    dev_cc.sm_name()
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parse_and_display() {
        assert_eq!(GpuBackend::parse("CUDA"), Some(GpuBackend::Cuda));
        assert_eq!(GpuBackend::parse("hip"), Some(GpuBackend::Hip));
        assert_eq!(GpuBackend::parse("oneapi"), Some(GpuBackend::Sycl));
        assert_eq!(GpuBackend::parse("metal"), None);
        assert_eq!(GpuBackend::Cuda.as_str(), "CUDA");
    }

    #[test]
    fn version_parse_and_order() {
        assert_eq!(Version::parse("12.1"), Some(Version::new(12, 1)));
        assert_eq!(Version::parse("12"), Some(Version::new(12, 0)));
        assert_eq!(Version::parse("12.1.105"), Some(Version::new(12, 1)));
        assert!(Version::new(12, 8) > Version::new(12, 1));
        assert!(Version::new(11, 8) < Version::new(12, 0));
    }

    #[test]
    fn compute_capability_names() {
        let cc = ComputeCapability::new(9, 0);
        assert_eq!(cc.sm_name(), "sm_90");
        assert_eq!(cc.virtual_name(), "compute_90");
    }

    #[test]
    fn exact_cubin_runs_natively() {
        let v100 = GpuModel::nvidia_v100();
        let compat = check_gpu_compatibility(
            &v100,
            Version::new(12, 1),
            &DeviceCode::Cubin(ComputeCapability::new(7, 0)),
        );
        assert_eq!(compat, GpuCompatibility::Native);
    }

    #[test]
    fn cubin_for_newer_major_does_not_run_on_older_device() {
        let v100 = GpuModel::nvidia_v100();
        let compat = check_gpu_compatibility(
            &v100,
            Version::new(12, 1),
            &DeviceCode::Cubin(ComputeCapability::new(8, 0)),
        );
        assert!(!compat.runs());
    }

    #[test]
    fn cubin_does_not_carry_forward_across_majors_but_ptx_does() {
        let h100 = GpuModel::nvidia_gh200();
        // Ampere cubin cannot run on Hopper…
        let cubin = check_gpu_compatibility(
            &h100,
            Version::new(12, 1),
            &DeviceCode::Cubin(ComputeCapability::new(8, 0)),
        );
        assert!(!cubin.runs());
        // …but Ampere PTX can, via JIT (the portability mechanism of Section 2.2).
        let ptx = check_gpu_compatibility(
            &h100,
            Version::new(12, 1),
            &DeviceCode::Ptx(ComputeCapability::new(8, 0)),
        );
        assert_eq!(ptx, GpuCompatibility::JitFromPtx);
    }

    #[test]
    fn newer_runtime_major_than_driver_is_rejected() {
        let v100 = GpuModel::nvidia_v100(); // driver supports up to 12.4
        let compat = check_gpu_compatibility(
            &v100,
            Version::new(13, 0),
            &DeviceCode::Ptx(ComputeCapability::new(7, 0)),
        );
        assert!(!compat.runs());
    }

    #[test]
    fn minor_version_compatibility_within_major() {
        // CUDA 12.8 container on a 12.4-capable driver: allowed (minor version compat).
        let v100 = GpuModel::nvidia_v100();
        let compat = check_gpu_compatibility(
            &v100,
            Version::new(12, 8),
            &DeviceCode::Ptx(ComputeCapability::new(7, 0)),
        );
        assert!(compat.runs());
    }

    #[test]
    fn ptx_for_newer_capability_than_device_fails() {
        let v100 = GpuModel::nvidia_v100();
        let compat = check_gpu_compatibility(
            &v100,
            Version::new(12, 1),
            &DeviceCode::Ptx(ComputeCapability::new(9, 0)),
        );
        assert!(!compat.runs());
    }

    #[test]
    fn device_catalogue_backends() {
        assert!(GpuModel::nvidia_a100().supports_backend(GpuBackend::Cuda));
        assert!(!GpuModel::intel_max_1550().supports_backend(GpuBackend::Cuda));
        assert!(GpuModel::intel_max_1550().supports_backend(GpuBackend::Sycl));
        assert!(GpuModel::amd_mi250x().supports_backend(GpuBackend::Hip));
    }
}
