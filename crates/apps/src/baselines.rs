//! Baseline build profiles for the portability experiments (Figures 10 and 11).
//!
//! Each figure compares the XaaS source-container deployment against the builds a user
//! could otherwise obtain: a naive build following the documentation's default command, a
//! native build tuned by hand, Spack installations (default and explicitly optimised),
//! hand-written specialized containers, and system-provided modules. The profiles encode
//! the paper's observations about each baseline (naive builds miss the GPU, default Spack
//! picks OpenBLAS, Aurora needs a documentation-only compile definition, …).

use xaas_hpcsim::{
    BuildProfile, GpuBackend, GpuVendor, LibraryQuality, OptLevel, SimdLevel, SystemModel,
};

/// The GPU backend a specialized build would pick on this system, if any.
pub fn preferred_gpu_backend(system: &SystemModel) -> Option<GpuBackend> {
    let gpu = system.primary_gpu()?;
    Some(match gpu.vendor {
        GpuVendor::Nvidia => GpuBackend::Cuda,
        GpuVendor::Amd => GpuBackend::Hip,
        GpuVendor::Intel => GpuBackend::Sycl,
    })
}

/// The library quality available from the system's module environment.
fn module_library_quality(system: &SystemModel) -> LibraryQuality {
    if system.has_vendor_blas() {
        LibraryQuality::Vendor
    } else {
        LibraryQuality::Generic
    }
}

/// Threads used by the single-node GROMACS runs (the paper pins 16 OpenMP threads on the
/// Ault systems and uses larger counts on Aurora/Clariden).
fn gromacs_threads(system: &SystemModel) -> u32 {
    system.cpu.total_cores().min(36)
}

/// GROMACS baselines for Figure 10 on one system, in plot order.
pub fn gromacs_baselines(system: &SystemModel) -> Vec<BuildProfile> {
    let native_simd = system.cpu.best_simd();
    let threads = gromacs_threads(system);
    let gpu = preferred_gpu_backend(system);
    let module_quality = module_library_quality(system);
    let mut baselines = Vec::new();

    // Naive build: the documentation's default CMake command. GPU acceleration is not
    // enabled even when CUDA modules are loaded; MKL is still picked up from modules.
    baselines.push(
        BuildProfile::new("Naive Build", SimdLevel::Sse41, threads)
            .with_libraries(module_quality, module_quality)
            .with_opt(OptLevel::O2),
    );

    // Native build: tuned by hand on the node, GPU enabled, native SIMD.
    let mut native = BuildProfile::new("Native Build", native_simd, threads)
        .with_libraries(module_quality, module_quality);
    if let Some(backend) = gpu {
        native = native.with_gpu(backend);
    }
    baselines.push(native);

    // Spack default: GPU + MPI variants, but the solver picks OpenBLAS/FFTW, hurting the
    // CPU part of the application.
    let mut spack = BuildProfile::new("Spack", native_simd, threads)
        .with_libraries(LibraryQuality::Generic, LibraryQuality::Generic);
    if let Some(backend) = gpu {
        spack = spack.with_gpu(backend);
    }
    baselines.push(spack);

    // Spack with explicit MKL selection: close to the XaaS source container.
    let mut spack_opt = BuildProfile::new("Spack Optimized", native_simd, threads)
        .with_libraries(module_quality, module_quality);
    if let Some(backend) = gpu {
        spack_opt = spack_opt.with_gpu(backend);
    }
    baselines.push(spack_opt);

    // XaaS source container: specialization points selected from the intersection,
    // running inside the container runtime (negligible overhead).
    let mut xaas = BuildProfile::new("XaaS Source", native_simd, threads)
        .with_libraries(module_quality, module_quality)
        .with_container_overhead(1.01);
    if let Some(backend) = gpu {
        xaas = xaas.with_gpu(backend);
    }
    baselines.push(xaas);

    if system.name == "Aurora" {
        // The default source container misses the Intel-Max-only compile definition that
        // only appears in the documentation, so it runs CPU-only (Section 6.3.1).
        baselines.push(
            BuildProfile::new("XaaS Source (no fix)", native_simd, threads)
                .with_libraries(module_quality, module_quality)
                .with_container_overhead(1.01),
        );
        // Hand-written specialized container and the system module, both GPU-capable.
        baselines.push(
            BuildProfile::new("Specialized Container", native_simd, threads)
                .with_libraries(module_quality, module_quality)
                .with_gpu(GpuBackend::Sycl)
                .with_container_overhead(1.01),
        );
        baselines.push(
            BuildProfile::new("Module", native_simd, threads)
                .with_libraries(module_quality, module_quality)
                .with_gpu(GpuBackend::Sycl),
        );
    }
    baselines
}

/// The portable SYCL container of Section 6.3.1 ("Portable Container"): GPU-capable on
/// NVIDIA hardware only through the CUDA plugin, 11–20% slower, one GPU architecture at a
/// time.
pub fn gromacs_portable_sycl_container(system: &SystemModel) -> BuildProfile {
    BuildProfile::new(
        "Portable SYCL Container",
        system.cpu.best_simd(),
        gromacs_threads(system),
    )
    .with_libraries(LibraryQuality::Vendor, LibraryQuality::Vendor)
    .with_gpu(GpuBackend::Sycl)
    .with_container_overhead(1.01)
}

/// llama.cpp baselines for Figure 11 on one system, in plot order.
pub fn llamacpp_baselines(system: &SystemModel) -> Vec<BuildProfile> {
    let threads = system.cpu.total_cores();
    let gpu = preferred_gpu_backend(system);
    let mut baselines = Vec::new();

    // Naive default build: portable CPU kernels, no GPU backend, no BLAS.
    baselines.push(
        BuildProfile::new("Naive Build", SimdLevel::Sse41, threads)
            .with_libraries(LibraryQuality::Generic, LibraryQuality::Generic)
            .with_opt(OptLevel::O2),
    );

    // Specialized bare-metal build.
    let mut specialized = BuildProfile::new("Specialized", system.cpu.best_simd(), threads)
        .with_libraries(LibraryQuality::Vendor, LibraryQuality::Vendor);
    if let Some(backend) = gpu {
        specialized = specialized.with_gpu(backend);
    }
    baselines.push(specialized.clone());

    // Specialized container (not built on Aurora in the paper).
    if system.name != "Aurora" {
        let mut container = specialized.clone();
        container.label = "Specialized Container".into();
        container.container_overhead = 1.01;
        baselines.push(container);
    }

    // XaaS source container.
    let mut xaas = specialized;
    xaas.label = "XaaS Source Container".into();
    xaas.container_overhead = 1.01;
    baselines.push(xaas);

    baselines
}

/// Naive ARM builds fall back to NEON rather than SSE; correct the naive profile's SIMD
/// level for the system's ISA family so the binary can actually execute.
pub fn portable_fallback_simd(system: &SystemModel) -> SimdLevel {
    match system.cpu.family {
        xaas_hpcsim::IsaFamily::Aarch64 => SimdLevel::NeonAsimd,
        _ => SimdLevel::Sse41,
    }
}

/// Adjust baseline profiles so their SIMD level is executable on the target system (the
/// portable-binary levels differ between x86 and ARM).
pub fn make_executable(mut profiles: Vec<BuildProfile>, system: &SystemModel) -> Vec<BuildProfile> {
    for profile in &mut profiles {
        if !system.cpu.supports(profile.simd) {
            profile.simd = portable_fallback_simd(system);
        }
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gromacs;
    use crate::llamacpp;
    use xaas_hpcsim::ExecutionEngine;

    #[test]
    fn preferred_backends_per_system() {
        assert_eq!(
            preferred_gpu_backend(&SystemModel::ault23()),
            Some(GpuBackend::Cuda)
        );
        assert_eq!(
            preferred_gpu_backend(&SystemModel::aurora()),
            Some(GpuBackend::Sycl)
        );
        assert_eq!(preferred_gpu_backend(&SystemModel::ault01_04()), None);
    }

    #[test]
    fn figure_10_ordering_naive_worst_xaas_best_on_ault23() {
        let system = SystemModel::ault23();
        let engine = ExecutionEngine::new(&system);
        let workload = gromacs::workload_test_a(1000);
        let profiles = make_executable(gromacs_baselines(&system), &system);
        let mut times = std::collections::BTreeMap::new();
        for profile in &profiles {
            let report = engine.execute(&workload, profile).unwrap();
            times.insert(profile.label.clone(), report.compute_seconds);
        }
        assert!(
            times["Naive Build"] > 2.0 * times["XaaS Source"],
            "naive misses the GPU"
        );
        assert!(
            times["Spack"] > times["Spack Optimized"],
            "default Spack picks OpenBLAS"
        );
        let ratio = times["XaaS Source"] / times["Native Build"];
        assert!(
            ratio < 1.05,
            "XaaS source matches the native build: {ratio}"
        );
    }

    #[test]
    fn aurora_unfixed_source_container_is_cpu_only() {
        let system = SystemModel::aurora();
        let engine = ExecutionEngine::new(&system);
        let workload = gromacs::workload_test_b(1000);
        let profiles = make_executable(gromacs_baselines(&system), &system);
        let unfixed = profiles
            .iter()
            .find(|p| p.label == "XaaS Source (no fix)")
            .unwrap();
        let fixed = profiles.iter().find(|p| p.label == "XaaS Source").unwrap();
        let unfixed_report = engine.execute(&workload, unfixed).unwrap();
        let fixed_report = engine.execute(&workload, fixed).unwrap();
        assert!(!unfixed_report.used_gpu);
        assert!(fixed_report.used_gpu);
        assert!(unfixed_report.compute_seconds > fixed_report.compute_seconds);
    }

    #[test]
    fn figure_11_naive_is_far_slower_than_gpu_builds_everywhere() {
        for system in [
            SystemModel::ault23(),
            SystemModel::aurora(),
            SystemModel::clariden(),
        ] {
            let engine = ExecutionEngine::new(&system);
            let workload = llamacpp::benchmark_workload(512, 128);
            let profiles = make_executable(llamacpp_baselines(&system), &system);
            let naive = engine
                .execute(
                    &workload,
                    profiles.iter().find(|p| p.label == "Naive Build").unwrap(),
                )
                .unwrap();
            let xaas = engine
                .execute(
                    &workload,
                    profiles
                        .iter()
                        .find(|p| p.label == "XaaS Source Container")
                        .unwrap(),
                )
                .unwrap();
            assert!(!naive.used_gpu);
            assert!(xaas.used_gpu);
            let ratio = naive.compute_seconds / xaas.compute_seconds;
            assert!(ratio > 1.5, "{}: naive/xaas ratio {ratio}", system.name);
        }
    }

    #[test]
    fn portable_sycl_container_pays_the_cuda_plugin_penalty() {
        let system = SystemModel::ault23();
        let engine = ExecutionEngine::new(&system);
        let workload = gromacs::workload_test_a(1000);
        let portable = engine
            .execute(&workload, &gromacs_portable_sycl_container(&system))
            .unwrap();
        let xaas = engine
            .execute(
                &workload,
                make_executable(gromacs_baselines(&system), &system)
                    .iter()
                    .find(|p| p.label == "XaaS Source")
                    .unwrap(),
            )
            .unwrap();
        let penalty = portable.compute_seconds / xaas.compute_seconds;
        assert!(
            penalty > 1.08 && penalty < 1.35,
            "SYCL portable container 11-20% slower: {penalty}"
        );
    }

    #[test]
    fn make_executable_fixes_sse_profiles_on_arm() {
        let system = SystemModel::clariden();
        let profiles = make_executable(llamacpp_baselines(&system), &system);
        for profile in &profiles {
            assert!(
                system.cpu.supports(profile.simd),
                "{} not executable",
                profile.label
            );
        }
    }
}
