//! Section 6.4 benchmark: the IR-deduplication pipeline and its stage ablations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xaas::prelude::*;
use xaas_apps::{gromacs, lulesh};
use xaas_bench::{render, tu_reduction};
use xaas_container::ImageStore;

fn bench_tu_reduction(c: &mut Criterion) {
    println!("{}", render::render_reduction(&tu_reduction()));

    let gromacs_project = gromacs::project();
    let lulesh_project = lulesh::project();
    let store = ImageStore::new();
    let orch = Orchestrator::uncached(&store);

    let mut group = c.benchmark_group("fig13/pipeline");
    group.bench_function("gromacs_5_isa_sweep", |b| {
        let config = IrPipelineConfig::sweep_options(&gromacs_project, &["GMX_SIMD"]).with_values(
            "GMX_SIMD",
            &["SSE4.1", "AVX2_128", "AVX_256", "AVX2_256", "AVX_512"],
        );
        b.iter(|| {
            black_box(
                IrBuildRequest::new(&gromacs_project, &config)
                    .reference("b:isa")
                    .submit(&orch)
                    .unwrap(),
            )
        });
    });
    group.bench_function("lulesh_mpi_openmp_sweep", |b| {
        let config = IrPipelineConfig::sweep_options(&lulesh_project, &["WITH_MPI", "WITH_OPENMP"]);
        b.iter(|| {
            black_box(
                IrBuildRequest::new(&lulesh_project, &config)
                    .reference("b:lulesh")
                    .submit(&orch)
                    .unwrap(),
            )
        });
    });
    group.finish();

    // Ablation: which stages contribute how much (and what they cost).
    let mut group = c.benchmark_group("fig13/ablation_stages");
    for (name, vectorization_delay, openmp_detection) in [
        ("all_stages", true, true),
        ("no_vectorization_delay", false, true),
        ("no_openmp_detection", true, false),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            let mut config =
                IrPipelineConfig::sweep_options(&gromacs_project, &["GMX_SIMD", "GMX_OPENMP"])
                    .with_values("GMX_SIMD", &["SSE4.1", "AVX_512"]);
            config.stages.vectorization_delay = vectorization_delay;
            config.stages.openmp_detection = openmp_detection;
            b.iter(|| {
                black_box(
                    IrBuildRequest::new(&gromacs_project, &config)
                        .reference("b:abl")
                        .submit(&orch)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tu_reduction
}
criterion_main!(benches);
