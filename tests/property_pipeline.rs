//! Property-based tests over the core invariants of the substrates and the pipeline.

use proptest::prelude::*;
use xaas::prelude::*;
use xaas_buildsys::OptionAssignment;
use xaas_container::digest::{sha256, Digest};
use xaas_container::{Layer, RootFs};
use xaas_hpcsim::{
    BuildProfile, ExecutionEngine, KernelClass, KernelWork, SimdLevel, SystemModel, Workload,
};
use xaas_specs::{normalize_name, score, SpecCategory, SpecEntry, SpecializationDocument};
use xaas_xir::{CompileFlags, Compiler, Interpreter, TargetIsa, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SHA-256 content addressing: equal content ⇔ equal digest; prefix changes digest.
    #[test]
    fn digest_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(sha256(&data), sha256(&data));
        prop_assert_eq!(Digest::of_bytes(&data), Digest::of_bytes(&data));
        let mut extended = data.clone();
        extended.push(0xAB);
        prop_assert_ne!(Digest::of_bytes(&data), Digest::of_bytes(&extended));
    }

    /// Layer archives round-trip for arbitrary file sets, and diff IDs are order-independent.
    #[test]
    fn layer_roundtrip_and_order_independence(
        files in proptest::collection::btree_map("[a-z]{1,8}(/[a-z]{1,8}){0,2}", "[ -~]{0,64}", 1..12)
    ) {
        let mut forward = Layer::new("forward");
        for (path, content) in &files {
            forward.add_text(format!("/{path}"), content.clone());
        }
        let mut reverse = Layer::new("forward");
        for (path, content) in files.iter().rev() {
            reverse.add_text(format!("/{path}"), content.clone());
        }
        prop_assert_eq!(Layer::from_archive(&forward.to_archive()).unwrap(), forward.clone());
        prop_assert_eq!(forward.diff_id(), reverse.diff_id());
        let root = RootFs::flatten([&forward]);
        prop_assert!(root.len() <= files.len());
    }

    /// The interpreter computes identical results regardless of the vector width chosen at
    /// lowering time (the correctness half of "delay vectorization until deployment").
    #[test]
    fn vector_width_never_changes_results(
        values in proptest::collection::vec(-1000.0f64..1000.0, 1..40),
        scale in -8.0f64..8.0,
        width in prop_oneof![Just(1u32), Just(2), Just(4), Just(8), Just(16)],
    ) {
        let source = r#"
kernel void saxpy(float* y, float* x, float a, int n) {
    for (int i = 0; i < n; i = i + 1) { y[i] = y[i] + a * x[i]; }
}
float sum(float* x, int n) {
    float acc = 0.0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + x[i]; }
    return acc;
}
"#;
        let compiler = Compiler::new();
        let flags = CompileFlags::parse(["-O3".to_string()]);
        let module = compiler.compile_to_ir("prop.ck", source, &flags).unwrap();
        let scalar = xaas_xir::lower_to_machine(&module, &TargetIsa::scalar("none"));
        let vector = xaas_xir::lower_to_machine(&module, &TargetIsa::vector("t", width, true));
        let n = values.len() as i64;
        let run = |machine: &xaas_xir::MachineModule| {
            let interp = Interpreter::for_machine(machine);
            interp.run(
                "saxpy",
                vec![
                    Value::FloatBuffer(vec![1.0; values.len()]),
                    Value::FloatBuffer(values.clone()),
                    Value::Float(scale),
                    Value::Int(n),
                ],
            ).unwrap()
        };
        prop_assert_eq!(run(&scalar).buffers, run(&vector).buffers);
    }

    /// The execution model is monotone in the obvious knobs: more threads never slows a
    /// parallel workload down, and a wider SIMD level never slows it down either.
    #[test]
    fn execution_model_is_monotone(
        threads_a in 1u32..64, threads_b in 1u32..64,
        seconds in 10.0f64..10_000.0,
    ) {
        let system = SystemModel::ault23();
        let engine = ExecutionEngine::new(&system);
        let workload = Workload {
            name: "prop".into(),
            kernels: vec![KernelWork {
                name: "k".into(),
                class: KernelClass::MdNonbonded,
                scalar_reference_seconds: seconds,
            }],
            io_seconds: 0.0,
        };
        let (low, high) = if threads_a <= threads_b { (threads_a, threads_b) } else { (threads_b, threads_a) };
        let time_low = engine.execute(&workload, &BuildProfile::new("l", SimdLevel::Avx2_256, low)).unwrap().compute_seconds;
        let time_high = engine.execute(&workload, &BuildProfile::new("h", SimdLevel::Avx2_256, high)).unwrap().compute_seconds;
        prop_assert!(time_high <= time_low * 1.0001);
        let sse = engine.execute(&workload, &BuildProfile::new("s", SimdLevel::Sse2, low)).unwrap().compute_seconds;
        let avx = engine.execute(&workload, &BuildProfile::new("a", SimdLevel::Avx512, low)).unwrap().compute_seconds;
        prop_assert!(avx <= sse * 1.0001);
    }

    /// Scoring invariants: F1 is within [0,1], perfect predictions score 1, and
    /// normalisation never lowers the score.
    #[test]
    fn scoring_is_bounded_and_normalisation_monotone(
        names in proptest::collection::btree_set("[A-Za-z][A-Za-z0-9_.-]{0,12}", 1..20),
        drift in proptest::collection::vec(any::<bool>(), 20),
    ) {
        let mut truth = SpecializationDocument::new("prop");
        for name in &names {
            truth.push(SpecEntry::new(SpecCategory::GpuBackend, name.clone()));
        }
        let mut predicted = SpecializationDocument::new("prop");
        for (index, name) in names.iter().enumerate() {
            let drifted = if drift[index % drift.len()] { name.replace('_', "-").to_ascii_lowercase() } else { name.clone() };
            predicted.push(SpecEntry::new(SpecCategory::GpuBackend, drifted));
        }
        let strict = score(&predicted, &truth, false);
        let relaxed = score(&predicted, &truth, true);
        prop_assert!(strict.f1() >= 0.0 && strict.f1() <= 1.0);
        prop_assert!(relaxed.f1() + 1e-12 >= strict.f1());
        let perfect = score(&truth, &truth, false);
        prop_assert!((perfect.f1() - 1.0).abs() < 1e-12);
        for name in &names {
            prop_assert_eq!(normalize_name(name), normalize_name(&name.replace('_', "-")));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pipeline invariant: for any subset of swept GROMACS options, the number of IR files
    /// built never exceeds the total translation units, stage counts are monotonically
    /// non-increasing, and every manifest references only existing artifacts.
    #[test]
    fn pipeline_invariants_hold_for_random_sweeps(
        sweep_simd in proptest::sample::subsequence(vec!["SSE4.1", "AVX_256", "AVX_512"], 1..=3),
        sweep_gpu in proptest::sample::subsequence(vec!["OFF", "CUDA", "SYCL"], 1..=3),
    ) {
        let project = xaas_apps::gromacs::project();
        let store = ImageStore::new();
        let config = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_GPU"])
            .with_values("GMX_SIMD", &sweep_simd)
            .with_values("GMX_GPU", &sweep_gpu);
        let build = IrBuildRequest::new(&project, &config)
            .reference("prop:ir")
            .submit(&Orchestrator::uncached(&store))
            .unwrap();
        let stats = build.stats;
        prop_assert_eq!(stats.configurations, sweep_simd.len() * sweep_gpu.len());
        prop_assert!(stats.ir_files_built() + stats.system_dependent_units <= stats.total_translation_units);
        prop_assert!(stats.unique_after_preprocessing <= stats.unique_after_generation);
        prop_assert!(stats.unique_after_openmp <= stats.unique_after_preprocessing);
        prop_assert!(stats.unique_after_vectorization <= stats.unique_after_openmp);
        for manifest in &build.manifests {
            for unit in &manifest.units {
                if let Some(id) = unit.artifact.strip_prefix("ir:") {
                    prop_assert!(build.units.contains_key(id));
                }
            }
        }
    }

    /// Engine-schedule independence: for arbitrary option sweeps and worker counts,
    /// the parallel engine build is byte-identical to the single-threaded run — same
    /// committed image digest, same `ActionTrace` (records *and* action set), same
    /// units and stats. Parallelism may only change wall-clock, never outputs.
    #[test]
    fn parallel_engine_builds_match_single_threaded_runs(
        sweep_simd in proptest::sample::subsequence(vec!["SSE4.1", "AVX_256", "AVX_512"], 1..=3),
        sweep_gpu in proptest::sample::subsequence(vec!["OFF", "CUDA"], 1..=2),
        workers in 2usize..6,
    ) {
        let project = xaas_apps::gromacs::project();
        let config = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_GPU"])
            .with_values("GMX_SIMD", &sweep_simd)
            .with_values("GMX_GPU", &sweep_gpu);
        let reference = "prop:engine";
        let serial_store = ImageStore::new();
        let serial_orch = Orchestrator::builder()
            .uncached(serial_store.clone())
            .workers(1)
            .build();
        let serial = IrBuildRequest::new(&project, &config)
            .reference(reference)
            .submit(&serial_orch)
            .unwrap();
        let parallel_store = ImageStore::new();
        let parallel_orch = Orchestrator::builder()
            .uncached(parallel_store.clone())
            .workers(workers)
            .build();
        let parallel = IrBuildRequest::new(&project, &config)
            .reference(reference)
            .submit(&parallel_orch)
            .unwrap();
        prop_assert_eq!(
            serial_store.resolve(reference).unwrap(),
            parallel_store.resolve(reference).unwrap()
        );
        prop_assert_eq!(&parallel.image.layers, &serial.image.layers);
        prop_assert_eq!(&parallel.units, &serial.units);
        prop_assert_eq!(&parallel.stats, &serial.stats);
        prop_assert_eq!(&parallel.trace, &serial.trace);
        prop_assert_eq!(parallel.trace.action_set(), serial.trace.action_set());
        prop_assert!(parallel.trace.stage_depth < serial.trace.len());
    }

    /// Cache-backend independence: a `NoCache` build and a warm `ActionCache` build
    /// of the same sweep produce identical images (and identical action sets — only
    /// the cached flags differ).
    #[test]
    fn nocache_and_warm_cache_builds_produce_identical_images(
        sweep_simd in proptest::sample::subsequence(vec!["SSE4.1", "AVX2_128", "AVX_512"], 1..=3),
    ) {
        let project = xaas_apps::gromacs::project();
        let config = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD"])
            .with_values("GMX_SIMD", &sweep_simd);
        let reference = "prop:backends";
        let uncached_store = ImageStore::new();
        let uncached = IrBuildRequest::new(&project, &config)
            .reference(reference)
            .submit(&Orchestrator::uncached(&uncached_store))
            .unwrap();
        let cached_store = ImageStore::new();
        let cache = ActionCache::new(cached_store.clone());
        let session = Orchestrator::with_cache(&cache);
        let cold = IrBuildRequest::new(&project, &config)
            .reference(reference)
            .submit(&session)
            .unwrap();
        let warm = IrBuildRequest::new(&project, &config)
            .reference(reference)
            .submit(&session)
            .unwrap();
        prop_assert_eq!(warm.actions.executed, 0);
        prop_assert_eq!(warm.actions.cached, cold.actions.executed);
        prop_assert_eq!(uncached.actions.cached, 0);
        prop_assert_eq!(&cold.image.layers, &uncached.image.layers);
        prop_assert_eq!(&warm.image.layers, &uncached.image.layers);
        prop_assert_eq!(
            uncached_store.resolve(reference).unwrap(),
            cached_store.resolve(reference).unwrap()
        );
        prop_assert_eq!(warm.trace.action_set(), cold.trace.action_set());
        prop_assert_eq!(uncached.trace.action_set(), cold.trace.action_set());
    }

    /// Scheduling-policy soundness (the orchestrator acceptance property): for
    /// arbitrary SIMD sweeps and worker counts, deploying the GROMACS MPI sweep
    /// under `CriticalPathFirst` with a bounded `sd-compile` slot produces a valid
    /// `ActionTrace` whose dispatch order differs from `Fifo` (FIFO starts the
    /// artifact frontier with the manifest-order sd-compile; critical-path-first
    /// with the heaviest machine-lower) while the final images stay byte-identical.
    #[test]
    fn critical_path_first_reorders_dispatch_but_images_stay_byte_identical(
        sweep_simd in proptest::sample::subsequence(vec!["SSE4.1", "AVX_256", "AVX_512"], 1..=3),
        workers in 1usize..6,
        sd_cap in 1usize..3,
    ) {
        let project = xaas_apps::gromacs::project();
        // Sweep MPI too: the MPI halo file ships as source, giving the deployment
        // graph the mixed machine-lower/sd-compile frontier the policies reorder.
        let config = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_MPI"])
            .with_values("GMX_SIMD", &sweep_simd);
        let build = IrBuildRequest::new(&project, &config)
            .reference("prop:policy")
            .submit(&Orchestrator::new())
            .unwrap();
        let system = SystemModel::ault23();
        let selection = OptionAssignment::new()
            .with("GMX_SIMD", *sweep_simd.last().unwrap())
            .with("GMX_MPI", "ON");
        let deploy = |orch: &Orchestrator| {
            IrDeployRequest::new(&build, &project, &system)
                .selection(selection.clone())
                .simd(SimdLevel::parse(sweep_simd.last().unwrap()).unwrap())
                .submit(orch)
                .unwrap()
        };
        let fifo_store = ImageStore::new();
        let fifo = deploy(
            &Orchestrator::builder()
                .uncached(fifo_store.clone())
                .workers(workers)
                .build(),
        );
        let cpf_store = ImageStore::new();
        let cpf = deploy(
            &Orchestrator::builder()
                .uncached(cpf_store.clone())
                .workers(workers)
                .policy(CriticalPathFirst::new().with_cap(ActionKind::SdCompile, sd_cap))
                .build(),
        );
        prop_assert!(cpf.stats.compiled_source_units > 0, "sd-compiles present");
        // Valid trace: same records (node order, identities) under both policies.
        prop_assert_eq!(&cpf.trace.records, &fifo.trace.records);
        prop_assert_eq!(cpf.trace.action_set(), fifo.trace.action_set());
        prop_assert_eq!(&cpf.trace.policy, "critical-path-first");
        // The dispatch order differs...
        prop_assert_ne!(fifo.trace.execution_order(), cpf.trace.execution_order());
        // ...but the committed images are byte-identical.
        prop_assert_eq!(&cpf.image.layers, &fifo.image.layers);
        prop_assert_eq!(
            fifo_store.resolve(&fifo.reference).unwrap(),
            cpf_store.resolve(&cpf.reference).unwrap()
        );
    }

    /// Action-cache soundness: for arbitrary option sweeps, a warm-cache
    /// `IrDeployRequest` produces byte-identical artifacts and identical
    /// `DeploymentStats` to a cold build — the cache may only save work, never
    /// change outputs.
    #[test]
    fn warm_cache_deployments_are_byte_identical_to_cold(
        sweep_simd in proptest::sample::subsequence(vec!["SSE4.1", "AVX_256", "AVX_512"], 1..=3),
        sweep_fft in proptest::sample::subsequence(vec!["fftw3", "mkl"], 1..=2),
    ) {
        let project = xaas_apps::gromacs::project();
        let store = ImageStore::new();
        let cache = ActionCache::new(store.clone());
        let config = IrPipelineConfig::sweep_options(&project, &["GMX_SIMD", "GMX_FFT_LIBRARY"])
            .with_values("GMX_SIMD", &sweep_simd)
            .with_values("GMX_FFT_LIBRARY", &sweep_fft);
        let session = Orchestrator::with_cache(&cache);
        let build = IrBuildRequest::new(&project, &config)
            .reference("prop:warm")
            .submit(&session)
            .unwrap();
        let system = SystemModel::ault23();
        for simd_name in &sweep_simd {
            let simd = SimdLevel::parse(simd_name).unwrap();
            let selection = OptionAssignment::new()
                .with("GMX_SIMD", *simd_name)
                .with("GMX_FFT_LIBRARY", sweep_fft[0]);
            // Cold: a fresh, uncached session. Warm: the shared cache, primed by a
            // first deployment of the same configuration.
            let cold = IrDeployRequest::new(&build, &project, &system)
                .selection(selection.clone())
                .simd(simd)
                .submit(&Orchestrator::uncached(&store))
                .unwrap();
            let primed = IrDeployRequest::new(&build, &project, &system)
                .selection(selection.clone())
                .simd(simd)
                .submit(&session)
                .unwrap();
            let warm = IrDeployRequest::new(&build, &project, &system)
                .selection(selection.clone())
                .simd(simd)
                .submit(&session)
                .unwrap();
            prop_assert_eq!(warm.actions.executed, 0, "warm deployment must not compile");
            prop_assert_eq!(warm.actions.cached, primed.actions.total());
            prop_assert_eq!(&warm.stats, &cold.stats);
            prop_assert_eq!(&warm.machine_modules, &cold.machine_modules);
            prop_assert_eq!(&warm.image.layers, &cold.image.layers);
            prop_assert_eq!(&warm.reference, &cold.reference);
            prop_assert_eq!(&warm.vectorization, &cold.vectorization);
        }
    }
}
