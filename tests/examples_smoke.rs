//! Smoke test: every example must run to completion with exit code 0.
//!
//! The examples are the documented entry points of the reproduction
//! (`cargo run --example quickstart`, …); this keeps them from rotting.
//! They are invoked through the same `cargo` that runs the test suite, so a
//! plain `cargo test` exercises them with no extra CI step. Cargo's target
//! directory lock serializes the inner builds safely.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "specialization_discovery",
    "gromacs_ir_container",
    "llamacpp_source_container",
];

#[test]
fn all_examples_run_to_completion() {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for example in EXAMPLES {
        let output = Command::new(cargo)
            .args(["run", "--quiet", "--offline", "--example", example])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{example}`: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` failed with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example `{example}` produced no output"
        );
    }
}
