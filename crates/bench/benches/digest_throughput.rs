//! Scalar SHA-256 throughput on the store's hot loop: MB/s at the payload sizes
//! the pipeline actually hashes — small manifests (1 KiB), typical layer blobs
//! (64 KiB), and large IR/object payloads (1 MiB).
//!
//! The digest is the per-byte cost floor of the content-addressed store: every
//! `put_blob` without a known digest pays it once. The MB/s lines printed here
//! feed the `digest_mb_per_s` field of `BENCH_<pr>.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use xaas_container::Digest;

const SIZES: &[(&str, usize)] = &[("1KiB", 1 << 10), ("64KiB", 1 << 16), ("1MiB", 1 << 20)];

/// Hash `buffer` repeatedly until ~0.25 s elapses and report MB/s.
fn throughput_mb_per_s(buffer: &[u8]) -> f64 {
    // Warm-up: fault in the buffer and warm the schedule before timing.
    black_box(Digest::of_bytes(buffer));
    let started = Instant::now();
    let mut hashed = 0usize;
    while started.elapsed().as_secs_f64() < 0.25 {
        black_box(Digest::of_bytes(black_box(buffer)));
        hashed += buffer.len();
    }
    hashed as f64 / started.elapsed().as_secs_f64() / 1e6
}

fn bench_digest(c: &mut Criterion) {
    for &(label, size) in SIZES {
        let buffer: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        println!(
            "digest_throughput/{label}: {:.1} MB/s",
            throughput_mb_per_s(&buffer)
        );
    }

    let mut group = c.benchmark_group("digest/sha256");
    for &(label, size) in SIZES {
        let buffer: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        group.bench_function(label, |b| {
            b.iter(|| black_box(Digest::of_bytes(black_box(&buffer))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_digest);
criterion_main!(benches);
