//! The action graph: an explicit, staged DAG of build/deploy actions.
//!
//! Drivers (the IR-container builder, both deployers, the fleet specializer) describe
//! one stage of their pipeline as a graph of [`ActionKind`]-tagged nodes with explicit
//! dependency edges, then submit it to the [`Engine`](crate::engine::Engine). Nodes
//! are added in topological order (an edge may only point at an already-added node),
//! which keeps cycle detection trivial and the executor allocation-free on the hot
//! path.

#![deny(clippy::unwrap_used, clippy::dbg_macro)]
use super::trace::ActionKind;
use xaas_container::{Blob, BuildKey};

/// Index of a node inside one [`ActionGraph`] (valid only for that graph).
pub type ActionId = usize;

/// The outputs of a node's dependencies, in the order the dependencies were declared.
#[derive(Debug, Clone, Default)]
pub struct ActionInputs {
    outputs: Vec<Blob>,
}

impl ActionInputs {
    pub(crate) fn new(outputs: Vec<Blob>) -> Self {
        Self { outputs }
    }

    /// The output bytes of the `index`-th declared dependency.
    pub fn dep(&self, index: usize) -> &[u8] {
        &self.outputs[index]
    }

    /// The `index`-th dependency output as a shared [`Blob`] handle — clone it to
    /// reuse the dependency's bytes (e.g. as a layer payload) without copying.
    pub fn dep_blob(&self, index: usize) -> &Blob {
        &self.outputs[index]
    }

    /// Number of dependency outputs available.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the node declared no dependencies.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Iterate over all dependency outputs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.outputs.iter().map(|o| o.as_slice())
    }
}

pub(crate) type ActionFn<'env, E> =
    Box<dyn FnOnce(&ActionInputs) -> Result<Vec<u8>, E> + Send + 'env>;

pub(crate) type KeyFn<'env> = Box<dyn FnOnce(&ActionInputs) -> BuildKey + Send + 'env>;

/// How a node's cache identity is determined.
pub(crate) enum KeySpec<'env> {
    /// The node never touches the cache.
    None,
    /// The key is known at graph-construction time.
    Static(BuildKey),
    /// The key is derived from the node's dependency outputs at dispatch time
    /// (e.g. an `sd-compile` keyed on the digest its preprocess dependency
    /// produced — the whole deploy pipeline fits in one submission this way).
    Derived(KeyFn<'env>),
}

pub(crate) struct ActionNode<'env, E> {
    pub(crate) kind: ActionKind,
    pub(crate) label: String,
    pub(crate) key: KeySpec<'env>,
    pub(crate) deps: Vec<ActionId>,
    pub(crate) run: ActionFn<'env, E>,
    pub(crate) job: Option<usize>,
}

/// A DAG of actions to submit to the [`Engine`](crate::engine::Engine).
///
/// `'env` is the lifetime of the data the node closures borrow (project specs, the
/// compiler, manifest state); the executor runs the closures on scoped threads, so
/// borrowing driver locals is free. `E` is the driver's typed error.
///
/// Duplicate [`BuildKey`]s are safe, including *unordered* duplicates: the
/// executor routes keyed nodes through the cache backend's nonblocking flight
/// protocol, so one racing node becomes the flight owner and every other node
/// with the same key parks as a continuation and is woken with the owner's
/// bytes — no worker thread blocks and the compute runs once. The resulting
/// bytes are identical regardless of scheduling; only *which* racing record
/// carries `cached: false` is scheduling-dependent, so drivers that assert
/// exact trace equality across runs should still order duplicates with a
/// dependency edge — the fleet grafter uses exactly this shape (a cache-probe
/// "alias" that fans a shared artifact out into another job's subgraph as a
/// deterministic hit).
pub struct ActionGraph<'env, E> {
    pub(crate) nodes: Vec<ActionNode<'env, E>>,
    /// Job tag applied to subsequently added nodes (see [`ActionGraph::set_job`]).
    current_job: Option<usize>,
}

impl<'env, E> Default for ActionGraph<'env, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'env, E> ActionGraph<'env, E> {
    /// An empty graph.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            current_job: None,
        }
    }

    /// Tag every subsequently added node with `job` (or clear the tag with `None`).
    ///
    /// Job tags let one graph carry several logical subgraphs — the fleet request
    /// grafts every deployment job into one union graph per wave — and flow into
    /// [`ActionRecord::job`](crate::engine::ActionRecord::job) and the per-node
    /// [`NodeInfo`](crate::engine::NodeInfo) of the run, so failures and trace
    /// records attribute back to the job that planned them.
    pub fn set_job(&mut self, job: Option<usize>) {
        self.current_job = job;
    }

    /// Add an uncached action: it always executes, and its record carries no key.
    ///
    /// # Panics
    /// If a dependency refers to a node that has not been added yet (graphs are
    /// built in topological order; a forward edge is a driver bug).
    pub fn add(
        &mut self,
        kind: ActionKind,
        label: impl Into<String>,
        deps: &[ActionId],
        run: impl FnOnce(&ActionInputs) -> Result<Vec<u8>, E> + Send + 'env,
    ) -> ActionId {
        self.push(kind, label.into(), KeySpec::None, deps, Box::new(run))
    }

    /// Add a cache-routed action: the executor consults the engine's cache backend
    /// for `key` and only runs the closure on a miss.
    ///
    /// # Panics
    /// If a dependency refers to a node that has not been added yet.
    pub fn add_cached(
        &mut self,
        kind: ActionKind,
        label: impl Into<String>,
        key: BuildKey,
        deps: &[ActionId],
        run: impl FnOnce(&ActionInputs) -> Result<Vec<u8>, E> + Send + 'env,
    ) -> ActionId {
        self.push(
            kind,
            label.into(),
            KeySpec::Static(key),
            deps,
            Box::new(run),
        )
    }

    /// Add a cache-routed action whose [`BuildKey`] is *derived from its dependency
    /// outputs* when the node is dispatched, instead of being known up front.
    ///
    /// This is what lets a whole deployment pipeline run as one submission: an
    /// `sd-compile` is keyed on the preprocessed-content digest its preprocess
    /// dependency produces, so the key cannot exist at graph-construction time.
    /// `key_of` must be deterministic in the dependency outputs — it becomes part
    /// of the action's cache identity and recorded `key_digest`.
    ///
    /// # Panics
    /// If a dependency refers to a node that has not been added yet.
    pub fn add_cached_derived(
        &mut self,
        kind: ActionKind,
        label: impl Into<String>,
        key_of: impl FnOnce(&ActionInputs) -> BuildKey + Send + 'env,
        deps: &[ActionId],
        run: impl FnOnce(&ActionInputs) -> Result<Vec<u8>, E> + Send + 'env,
    ) -> ActionId {
        self.push(
            kind,
            label.into(),
            KeySpec::Derived(Box::new(key_of)),
            deps,
            Box::new(run),
        )
    }

    fn push(
        &mut self,
        kind: ActionKind,
        label: String,
        key: KeySpec<'env>,
        deps: &[ActionId],
        run: ActionFn<'env, E>,
    ) -> ActionId {
        let id = self.nodes.len();
        for &dep in deps {
            assert!(
                dep < id,
                "action {id} ({label}) depends on not-yet-added node {dep}"
            );
        }
        self.nodes.push(ActionNode {
            kind,
            label,
            key,
            deps: deps.to_vec(),
            run,
            job: self.current_job,
        });
        id
    }

    /// Number of nodes in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The critical-path depth: the minimal number of serial waves an executor with
    /// unbounded workers needs. A serial executor needs [`len`](Self::len) steps.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            depth[id] = 1 + node.deps.iter().map(|&d| depth[d]).max().unwrap_or(0);
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

impl<E> std::fmt::Debug for ActionGraph<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActionGraph")
            .field("nodes", &self.nodes.len())
            .field("depth", &self.depth())
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn depth_follows_the_longest_dependency_chain() {
        let mut graph: ActionGraph<'_, ()> = ActionGraph::new();
        let a = graph.add(ActionKind::Preprocess, "a", &[], |_| Ok(vec![]));
        let b = graph.add(ActionKind::Preprocess, "b", &[], |_| Ok(vec![]));
        let c = graph.add(ActionKind::Link, "c", &[a, b], |_| Ok(vec![]));
        let _d = graph.add(ActionKind::Commit, "d", &[c], |_| Ok(vec![]));
        assert_eq!(graph.len(), 4);
        assert_eq!(graph.depth(), 3, "a/b parallel, then c, then d");
        assert_eq!(ActionGraph::<()>::new().depth(), 0);
    }

    #[test]
    #[should_panic(expected = "depends on not-yet-added node")]
    fn forward_edges_are_rejected() {
        let mut graph: ActionGraph<'_, ()> = ActionGraph::new();
        graph.add(ActionKind::Link, "broken", &[3], |_| Ok(vec![]));
    }
}
