//! Pre-submission static analyzer integration: graphs that pass `Strict`
//! analysis execute without structural runtime faults; each injectable defect
//! class is flagged with its specific diagnostic code; and a deny-level
//! verdict rejects the submission *before any node executes* — no partial
//! side effects, pinned by an action-side counter and the cache counters.
//! (Dangling-dependency injection is impossible through the public
//! [`ActionGraph`] API — `add` panics on forward edges — so `XA-STR-001` is
//! pinned by the in-crate unit tests instead.)

use proptest::prelude::*;
use std::convert::Infallible;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use xaas::engine::AnalysisMode;
use xaas::prelude::*;
use xaas::service::{AdmissionError, OrchestratorService, ServiceError};
use xaas_apps::lulesh;
use xaas_container::{ActionCache, BuildKey, ImageStore};

fn key(tag: &str) -> BuildKey {
    BuildKey::new(tag, "x86_64", "O2", "clang-17")
}

fn engine() -> Engine {
    Engine::cached(&ActionCache::new(ImageStore::new())).with_workers(2)
}

/// A policy whose `validate` lies (reports itself healthy) while starving a
/// kind with a zero concurrency cap — the only way a zero cap can get past
/// the orchestrator's up-front policy check and reach the analyzer.
#[derive(Debug)]
struct LyingZeroCap(ActionKind);

impl SchedulingPolicy for LyingZeroCap {
    fn name(&self) -> &'static str {
        "lying-zero-cap"
    }

    fn concurrency_cap(&self, kind: ActionKind) -> Option<usize> {
        (kind == self.0).then_some(0)
    }

    fn validate(&self) -> Result<(), PolicyError> {
        Ok(())
    }
}

/// The non-`Commit` kinds, for cycling labels over generated nodes.
const WORK_KINDS: [ActionKind; 6] = [
    ActionKind::Preprocess,
    ActionKind::OpenMpDetect,
    ActionKind::IrLower,
    ActionKind::MachineLower,
    ActionKind::SdCompile,
    ActionKind::Link,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random DAG that passes `Strict` analysis executes to completion
    /// with every node producing an output — no structural runtime faults.
    #[test]
    fn strict_clean_graphs_execute_without_structural_faults(
        n in 1usize..14,
        seed in any::<u64>(),
    ) {
        let engine = engine();
        let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
        let mut rng = seed | 1;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng >> 33
        };
        for id in 0..n {
            // Every node depends on a random subset of its predecessors —
            // backward edges only, so the graph is structurally valid by
            // construction and `Strict` must admit it.
            let mut deps: Vec<ActionId> = (0..id).filter(|_| next() % 3 == 0).collect();
            deps.dedup();
            let kind = WORK_KINDS[id % WORK_KINDS.len()];
            graph.add(kind, format!("n{id}"), &deps, move |_| Ok(vec![id as u8]));
        }
        let report = engine.analyze(&graph);
        prop_assert!(!report.is_rejected(), "clean-by-construction graph denied: {report}");
        let run = engine.submit_graph(graph).expect("strict admits it").wait();
        prop_assert!(run.succeeded());
        let (outputs, _) = run.into_outputs().expect("no faults");
        prop_assert_eq!(outputs.len(), n);
    }
}

#[test]
fn cross_job_edge_is_flagged_but_admitted_under_strict() {
    let engine = engine();
    let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
    graph.set_job(Some(0));
    let a = graph.add(ActionKind::IrLower, "job0", &[], |_| Ok(vec![0]));
    graph.set_job(Some(1));
    graph.add(ActionKind::Link, "job1", &[a], |_| Ok(vec![1]));
    let report = engine.analyze(&graph);
    assert!(report.has_code(DiagnosticCode::CrossJobEdge));
    assert!(
        !report.is_rejected(),
        "warnings must not reject a submission"
    );
    assert!(engine.submit_graph(graph).is_ok());
}

#[test]
fn cap_starved_kind_is_denied_with_sch_001() {
    let engine = engine().with_policy(LyingZeroCap(ActionKind::SdCompile));
    let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
    graph.add(ActionKind::SdCompile, "starved", &[], |_| Ok(vec![0]));
    let report = engine
        .submit_graph(graph)
        .expect_err("a zero cap on a demanded kind can never execute");
    assert!(report.has_code(DiagnosticCode::ZeroCapKind));
    assert_eq!(report.denies(), 1);
    assert_eq!(
        engine.last_analysis().as_ref(),
        Some(report.as_ref()),
        "the engine records the verdict it rejected with"
    );
}

#[test]
fn unordered_duplicate_key_is_flagged_with_che_001_once() {
    let engine = engine();
    let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
    graph.add_cached(ActionKind::SdCompile, "first", key("dup"), &[], |_| {
        Ok(vec![0])
    });
    graph.add_cached(ActionKind::SdCompile, "second", key("dup"), &[], |_| {
        Ok(vec![0])
    });
    let report = engine.analyze(&graph);
    assert_eq!(
        report
            .with_code(DiagnosticCode::UnorderedDuplicateKey)
            .count(),
        1
    );
    assert!(!report.is_rejected());
}

#[test]
fn ordered_duplicate_key_is_clean() {
    let engine = engine();
    let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
    let first = graph.add_cached(ActionKind::SdCompile, "first", key("dup"), &[], |_| {
        Ok(vec![0])
    });
    graph.add_cached(ActionKind::SdCompile, "alias", key("dup"), &[first], |_| {
        Ok(vec![0])
    });
    let report = engine.analyze(&graph);
    assert!(!report.has_code(DiagnosticCode::UnorderedDuplicateKey));
}

#[test]
fn commit_without_dependencies_is_denied_with_str_005() {
    let engine = engine();
    let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
    graph.add(ActionKind::Commit, "empty commit", &[], |_| Ok(vec![]));
    let report = engine.submit_graph(graph).expect_err("nothing to commit");
    assert!(report.has_code(DiagnosticCode::CommitNoDeps));
}

#[test]
fn derived_key_without_dependencies_is_denied_with_str_006() {
    let engine = engine();
    let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
    graph.add_cached_derived(
        ActionKind::SdCompile,
        "keyless",
        |_| key("derived"),
        &[],
        |_| Ok(vec![0]),
    );
    let report = engine
        .submit_graph(graph)
        .expect_err("no inputs to derive from");
    assert!(report.has_code(DiagnosticCode::DerivedKeyNoDeps));
}

/// The deny-before-execution pin: a rejected submission runs *zero* actions —
/// the side-effect counter stays at zero and the shared cache observes no
/// lookups, no entries, and no flights.
#[test]
fn denied_graphs_execute_nothing_and_touch_no_state() {
    let cache = ActionCache::new(ImageStore::new());
    let engine = Engine::cached(&cache)
        .with_workers(2)
        .with_policy(LyingZeroCap(ActionKind::Link));
    let ran = Arc::new(AtomicUsize::new(0));
    let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
    let before = engine.cache_stats();
    for i in 0..4 {
        let ran = Arc::clone(&ran);
        graph.add_cached(
            ActionKind::Link,
            format!("link{i}"),
            key(&format!("side-effect-{i}")),
            &[],
            move |_| {
                ran.fetch_add(1, Ordering::SeqCst);
                Ok(vec![i])
            },
        );
    }
    let report = engine.submit_graph(graph).expect_err("zero cap denies");
    assert!(report.is_rejected());
    assert_eq!(ran.load(Ordering::SeqCst), 0, "no action may have run");
    let after = engine.cache_stats();
    assert_eq!(
        (after.hits, after.misses, after.entries),
        (before.hits, before.misses, before.entries)
    );
    assert_eq!(engine.queue_stats().queued_actions, 0);
}

#[test]
fn warn_only_mode_admits_a_deny_graph_but_records_the_report() {
    let engine = engine().with_analysis(AnalysisMode::WarnOnly);
    let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
    graph.add(ActionKind::Commit, "empty commit", &[], |_| Ok(vec![]));
    let run = engine.submit_graph(graph).expect("warn-only admits").wait();
    assert!(run.succeeded());
    let report = engine.last_analysis().expect("analysis still ran");
    assert!(report.has_code(DiagnosticCode::CommitNoDeps));
}

#[test]
fn off_mode_skips_analysis_entirely() {
    let engine = engine().with_analysis(AnalysisMode::Off);
    let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
    graph.add(ActionKind::Commit, "empty commit", &[], |_| Ok(vec![]));
    assert!(engine.submit_graph(graph).is_ok());
    assert_eq!(engine.last_analysis(), None);
}

/// Through the service, a deny-level verdict surfaces as a typed *admission*
/// refusal — [`AdmissionError::Invalid`] carrying the full report — because
/// the request was refused before any of its actions ran.
#[test]
fn service_surfaces_analysis_rejection_as_admission_invalid() {
    let service = OrchestratorService::builder()
        .workers(2)
        .policy(LyingZeroCap(ActionKind::Preprocess))
        .build();
    let session = service.session("tenant-a");
    let project = lulesh::project();
    let config = IrPipelineConfig::sweep_options(&project, &["WITH_MPI", "WITH_OPENMP"]);
    let error = session
        .submit(IrBuildRequest::new(&project, &config))
        .expect_err("the stage-A graph demands the starved kind");
    match error {
        ServiceError::Admission(AdmissionError::Invalid(report)) => {
            assert!(report.has_code(DiagnosticCode::ZeroCapKind));
            assert!(report.is_rejected());
        }
        other => panic!("expected AdmissionError::Invalid, got {other:?}"),
    }
}

/// The request-level lint reports the same defect without submitting at all.
#[test]
fn request_analyze_reports_policy_defects_without_executing() {
    let orch = Orchestrator::builder()
        .workers(2)
        .policy(LyingZeroCap(ActionKind::Preprocess))
        .build();
    let project = lulesh::project();
    let config = IrPipelineConfig::sweep_options(&project, &["WITH_MPI", "WITH_OPENMP"]);
    let before = orch.cache_stats();
    let report = IrBuildRequest::new(&project, &config)
        .analyze(&orch)
        .expect("planning succeeds; the verdict is the report");
    assert!(report.has_code(DiagnosticCode::ZeroCapKind));
    assert!(report.nodes > 0, "the stage-A graph was actually planned");
    let after = orch.cache_stats();
    assert_eq!(after.misses, before.misses, "analyze must not execute");
}
