//! The staged action-graph engine: one executor for every XaaS pipeline.
//!
//! The paper's source and IR containers are two points on one pipeline —
//! preprocess → (OpenMP-aware dedup) → lower-to-IR → specialize → link — and this
//! module makes that pipeline an explicit, cache-aware artifact instead of three
//! near-duplicate monolithic functions. The pieces:
//!
//! * [`graph`] — [`ActionGraph`]: a DAG of [`ActionKind`]-tagged nodes with explicit
//!   dependency edges, built stage by stage by the pipeline drivers;
//! * [`executor`] — a worker pool that runs the ready frontier across threads,
//!   routes keyed nodes through a [`CacheBackend`]
//!   (an [`ActionCache`] or the always-compute
//!   [`NoCache`]), and isolates failures to the failed
//!   node's transitive dependents;
//! * [`policy`] — pluggable [`SchedulingPolicy`]s deciding dispatch order and
//!   per-kind concurrency: [`Fifo`] (default) or [`CriticalPathFirst`] (weight
//!   nodes by per-kind cost, optionally bound e.g. `sd-compile` slots);
//! * [`trace`] — [`ActionTrace`]: a deterministic, node-ordered record of what ran
//!   and what the cache absorbed, from which the historical [`ActionSummary`]
//!   counters are derived;
//! * [`analysis`] — [`GraphAnalyzer`]: the pre-submission static verifier that
//!   lints a graph against the active policy and rejects structurally broken or
//!   unrunnable submissions before any worker executes a node (see
//!   [`AnalysisMode`]).
//!
//! The drivers behind [`ir_container`](crate::ir_container),
//! [`deploy`](crate::deploy), [`source_container`](crate::source_container), and
//! [`scheduler`](crate::scheduler) all construct graphs and submit them to one
//! shared [`Engine`] — owned, in the public API, by an
//! [`Orchestrator`](crate::orchestrator::Orchestrator); intra-build parallelism
//! (compiling the translation units of a configuration sweep concurrently) falls
//! out of the executor rather than being special-cased per pipeline.
//!
//! ```
//! use xaas::engine::{ActionGraph, ActionKind, Engine};
//! use xaas_container::{ImageStore, NoCache};
//! use std::sync::Arc;
//!
//! let engine = Engine::new(Arc::new(NoCache::new(ImageStore::new())));
//! let mut graph: ActionGraph<'_, std::convert::Infallible> = ActionGraph::new();
//! let hello = graph.add(ActionKind::Preprocess, "hello", &[], |_| Ok(b"hi".to_vec()));
//! let shout = graph.add(ActionKind::Link, "shout", &[hello], |inputs| {
//!     Ok(inputs.dep(0).to_ascii_uppercase())
//! });
//! let run = engine.run(graph);
//! assert_eq!(run.output(shout), Some(&b"HI"[..]));
//! ```

#![deny(clippy::unwrap_used, clippy::dbg_macro)]
pub mod analysis;
pub mod executor;
pub mod graph;
pub mod plan;
pub mod policy;
pub mod trace;

pub use analysis::{
    AnalysisMode, AnalysisReport, Diagnostic, DiagnosticCode, GraphAnalyzer, Severity,
};
pub use executor::{
    ActionOutputs, GraphFault, GraphHandle, GraphRun, GraphRunError, GraphStatus, JobFailure,
    NodeInfo, NodeOutcome, QueueStats,
};
pub use graph::{ActionGraph, ActionId, ActionInputs};
pub use plan::{add_commit_action, KeyedActionPlanner, LinkSlot, PreprocessPlanner};
pub use policy::{CriticalPathFirst, Fifo, PolicyError, SchedulingPolicy, WeightedFair};
pub use trace::{ActionKind, ActionRecord, ActionSummary, ActionTrace};

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use xaas_container::{ActionCache, CacheBackend, CacheStats, ImageStore, NoCache};

/// The shared execution engine: a persistent worker pool, a cache backend, and a
/// [`SchedulingPolicy`].
///
/// Cloning is cheap and clones **share the worker pool** (plus the backend,
/// policy, and dispatch counter) — that is how one engine serves many sessions:
/// the [`OrchestratorService`](crate::service::OrchestratorService) hands every
/// session a tenant-tagged clone, and all their submissions interleave through
/// the pool's single multi-graph ready queue. Configure (workers / policy /
/// tenant) *before* submitting work: the builder methods that change execution
/// semantics start a fresh pool, so clones made earlier keep the old one.
///
/// The pool is spawned lazily on first submission and torn down when the last
/// clone drops (after waiting for in-flight submissions to retire).
#[derive(Clone)]
pub struct Engine {
    cache: Arc<dyn CacheBackend>,
    workers: usize,
    policy: Arc<dyn SchedulingPolicy>,
    /// Dispatch counter shared across runs (and clones), so `schedule_seq` values in
    /// merged traces preserve the global execution order.
    seq: Arc<AtomicU64>,
    /// The tenant tag stamped on this clone's submissions (scheduling identity
    /// under fair queuing, attribution in traces). Per-clone: tenant clones of one
    /// engine still share the pool.
    tenant: Option<String>,
    core: Arc<executor::ExecutorCore>,
    /// What [`submit_graph`](Self::submit_graph) does with the static analyzer.
    analysis: AnalysisMode,
    /// The service's queued-action bound, if one applies (the analyzer's
    /// `XA-SVC-001` check). Purely advisory — enforcement stays in admission.
    queue_bound: Option<usize>,
    /// The most recent analyzer report, kept for observability (shared across
    /// clones, like the pool).
    last_report: Arc<std::sync::Mutex<Option<AnalysisReport>>>,
}

impl Engine {
    /// An engine over `cache` with a worker count derived from the host parallelism
    /// (clamped to `[2, 8]` — actions are small compile steps) and the default
    /// [`Fifo`] policy.
    pub fn new(cache: Arc<dyn CacheBackend>) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        Self {
            cache,
            workers,
            policy: Arc::new(Fifo),
            seq: Arc::new(AtomicU64::new(0)),
            tenant: None,
            core: Arc::new(executor::ExecutorCore::new()),
            analysis: AnalysisMode::default(),
            queue_bound: None,
            last_report: Arc::new(std::sync::Mutex::new(None)),
        }
    }

    /// An engine that memoizes every keyed action in `cache`.
    pub fn cached(cache: &ActionCache) -> Self {
        Self::new(Arc::new(cache.clone()))
    }

    /// An engine that never caches: every action executes, artifacts and images land
    /// in `store`. This is the explicit replacement for handing the pipelines a
    /// private empty [`ActionCache`].
    pub fn uncached(store: &ImageStore) -> Self {
        Self::new(Arc::new(NoCache::new(store.clone())))
    }

    /// Override the worker count (at least 1). One worker executes submissions with
    /// no concurrency — the reference schedule the property tests compare parallel
    /// runs against. (Even then, execution order is dependency-driven, not node
    /// order; outputs and traces are assembled in node order regardless of
    /// schedule.) Starts a fresh pool: configure before submitting work.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self.core = Arc::new(executor::ExecutorCore::new());
        self
    }

    /// Replace the scheduling policy (dispatch order and per-kind concurrency caps
    /// of the ready queue). The policy changes *when* actions run, never what they
    /// produce. Note the raw engine clamps zero concurrency caps to one rather than
    /// deadlock; submit through an
    /// [`Orchestrator`](crate::orchestrator::Orchestrator) to have invalid policies
    /// rejected as typed errors instead.
    pub fn with_policy(self, policy: impl SchedulingPolicy + 'static) -> Self {
        self.with_policy_arc(Arc::new(policy))
    }

    /// [`with_policy`](Self::with_policy) for an already-shared policy. Starts a
    /// fresh pool: configure before submitting work.
    pub fn with_policy_arc(mut self, policy: Arc<dyn SchedulingPolicy>) -> Self {
        self.policy = policy;
        self.core = Arc::new(executor::ExecutorCore::new());
        self
    }

    /// Tag this engine clone's submissions with a tenant: the scheduling identity
    /// fair-queuing policies lane by, and the `tenant` attribution recorded in
    /// [`ActionRecord`]s and [`ActionTrace`]s. The clone **shares** the pool, the
    /// cache, and the queue with its siblings — tenancy is submission metadata,
    /// not isolation. This is how the
    /// [`OrchestratorService`](crate::service::OrchestratorService) multiplexes
    /// sessions onto one engine.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// The tenant tag of this engine clone, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Set what [`submit_graph`](Self::submit_graph) (and the orchestrator's
    /// pipeline drivers) do with the static analyzer: reject deny-level reports
    /// ([`AnalysisMode::Strict`], the default), record them without rejecting
    /// ([`AnalysisMode::WarnOnly`]), or skip analysis ([`AnalysisMode::Off`]).
    /// Does not restart the pool — safe to change on a live engine clone.
    pub fn with_analysis(mut self, mode: AnalysisMode) -> Self {
        self.analysis = mode;
        self
    }

    /// The configured [`AnalysisMode`].
    pub fn analysis_mode(&self) -> AnalysisMode {
        self.analysis
    }

    /// Tell the analyzer about a service-level queued-action bound so reports
    /// include the `XA-SVC-001` queue-saturation check. Advisory only — the
    /// service still enforces the bound at admission. Does not restart the pool.
    pub fn with_queue_bound(mut self, bound: Option<usize>) -> Self {
        self.queue_bound = bound;
        self
    }

    /// Run the static analyzer over `graph` against this engine's policy,
    /// tenant tag, and queue bound, regardless of [`AnalysisMode`]. Read-only:
    /// nothing is scheduled and the report is not recorded.
    pub fn analyze<E>(&self, graph: &ActionGraph<'_, E>) -> AnalysisReport {
        GraphAnalyzer::new(self.policy.as_ref())
            .tenant(self.tenant.as_deref())
            .queue_bound(self.queue_bound)
            .analyze(graph)
    }

    /// The analyzer's verdict on `graph` under the configured [`AnalysisMode`]:
    /// `Ok` to proceed, `Err(report)` when the mode is
    /// [`Strict`](AnalysisMode::Strict) and the report carries deny-level
    /// findings. Runs (and records) the analysis the mode calls for — the
    /// pipeline drivers call this before every `engine.run`.
    pub fn preflight<E>(&self, graph: &ActionGraph<'_, E>) -> Result<(), Box<AnalysisReport>> {
        if self.analysis == AnalysisMode::Off {
            return Ok(());
        }
        let report = self.analyze(graph);
        let rejected = self.analysis == AnalysisMode::Strict && report.is_rejected();
        let verdict = if rejected {
            Err(Box::new(report.clone()))
        } else {
            Ok(())
        };
        if let Ok(mut slot) = self.last_report.lock() {
            *slot = Some(report);
        }
        verdict
    }

    /// The most recent report [`preflight`](Self::preflight) produced on this
    /// engine (shared across clones), if analysis has run. This is how
    /// [`WarnOnly`](AnalysisMode::WarnOnly) findings stay observable.
    pub fn last_analysis(&self) -> Option<AnalysisReport> {
        self.last_report.lock().ok().and_then(|slot| slot.clone())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The scheduling policy runs execute under.
    pub fn policy(&self) -> &dyn SchedulingPolicy {
        self.policy.as_ref()
    }

    /// The cache backend every keyed action routes through.
    pub fn cache(&self) -> &dyn CacheBackend {
        self.cache.as_ref()
    }

    /// The backend's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.backend_stats()
    }

    /// The content-addressed store behind the cache (images are committed here).
    pub fn store(&self) -> &ImageStore {
        self.cache.store()
    }

    /// Execute `graph` to completion: enqueue its ready frontier on the shared
    /// pool under the engine's scheduling policy, route keyed nodes through the
    /// cache, record a deterministic [`ActionTrace`], isolate failures to their
    /// transitive dependents, and block until every node has retired.
    ///
    /// This is the blocking convenience over [`submit_graph`](Self::submit_graph):
    /// the same queue, the same workers, the same interleaving with concurrent
    /// submissions — only the caller waits in place instead of holding a
    /// [`GraphHandle`].
    pub fn run<'env, E: Send + 'static>(&self, graph: ActionGraph<'env, E>) -> GraphRun<E> {
        self.core.run_blocking(
            &self.cache,
            &self.policy,
            &self.seq,
            self.workers,
            graph,
            self.tenant.clone(),
        )
    }

    /// Submit `graph` without blocking and get a [`GraphHandle`] back. The
    /// graph's actions join the pool's shared ready queue, interleaving with
    /// every other live submission at action granularity; the handle polls,
    /// waits, cancels, or registers a completion callback. The graph must own
    /// its environment (`'static`) because execution outlives this call — for
    /// borrowed environments use the blocking [`run`](Self::run).
    ///
    /// The submission is [`preflight`](Self::preflight)ed first: under
    /// [`AnalysisMode::Strict`] (the default) a graph with deny-level findings
    /// is rejected with its [`AnalysisReport`] before any node is enqueued —
    /// no worker executes, no cache entry is touched, no queue slot is taken.
    pub fn submit_graph<E: Send + 'static>(
        &self,
        graph: ActionGraph<'static, E>,
    ) -> Result<GraphHandle<E>, Box<AnalysisReport>> {
        self.preflight(&graph)?;
        Ok(self.core.submit_graph(
            &self.cache,
            &self.policy,
            &self.seq,
            self.workers,
            graph,
            self.tenant.clone(),
        ))
    }

    /// A snapshot of the shared ready queue: how many actions are queued, how
    /// many submissions still have queued work, and how many submissions are
    /// live (admitted but not yet complete). Admission control samples this to
    /// decide when to push back.
    pub fn queue_stats(&self) -> QueueStats {
        self.core.queue_stats()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("policy", &self.policy.name())
            .field("cache", &self.cache.backend_stats())
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use xaas_container::BuildKey;

    fn key(name: &str) -> BuildKey {
        BuildKey::new(name, "xir.ir", "opts", "toolchain-test")
    }

    #[test]
    fn diamond_graph_delivers_dependency_outputs_in_order() {
        let engine = Engine::uncached(&ImageStore::new()).with_workers(4);
        let mut graph: ActionGraph<'_, std::convert::Infallible> = ActionGraph::new();
        let left = graph.add(ActionKind::Preprocess, "left", &[], |_| Ok(b"L".to_vec()));
        let right = graph.add(ActionKind::Preprocess, "right", &[], |_| Ok(b"R".to_vec()));
        let join = graph.add(ActionKind::Link, "join", &[left, right], |inputs| {
            let mut combined = inputs.dep(0).to_vec();
            combined.extend_from_slice(inputs.dep(1));
            Ok(combined)
        });
        let commit = graph.add(ActionKind::Commit, "commit", &[join], |inputs| {
            assert_eq!(inputs.len(), 1);
            Ok(inputs.dep(0).to_vec())
        });
        let run = engine.run(graph);
        assert!(run.succeeded());
        assert_eq!(run.output(commit), Some(&b"LR"[..]));
        // Trace is in node order with the declared kinds, regardless of scheduling.
        let kinds: Vec<ActionKind> = run.trace.records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ActionKind::Preprocess,
                ActionKind::Preprocess,
                ActionKind::Link,
                ActionKind::Commit
            ]
        );
        assert_eq!(run.trace.stage_depth, 3);
    }

    #[test]
    fn failures_skip_dependents_but_not_independent_work() {
        let engine = Engine::uncached(&ImageStore::new()).with_workers(2);
        let mut graph: ActionGraph<'_, String> = ActionGraph::new();
        let bad = graph.add(ActionKind::Preprocess, "bad", &[], |_| {
            Err("boom".to_string())
        });
        let downstream = graph.add(ActionKind::Link, "downstream", &[bad], |_| Ok(vec![]));
        let independent = graph.add(ActionKind::Preprocess, "independent", &[], |_| {
            Ok(b"fine".to_vec())
        });
        let run = engine.run(graph);
        assert!(!run.succeeded());
        assert!(matches!(&run.outcomes[bad], NodeOutcome::Failed(e) if e == "boom"));
        assert!(matches!(
            run.outcomes[downstream],
            NodeOutcome::Skipped { root } if root == bad
        ));
        assert_eq!(run.output(independent), Some(&b"fine"[..]));
        // into_outputs surfaces the typed error of the failing node.
        assert_eq!(
            run.into_outputs().unwrap_err(),
            GraphRunError::Action("boom".to_string())
        );
    }

    #[test]
    fn panicking_actions_propagate_to_the_caller_instead_of_hanging() {
        let engine = Engine::uncached(&ImageStore::new()).with_workers(3);
        let mut graph: ActionGraph<'_, String> = ActionGraph::new();
        graph.add(ActionKind::Preprocess, "fine", &[], |_| Ok(vec![1]));
        let boom = graph.add(ActionKind::Preprocess, "boom", &[], |_| {
            panic!("kaboom in action")
        });
        graph.add(ActionKind::Link, "downstream", &[boom], |_| Ok(vec![]));
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(graph)))
            .expect_err("the action panic must re-raise on the caller thread");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("kaboom in action")
        );

        // Keyed actions behave the same: the panic crosses the cache backend.
        let mut keyed: ActionGraph<'_, String> = ActionGraph::new();
        keyed.add_cached(ActionKind::IrLower, "boom", key("p"), &[], |_| {
            panic!("keyed kaboom")
        });
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(keyed)))
            .expect_err("keyed action panic must re-raise");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("keyed kaboom")
        );
    }

    #[test]
    fn keyed_actions_route_through_the_cache_backend() {
        let store = ImageStore::new();
        let cache = ActionCache::new(store.clone());
        let engine = Engine::cached(&cache).with_workers(3);
        let calls = AtomicUsize::new(0);

        fn build<'env>(
            label: &str,
            calls: &'env AtomicUsize,
        ) -> ActionGraph<'env, std::convert::Infallible> {
            let mut graph = ActionGraph::new();
            for unit in ["a", "b", "c"] {
                graph.add_cached(
                    ActionKind::IrLower,
                    format!("{label}:{unit}"),
                    key(unit),
                    &[],
                    move |_| {
                        calls.fetch_add(1, Ordering::SeqCst);
                        Ok(format!("ir:{unit}").into_bytes())
                    },
                );
            }
            graph
        }
        let cold = engine.run(build("cold", &calls));
        assert!(cold.succeeded());
        assert_eq!(
            cold.trace.summary(),
            ActionSummary {
                executed: 3,
                cached: 0
            }
        );
        let warm = engine.run(build("warm", &calls));
        assert_eq!(
            warm.trace.summary(),
            ActionSummary {
                executed: 0,
                cached: 3
            }
        );
        assert_eq!(calls.load(Ordering::SeqCst), 3, "warm run computes nothing");
        assert_eq!(warm.output(0), cold.output(0));
        // Identity sets agree even though the cached flags differ.
        assert_ne!(cold.trace.records[0].label, warm.trace.records[0].label);
        assert_eq!(
            cold.trace.records[0].key_digest,
            warm.trace.records[0].key_digest
        );
    }

    #[test]
    fn critical_path_first_dispatches_heavy_chains_before_light_ones() {
        // Two chains from an empty frontier: a heavy ir-lower chain added *after* a
        // cheap preprocess node. FIFO dispatches in node order; critical-path-first
        // must invert it. One worker keeps the dispatch order fully deterministic.
        fn build() -> ActionGraph<'static, std::convert::Infallible> {
            let mut graph = ActionGraph::new();
            let cheap = graph.add(ActionKind::Preprocess, "cheap", &[], |_| Ok(vec![1]));
            let heavy = graph.add(ActionKind::IrLower, "heavy", &[], |_| Ok(vec![2]));
            graph.add(ActionKind::Link, "tail", &[cheap, heavy], |_| Ok(vec![3]));
            graph
        }
        let fifo = Engine::uncached(&ImageStore::new()).with_workers(1);
        let fifo_run = fifo.run(build());
        let cpf = Engine::uncached(&ImageStore::new())
            .with_workers(1)
            .with_policy(CriticalPathFirst::new());
        let cpf_run = cpf.run(build());
        // Same node-ordered trace records and outputs...
        assert_eq!(fifo_run.trace.records, cpf_run.trace.records);
        assert_eq!(fifo_run.output(2), cpf_run.output(2));
        // ...but the observable dispatch order differs and names the policy.
        assert_eq!(fifo_run.trace.policy, "fifo");
        assert_eq!(cpf_run.trace.policy, "critical-path-first");
        let first = |run: &GraphRun<std::convert::Infallible>| {
            run.trace.execution_order().first().cloned().unwrap()
        };
        assert!(first(&fifo_run).starts_with("preprocess|cheap"));
        assert!(first(&cpf_run).starts_with("ir-lower|heavy"));
    }

    #[test]
    fn concurrency_caps_bound_in_flight_actions_without_changing_outputs() {
        use std::sync::atomic::AtomicUsize;
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let mut graph: ActionGraph<'_, std::convert::Infallible> = ActionGraph::new();
        for unit in 0..12 {
            let in_flight = &in_flight;
            let peak = &peak;
            graph.add(
                ActionKind::SdCompile,
                format!("sd{unit:02}"),
                &[],
                move |_| {
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    Ok(vec![unit as u8])
                },
            );
        }
        let engine = Engine::uncached(&ImageStore::new())
            .with_workers(6)
            .with_policy(CriticalPathFirst::new().with_cap(ActionKind::SdCompile, 2));
        let run = engine.run(graph);
        assert!(run.succeeded());
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "cap of 2 exceeded: {} sd-compiles in flight",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(run.trace.len(), 12);
        // Deferred nodes accumulate queue wait, and every record carries its seq.
        let waits = run.trace.queue_wait_micros_by_kind();
        assert!(waits[&ActionKind::SdCompile] > 0);
    }

    #[test]
    fn zero_caps_are_clamped_to_one_instead_of_deadlocking() {
        let mut graph: ActionGraph<'_, std::convert::Infallible> = ActionGraph::new();
        graph.add(ActionKind::SdCompile, "sd", &[], |_| Ok(vec![1]));
        let engine = Engine::uncached(&ImageStore::new())
            .with_workers(2)
            .with_policy(CriticalPathFirst::new().with_cap(ActionKind::SdCompile, 0));
        let run = engine.run(graph);
        assert!(run.succeeded(), "the raw engine must refuse to deadlock");
    }

    #[test]
    fn parallel_and_serial_runs_produce_identical_outputs_and_traces() {
        fn build_graph(counter: &AtomicUsize) -> ActionGraph<'_, std::convert::Infallible> {
            let mut graph = ActionGraph::new();
            let mut lowers = Vec::new();
            for unit in 0..24 {
                let id = graph.add(
                    ActionKind::IrLower,
                    format!("unit{unit:02}"),
                    &[],
                    move |_| Ok(vec![unit as u8; 4]),
                );
                lowers.push(id);
            }
            graph.add(ActionKind::Link, "link", &lowers, move |inputs| {
                counter.fetch_add(1, Ordering::SeqCst);
                Ok(inputs.iter().flat_map(|b| b.to_vec()).collect())
            });
            graph
        }
        let counter = AtomicUsize::new(0);
        let serial = Engine::uncached(&ImageStore::new())
            .with_workers(1)
            .run(build_graph(&counter));
        let parallel = Engine::uncached(&ImageStore::new())
            .with_workers(8)
            .run(build_graph(&counter));
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        assert_eq!(serial.trace, parallel.trace);
        assert_eq!(serial.output(24), parallel.output(24));
        assert_eq!(serial.trace.stage_depth, 2);
        assert_eq!(serial.trace.len(), 25);
    }

    /// A gate an action can block on until the test releases it, `'static` so
    /// gated graphs can be `submit_graph`ed.
    fn gate() -> (
        std::sync::mpsc::Sender<()>,
        std::sync::Arc<std::sync::Mutex<std::sync::mpsc::Receiver<()>>>,
    ) {
        let (tx, rx) = std::sync::mpsc::channel();
        (tx, std::sync::Arc::new(std::sync::Mutex::new(rx)))
    }

    #[test]
    fn submit_graph_handle_polls_waits_and_fires_completion_callback() {
        let engine = Engine::uncached(&ImageStore::new()).with_workers(2);
        let (release, blocked) = gate();
        let mut graph: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
        let held = graph.add(ActionKind::Preprocess, "held", &[], move |_| {
            blocked.lock().unwrap().recv().ok();
            Ok(vec![1])
        });
        graph.add(ActionKind::Link, "tail", &[held], |inputs| {
            Ok(inputs.iter().next().expect("held output").to_vec())
        });
        let handle = engine.submit_graph(graph).expect("analysis-clean graph");
        let status = handle.poll();
        assert_eq!(status.total, 2);
        assert!(!status.done);
        assert!(!status.cancelled);
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        handle.on_complete(move || {
            done_tx.send(()).ok();
        });
        release.send(()).unwrap();
        done_rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("completion callback fires once the last node retires");
        let run = handle.wait();
        assert!(run.succeeded());
        assert_eq!(run.output(1), Some(&[1][..]));
        assert_eq!(run.trace.len(), 2);

        // A handle to an already-finished submission reports done and invokes
        // new callbacks immediately on the caller.
        let mut done_graph: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
        done_graph.add(ActionKind::Preprocess, "p", &[], |_| Ok(vec![2]));
        let handle = engine
            .submit_graph(done_graph)
            .expect("analysis-clean graph");
        while !handle.is_done() {
            std::thread::yield_now();
        }
        let fired = std::sync::Arc::new(AtomicUsize::new(0));
        let seen = fired.clone();
        handle.on_complete(move || {
            seen.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert!(handle.poll().done);
    }

    #[test]
    fn cancelled_submissions_retire_undispatched_nodes_as_cancelled() {
        // One worker: the gated node of the first submission occupies it, so the
        // second submission is still entirely queued when it is cancelled.
        let engine = Engine::uncached(&ImageStore::new()).with_workers(1);
        let (release, blocked) = gate();
        let mut first: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
        first.add(ActionKind::Preprocess, "held", &[], move |_| {
            blocked.lock().unwrap().recv().ok();
            Ok(vec![1])
        });
        let first_handle = engine.submit_graph(first).expect("analysis-clean graph");

        let mut second: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
        let a = second.add(ActionKind::Preprocess, "a", &[], |_| Ok(vec![2]));
        second.add(ActionKind::Link, "b", &[a], |_| Ok(vec![3]));
        let second_handle = engine.submit_graph(second).expect("analysis-clean graph");
        second_handle.cancel();
        release.send(()).unwrap();

        let first_run = first_handle.wait();
        assert!(first_run.succeeded(), "cancellation is per-submission");
        let second_run = second_handle.wait();
        assert!(!second_run.succeeded());
        assert!(second_run
            .outcomes
            .iter()
            .all(|outcome| matches!(outcome, NodeOutcome::Cancelled)));
        // Cancelled nodes never executed, so the trace records nothing.
        assert_eq!(second_run.trace.len(), 0);
        let failure = second_run.job_failure(usize::MAX);
        assert!(failure.is_none(), "cancellation is not a job failure");
    }

    #[test]
    fn concurrent_submissions_interleave_on_the_shared_queue() {
        // One worker, FIFO: the gated node of submission 1 occupies the worker
        // while its sibling and all of submission 2 queue behind it — so when
        // the gate opens, the queue holds waiting actions from two submissions
        // and the dispatched records observe ready_submissions > 1.
        let engine = Engine::uncached(&ImageStore::new()).with_workers(1);
        let (release, blocked) = gate();
        let mut first: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
        first.add(ActionKind::Preprocess, "held", &[], move |_| {
            blocked.lock().unwrap().recv().ok();
            Ok(vec![1])
        });
        first.add(ActionKind::Preprocess, "sibling", &[], |_| Ok(vec![2]));
        let first_handle = engine.submit_graph(first).expect("analysis-clean graph");

        let mut second: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
        second.add(ActionKind::Preprocess, "other", &[], |_| Ok(vec![3]));
        let second_handle = engine.submit_graph(second).expect("analysis-clean graph");
        // Both submissions now have queued work; release the worker.
        while engine.queue_stats().waiting_submissions < 2 {
            std::thread::yield_now();
        }
        release.send(()).unwrap();

        let first_run = first_handle.wait();
        let second_run = second_handle.wait();
        assert!(first_run.succeeded() && second_run.succeeded());
        let depth = first_run
            .trace
            .max_ready_submissions()
            .max(second_run.trace.max_ready_submissions());
        assert!(
            depth > 1,
            "actions from distinct submissions share the ready queue (depth {depth})"
        );
    }

    #[test]
    fn weighted_fair_gives_heavy_tenants_proportionally_earlier_dispatch() {
        // One worker and a gate: both tenants' submissions queue fully before
        // the first dispatch, then weighted fair queuing drains the heavy lane
        // four times as often as the light one — so the heavy submission's last
        // action is dispatched strictly before the light one's.
        let base = Engine::uncached(&ImageStore::new())
            .with_workers(1)
            .with_policy(
                WeightedFair::new()
                    .with_weight("heavy", 4)
                    .with_weight("light", 1),
            );
        let (release, blocked) = gate();
        let mut gate_graph: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
        gate_graph.add(ActionKind::Preprocess, "gate", &[], move |_| {
            blocked.lock().unwrap().recv().ok();
            Ok(vec![0])
        });
        let gate_handle = base.submit_graph(gate_graph).expect("analysis-clean graph");

        let tenant_graph = |name: &'static str| {
            let mut graph: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
            for unit in 0..4 {
                graph.add(
                    ActionKind::Preprocess,
                    format!("{name}{unit}"),
                    &[],
                    move |_| Ok(vec![unit as u8]),
                );
            }
            graph
        };
        let heavy = base.clone().with_tenant("heavy");
        let light = base.clone().with_tenant("light");
        let heavy_handle = heavy
            .submit_graph(tenant_graph("h"))
            .expect("analysis-clean");
        let light_handle = light
            .submit_graph(tenant_graph("l"))
            .expect("analysis-clean");
        while base.queue_stats().waiting_submissions < 2 {
            std::thread::yield_now();
        }
        release.send(()).unwrap();

        let heavy_run = heavy_handle.wait();
        let light_run = light_handle.wait();
        gate_handle.wait();
        assert!(heavy_run.succeeded() && light_run.succeeded());
        assert_eq!(heavy_run.trace.tenant.as_deref(), Some("heavy"));
        assert_eq!(light_run.trace.tenant.as_deref(), Some("light"));
        let last_seq = |run: &GraphRun<std::convert::Infallible>| {
            run.trace
                .records
                .iter()
                .map(|r| r.schedule_seq)
                .max()
                .unwrap()
        };
        assert!(
            last_seq(&heavy_run) < last_seq(&light_run),
            "weight 4 lane drains before weight 1 lane (heavy {} vs light {})",
            last_seq(&heavy_run),
            last_seq(&light_run)
        );
        // Queue-wait accounting is attributed per tenant.
        let waits = heavy_run.trace.queue_wait_micros_by_tenant();
        assert!(waits.contains_key("heavy"));
    }

    #[test]
    fn per_tenant_quota_caps_bound_a_tenants_in_flight_actions() {
        let in_flight = std::sync::Arc::new(AtomicUsize::new(0));
        let peak = std::sync::Arc::new(AtomicUsize::new(0));
        let mut graph: ActionGraph<'static, std::convert::Infallible> = ActionGraph::new();
        for unit in 0..8 {
            let in_flight = in_flight.clone();
            let peak = peak.clone();
            graph.add(ActionKind::SdCompile, format!("sd{unit}"), &[], move |_| {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                in_flight.fetch_sub(1, Ordering::SeqCst);
                Ok(vec![unit as u8])
            });
        }
        let engine = Engine::uncached(&ImageStore::new())
            .with_workers(6)
            .with_policy(WeightedFair::new().with_tenant_cap(ActionKind::SdCompile, 2))
            .with_tenant("quoted");
        let run = engine
            .submit_graph(graph)
            .expect("analysis-clean graph")
            .wait();
        assert!(run.succeeded());
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "tenant cap of 2 exceeded: {} in flight",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(run.trace.len(), 8);
        for record in &run.trace.records {
            assert_eq!(record.tenant.as_deref(), Some("quoted"));
        }
    }

    #[test]
    fn blocking_run_is_tenant_tagged_like_submissions() {
        let engine = Engine::uncached(&ImageStore::new())
            .with_workers(2)
            .with_tenant("acme");
        let mut graph: ActionGraph<'_, std::convert::Infallible> = ActionGraph::new();
        graph.add(ActionKind::Preprocess, "p", &[], |_| Ok(vec![1]));
        let run = engine.run(graph);
        assert!(run.succeeded());
        assert_eq!(run.trace.tenant.as_deref(), Some("acme"));
        assert_eq!(run.trace.records[0].tenant.as_deref(), Some("acme"));
    }
}
