//! Nonblocking executor-core integration: workers never block on another
//! action's outcome. A node that hits an in-flight key parks as a continuation
//! and releases its worker; flight completion, failure, and poison all wake the
//! parked waiter through the cache's flight protocol; and the continuation path
//! stays byte-identical — and trace-equal — to the serial baseline. Each
//! scenario holds flights *externally* via [`CacheBackend::try_begin`] so
//! parking is deterministic even on a one-worker engine.

use proptest::prelude::*;
use std::convert::Infallible;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xaas::prelude::*;
use xaas_container::{
    ActionCache, BuildKey, CacheBackend, FlightError, FlightTicket, ImageStore, TryBegin,
};

fn key(tag: &str) -> BuildKey {
    BuildKey::new(tag, "x86_64", "O2", "clang-17")
}

/// Claim flight ownership of `key` directly on the cache, the way an
/// out-of-engine builder would, so an engine node for the same key must park.
fn hold_flight(cache: &ActionCache, key: &BuildKey) -> FlightTicket {
    match CacheBackend::try_begin(cache, key) {
        TryBegin::Owner(ticket) => ticket,
        other => panic!("expected to own the flight, got {other:?}"),
    }
}

/// Poll `done` until it holds, failing the test after `secs` — a parked waiter
/// that never wakes must fail the suite fast instead of hanging CI.
fn wait_until(secs: u64, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !done() {
        assert!(
            Instant::now() < deadline,
            "condition not reached within {secs}s"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The tentpole pin: with ONE worker and an externally held flight, the engine
/// keeps executing other actions — the keyed node parks as a continuation
/// instead of occupying the worker — and the external `complete` wakes it with
/// the owner's bytes.
#[test]
fn one_worker_engine_keeps_executing_while_a_flight_is_held_externally() {
    let cache = ActionCache::new(ImageStore::new());
    let shared = key("held");
    let ticket = hold_flight(&cache, &shared);

    let engine = Engine::cached(&cache).with_workers(1);
    let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
    let keyed = graph.add_cached(ActionKind::SdCompile, "parked", shared, &[], |_| {
        panic!("the external owner completes this flight; the engine must not compute it")
    });
    let free = graph.add(
        ActionKind::Preprocess,
        "free",
        &[],
        |_| Ok(b"free".to_vec()),
    );
    let handle = engine.submit_graph(graph).expect("analysis-clean graph");

    // The unkeyed node retires while the keyed node is still parked: the single
    // worker was not blocked inside the cache waiting for the flight.
    wait_until(30, || handle.poll().finished >= 1);
    wait_until(30, || engine.queue_stats().parked_waiters == 1);
    assert!(!handle.poll().done);
    let mid = engine.queue_stats();
    assert_eq!(mid.parked_waiters, 1);
    assert!(mid.parks >= 1);
    assert_eq!(mid.queued_actions, 0, "a parked waiter leaves the queue");

    CacheBackend::complete(&cache, ticket, b"external bytes".to_vec());
    let run = handle.wait();
    assert!(run.succeeded());
    assert_eq!(run.output(keyed), Some(&b"external bytes"[..]));
    assert_eq!(run.output(free), Some(&b"free"[..]));

    let record = &run.trace.records[keyed];
    assert!(
        record.cached,
        "a flight resolved by its owner lands as a hit"
    );
    assert!(record.parks >= 1);
    assert!(record.parked_micros > 0);
    let after = engine.queue_stats();
    assert_eq!(after.parked_waiters, 0);
    assert!(after.wakeups >= 1);
}

/// Eight unordered nodes with one key on a one-worker engine: the first becomes
/// the flight owner, computes once, and every other node is served the same
/// bytes — no deadlock, no duplicate compute.
#[test]
fn duplicate_unordered_keys_on_one_worker_compute_once_and_complete() {
    let cache = ActionCache::new(ImageStore::new());
    let engine = Engine::cached(&cache).with_workers(1);
    let runs = Arc::new(AtomicUsize::new(0));

    let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
    let shared = key("dup");
    let ids: Vec<ActionId> = (0..8)
        .map(|i| {
            let runs = runs.clone();
            graph.add_cached(
                ActionKind::IrLower,
                format!("dup-{i}"),
                shared.clone(),
                &[],
                move |_| {
                    runs.fetch_add(1, Ordering::SeqCst);
                    Ok(b"dup bytes".to_vec())
                },
            )
        })
        .collect();

    let run = engine.run(graph);
    assert!(run.succeeded());
    for &id in &ids {
        assert_eq!(run.output(id), Some(&b"dup bytes"[..]));
    }
    assert_eq!(
        runs.load(Ordering::SeqCst),
        1,
        "single flight computes once"
    );
    assert_eq!(cache.stats().misses, 1);
    let computed = run.trace.records.iter().filter(|r| !r.cached).count();
    assert_eq!(computed, 1, "exactly one record carries the miss");
}

/// A flight that fails wakes its parked waiter with a typed error; the waiter
/// retries `try_begin`, becomes the new owner, and computes its own closure.
#[test]
fn failed_flight_wakes_the_parked_waiter_which_retries_and_computes() {
    let cache = ActionCache::new(ImageStore::new());
    let shared = key("failing");
    let ticket = hold_flight(&cache, &shared);

    let engine = Engine::cached(&cache).with_workers(1);
    let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
    let keyed = graph.add_cached(ActionKind::SdCompile, "retry", shared, &[], |_| {
        Ok(b"retried".to_vec())
    });
    let handle = engine.submit_graph(graph).expect("analysis-clean graph");

    wait_until(30, || engine.queue_stats().parked_waiters == 1);
    CacheBackend::fail(&cache, ticket, FlightError::Failed);

    let run = handle.wait();
    assert!(run.succeeded());
    assert_eq!(run.output(keyed), Some(&b"retried"[..]));
    let record = &run.trace.records[keyed];
    assert!(
        !record.cached,
        "the woken waiter recomputed the action itself"
    );
    assert!(record.parks >= 1);
    assert_eq!(cache.stats().misses, 1);
}

/// Poisoned flights (owner dropped its ticket without redeeming it) wake — not
/// strand — parked engine waiters, and the blast radius of a failed retry stays
/// attributed to its own job via [`GraphRun::job_failure`].
#[test]
fn poisoned_flights_wake_parked_jobs_and_blast_radius_stays_per_job() {
    let cache = ActionCache::new(ImageStore::new());
    let key_a = key("poisoned-a");
    let key_b = key("poisoned-b");
    let ticket_a = hold_flight(&cache, &key_a);
    let ticket_b = hold_flight(&cache, &key_b);

    let engine = Engine::cached(&cache).with_workers(1);
    let mut graph: ActionGraph<'static, String> = ActionGraph::new();
    graph.set_job(Some(0));
    let rejected = graph.add_cached(ActionKind::SdCompile, "job0-keyed", key_a, &[], |_| {
        Err("job0 compute rejected".to_string())
    });
    let dependent = graph.add(ActionKind::Link, "job0-link", &[rejected], |_| Ok(vec![1]));
    graph.set_job(Some(1));
    let bystander = graph.add_cached(ActionKind::SdCompile, "job1-keyed", key_b, &[], |_| {
        Ok(b"job1 bytes".to_vec())
    });

    let handle = engine.submit_graph(graph).expect("analysis-clean graph");
    wait_until(30, || engine.queue_stats().parked_waiters == 2);

    // Dropping the unredeemed tickets poisons both flights: each parked waiter
    // wakes with a typed error and retries as the new owner.
    drop(ticket_a);
    drop(ticket_b);
    let run = handle.wait();

    match &run.outcomes[rejected] {
        NodeOutcome::Failed(error) => assert_eq!(error, "job0 compute rejected"),
        other => panic!("job0's retry must surface its typed error, got {other:?}"),
    }
    assert!(
        matches!(run.outcomes[dependent], NodeOutcome::Skipped { root } if root == rejected),
        "job0's dependent is skipped with the failing root"
    );
    assert_eq!(run.output(bystander), Some(&b"job1 bytes"[..]));

    let failure = run.job_failure(0).expect("job 0 is poisoned by its retry");
    assert_eq!(failure.node, rejected);
    assert_eq!(failure.error, Some(&"job0 compute rejected".to_string()));
    assert!(
        run.job_failure(1).is_none(),
        "job 1 recovered by computing its own closure after the poison wake"
    );
}

/// One node of a small random DAG: stage, payload, whether it is cache-keyed,
/// and raw dependency picks (each resolved modulo the node's id, so edges only
/// ever point backwards).
#[derive(Debug, Clone)]
struct NodeSpec {
    kind: usize,
    payload: u8,
    keyed: bool,
    deps: Vec<usize>,
}

/// Maximum node count the DAG proptest draws per case.
const MAX_NODES: usize = 10;

/// Zip the independently drawn per-node vectors into the first `n` node specs.
fn assemble_spec(
    n: usize,
    kinds: &[usize],
    payloads: &[u8],
    keyed: &[bool],
    dep_picks: &[Vec<usize>],
) -> Vec<NodeSpec> {
    (0..n)
        .map(|i| NodeSpec {
            kind: kinds[i],
            payload: payloads[i],
            keyed: keyed[i],
            deps: dep_picks[i].clone(),
        })
        .collect()
}

/// Build and run `spec` on a fresh cache with `workers` workers, returning the
/// outputs and trace in node order.
fn run_spec(spec: &[NodeSpec], workers: usize) -> (Vec<Vec<u8>>, ActionTrace) {
    let cache = ActionCache::new(ImageStore::new());
    let engine = Engine::cached(&cache).with_workers(workers);
    let mut graph: ActionGraph<'_, Infallible> = ActionGraph::new();
    for (i, node) in spec.iter().enumerate() {
        let mut deps: Vec<ActionId> = node
            .deps
            .iter()
            .filter(|_| i > 0)
            .map(|pick| pick % i.max(1))
            .collect();
        deps.sort_unstable();
        deps.dedup();
        let payload = node.payload;
        let run = move |inputs: &ActionInputs| {
            let mut bytes: Vec<u8> = inputs.iter().flatten().copied().collect();
            bytes.push(payload);
            bytes.push(i as u8);
            Ok(bytes)
        };
        let kind = ActionKind::ALL[node.kind];
        if node.keyed {
            // Keys are unique per node, so hit/miss flags are deterministic and
            // full trace equality across worker counts is well-defined.
            let unique = key(&format!("prop-{i}-{payload}"));
            graph.add_cached(kind, format!("n{i}"), unique, &deps, run);
        } else {
            graph.add(kind, format!("n{i}"), &deps, run);
        }
    }
    let (outputs, trace) = engine.run(graph).into_outputs().expect("infallible nodes");
    (outputs.iter().map(|blob| blob.to_vec()).collect(), trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The continuation-parked executor yields byte-identical outputs and an
    /// equal trace to the serial one-worker baseline on arbitrary small DAGs.
    #[test]
    fn parked_continuation_path_matches_the_serial_baseline(
        n in 1usize..MAX_NODES,
        kinds in proptest::collection::vec(0usize..ActionKind::ALL.len(), MAX_NODES),
        payloads in proptest::collection::vec(any::<u8>(), MAX_NODES),
        keyed in proptest::collection::vec(any::<bool>(), MAX_NODES),
        dep_picks in proptest::collection::vec(
            proptest::collection::vec(0usize..64, 0..3),
            MAX_NODES,
        ),
    ) {
        let spec = assemble_spec(n, &kinds, &payloads, &keyed, &dep_picks);
        let (serial_out, serial_trace) = run_spec(&spec, 1);
        let (parallel_out, parallel_trace) = run_spec(&spec, 4);
        prop_assert_eq!(serial_out, parallel_out);
        prop_assert_eq!(serial_trace, parallel_trace);
    }

    /// Two submissions racing the same keys through one engine stay
    /// single-flight: each key computes exactly once, every node observes the
    /// same bytes, and exactly one record per key carries the miss.
    #[test]
    fn racing_duplicate_key_submissions_stay_single_flight_and_byte_identical(
        n_keys in 1usize..4,
        dups in 2usize..5,
    ) {
        let cache = ActionCache::new(ImageStore::new());
        let engine = Engine::cached(&cache).with_workers(4);
        let computes: Vec<Arc<AtomicUsize>> =
            (0..n_keys).map(|_| Arc::new(AtomicUsize::new(0))).collect();

        let submit = |salt: &str| {
            let mut graph: ActionGraph<'static, Infallible> = ActionGraph::new();
            for (k, counter) in computes.iter().enumerate() {
                for d in 0..dups {
                    let runs = counter.clone();
                    graph.add_cached(
                        ActionKind::IrLower,
                        format!("{salt}-k{k}-d{d}"),
                        key(&format!("race-{k}")),
                        &[],
                        move |_| {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so waiters genuinely park.
                            std::thread::sleep(Duration::from_micros(200));
                            Ok(format!("race bytes {k}").into_bytes())
                        },
                    );
                }
            }
            engine
                .submit_graph(graph)
                .expect("analysis-clean graph")
        };
        let first = submit("a");
        let second = submit("b");
        let runs = [first.wait(), second.wait()];

        for run in &runs {
            prop_assert!(run.succeeded());
            for k in 0..n_keys {
                for d in 0..dups {
                    let id = k * dups + d;
                    prop_assert_eq!(run.output(id), Some(format!("race bytes {k}").as_bytes()));
                }
            }
        }
        for (k, counter) in computes.iter().enumerate() {
            prop_assert_eq!(
                counter.load(Ordering::SeqCst), 1,
                "key {} must compute exactly once across both submissions", k
            );
        }
        let missed: usize = runs
            .iter()
            .flat_map(|run| run.trace.records.iter())
            .filter(|record| !record.cached)
            .count();
        prop_assert_eq!(missed, n_keys, "one miss record per key across both runs");
    }
}
