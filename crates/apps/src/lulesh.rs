//! mini-LULESH: the hydrodynamics proxy application.
//!
//! LULESH is the paper's running example for configuration explosion (Section 4.3): two
//! specialization points — MPI and OpenMP — yield four build configurations, and with
//! five source files per build the naive sweep compiles 20 translation units that the
//! pipeline reduces to 14. The synthetic project reproduces exactly that structure.

use std::collections::BTreeMap;
use xaas_buildsys::{
    BuildOption, OptionCategory, OptionEffects, ProjectSpec, SourceSpec, TargetKind, TargetSpec,
};
use xaas_hpcsim::{KernelClass, KernelWork, Workload};

/// Build script of the mini-LULESH project.
pub const BUILD_SCRIPT: &str = r#"
# mini-LULESH build configuration
project(mini-lulesh)
option(WITH_MPI "Enable MPI domain decomposition" OFF)
option(WITH_OPENMP "Enable OpenMP threading" ON)
"#;

/// Build the mini-LULESH project specification (five source files, MPI × OpenMP).
pub fn project() -> ProjectSpec {
    let mpi_on = OptionEffects {
        definitions: vec!["-DUSE_MPI=1".into()],
        enables_tags: vec!["mpi".into()],
        dependencies: vec!["mpich".into()],
        ..Default::default()
    };
    let openmp_on = OptionEffects {
        definitions: vec!["-DUSE_OPENMP".into()],
        compile_flags: vec!["-fopenmp".into()],
        ..Default::default()
    };

    let sources = vec![
        SourceSpec::new(
            "src/lulesh.ck",
            r#"
// main time-stepping driver
kernel void lagrange_leapfrog(float* e, float* p, int n) {
    #pragma omp parallel for
    for (int i = 0; i < n; i = i + 1) {
        e[i] = e[i] + p[i] * 0.5;
    }
}
"#,
        ),
        SourceSpec::new(
            "src/lulesh_forces.ck",
            r#"
// hourglass force / stress integration
kernel void calc_forces(float* f, float* x, int n) {
    #pragma omp parallel for
    for (int i = 1; i < n; i = i + 1) {
        f[i] = (x[i] - x[i - 1]) * 0.25;
    }
}
"#,
        ),
        SourceSpec::new(
            "src/lulesh_eos.ck",
            r#"
// equation of state evaluation — pure numerical code, no OpenMP constructs
kernel void eval_eos(float* p, float* e, float* v, int n) {
    for (int i = 0; i < n; i = i + 1) {
        p[i] = e[i] * v[i] * 0.6666;
    }
}
"#,
        ),
        SourceSpec::new(
            "src/lulesh_util.ck",
            r#"
// reductions and diagnostics — no OpenMP constructs
float total_energy(float* e, int n) {
    float acc = 0.0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + e[i]; }
    return acc;
}
"#,
        ),
        SourceSpec::new(
            "src/lulesh_comm.ck",
            r#"
// domain-boundary exchange: MPI path vs single-domain copy
#ifdef USE_MPI
kernel void comm_sbn(float* send, float* recv, int n) {
    for (int i = 0; i < n; i = i + 1) { recv[i] = send[i]; }
}
#endif
#if !defined(USE_MPI)
kernel void comm_sbn(float* send, float* recv, int n) {
    for (int i = 0; i < n; i = i + 1) { recv[i] = send[i] * 1.0; }
}
#endif
"#,
        ),
    ];
    let paths: Vec<String> = sources.iter().map(|s| s.path.clone()).collect();

    ProjectSpec {
        name: "mini-lulesh".into(),
        version: "2.0".into(),
        build_script: BUILD_SCRIPT.into(),
        options: vec![
            BuildOption::boolean(
                "WITH_MPI",
                "MPI domain decomposition",
                OptionCategory::Parallelism,
                false,
                mpi_on,
            ),
            BuildOption::boolean(
                "WITH_OPENMP",
                "OpenMP threading",
                OptionCategory::Parallelism,
                true,
                openmp_on,
            ),
        ],
        sources,
        headers: BTreeMap::new(),
        targets: vec![TargetSpec::new("lulesh2.0", TargetKind::Executable, paths)],
        custom_targets: vec![],
        global_flags: vec!["-O3".into()],
        mpi_abi: Some("mpich".into()),
    }
}

/// A LULESH workload: `size^3` elements for `iterations` time steps.
pub fn workload(size: u32, iterations: u32) -> Workload {
    let elements = f64::from(size).powi(3);
    let scalar_per_iteration = elements * 2.4e-6;
    let total = scalar_per_iteration * f64::from(iterations);
    Workload {
        name: format!("LULESH -s {size} -i {iterations}"),
        kernels: vec![
            KernelWork {
                name: "stress_and_hourglass".into(),
                class: KernelClass::StencilHydro,
                scalar_reference_seconds: total * 0.7,
            },
            KernelWork {
                name: "eos".into(),
                class: KernelClass::StencilHydro,
                scalar_reference_seconds: total * 0.25,
            },
            KernelWork {
                name: "reductions".into(),
                class: KernelClass::SerialSetup,
                scalar_reference_seconds: total * 0.05,
            },
        ],
        io_seconds: 0.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xaas_buildsys::{all_combinations, configure};
    use xaas_xir::{CompileFlags, Compiler};

    #[test]
    fn two_options_give_four_configurations_of_five_files() {
        let project = project();
        assert_eq!(project.source_count(), 5);
        let options: Vec<&BuildOption> = project.options.iter().collect();
        let combos = all_combinations(&options);
        assert_eq!(combos.len(), 4);
        // Every configuration compiles all five files (MPI only switches code paths
        // inside lulesh_comm.ck, it does not add or remove files).
        for assignment in combos {
            let build = configure(&project, &assignment, "/build/x", None).unwrap();
            assert_eq!(build.translation_units(), 5, "{}", assignment.label());
        }
    }

    #[test]
    fn mpi_definition_changes_only_the_comm_file() {
        let project = project();
        let compiler = Compiler::new();
        let comm = project.source("src/lulesh_comm.ck").unwrap();
        let eos = project.source("src/lulesh_eos.ck").unwrap();
        let plain_flags = CompileFlags::parse(["-O3".to_string()]);
        let mpi_flags = CompileFlags::parse(["-O3".to_string(), "-DUSE_MPI=1".to_string()]);
        let comm_plain = compiler
            .preprocess_only("comm.ck", &comm.content, &plain_flags)
            .unwrap();
        let comm_mpi = compiler
            .preprocess_only("comm.ck", &comm.content, &mpi_flags)
            .unwrap();
        assert_ne!(comm_plain.content_hash(), comm_mpi.content_hash());
        let eos_plain = compiler
            .preprocess_only("eos.ck", &eos.content, &plain_flags)
            .unwrap();
        let eos_mpi = compiler
            .preprocess_only("eos.ck", &eos.content, &mpi_flags)
            .unwrap();
        assert_eq!(eos_plain.content_hash(), eos_mpi.content_hash());
    }

    #[test]
    fn openmp_flag_is_irrelevant_for_eos_and_util() {
        let project = project();
        let compiler = Compiler::new();
        for path in ["src/lulesh_eos.ck", "src/lulesh_util.ck"] {
            let source = project.source(path).unwrap();
            let report = compiler
                .openmp_report(path, &source.content, &CompileFlags::default())
                .unwrap();
            assert!(!report.uses_openmp(), "{path} should not use OpenMP");
        }
        for path in ["src/lulesh.ck", "src/lulesh_forces.ck"] {
            let source = project.source(path).unwrap();
            let report = compiler
                .openmp_report(path, &source.content, &CompileFlags::default())
                .unwrap();
            assert!(report.uses_openmp(), "{path} should use OpenMP");
        }
    }

    #[test]
    fn workload_scales_with_problem_size() {
        let small = workload(30, 100);
        let large = workload(60, 100);
        assert!(large.scalar_reference_total() > 7.0 * small.scalar_reference_total());
        assert_eq!(small.kernels.len(), 3);
    }

    #[test]
    fn build_script_parses() {
        let script = xaas_buildsys::parse_script(BUILD_SCRIPT).unwrap();
        assert_eq!(script.project_name(), Some("mini-lulesh"));
        assert_eq!(script.options().len(), 2);
    }
}
