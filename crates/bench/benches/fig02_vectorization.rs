//! Figure 2 benchmark: evaluate the vectorization sweep on the MD workload and measure
//! the execution-model evaluation plus the underlying deployment-time vectoriser.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xaas::targets::target_isa_for;
use xaas_apps::gromacs;
use xaas_bench::{figure2, render};
use xaas_hpcsim::SimdLevel;
use xaas_xir::{lower_to_machine, CompileFlags, Compiler};

fn bench_figure2(c: &mut Criterion) {
    // Print the regenerated figure once so `cargo bench` output contains the data series.
    println!(
        "{}",
        render::render_panels("Figure 2: vectorization impact", &figure2())
    );

    c.bench_function("fig02/execution_model_sweep", |b| {
        b.iter(|| black_box(figure2()));
    });

    // The mechanism behind the figure: re-vectorising the same IR for different ISAs.
    let project = gromacs::project();
    let source = project.source("src/mdrun/nonbonded.ck").unwrap();
    let mut compiler = Compiler::new();
    for (name, content) in &project.headers {
        compiler.add_header(name.clone(), content.clone());
    }
    let flags = CompileFlags::parse(["-O3".to_string(), "-fopenmp".to_string()]);
    let module = compiler
        .compile_to_ir(&source.path, &source.content, &flags)
        .unwrap();
    let mut group = c.benchmark_group("fig02/lower_nonbonded_kernel");
    for level in [
        SimdLevel::Sse41,
        SimdLevel::Avx2_256,
        SimdLevel::Avx512,
        SimdLevel::NeonAsimd,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(level.gmx_name()),
            &level,
            |b, &level| {
                let target = target_isa_for(level);
                b.iter(|| black_box(lower_to_machine(&module, &target)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_figure2
}
criterion_main!(benches);
