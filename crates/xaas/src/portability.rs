//! The portability-layer taxonomy of Table 2: at which point of the toolchain each
//! existing approach applies, and what it requires from the system.

use serde::Serialize;

/// The stage of the build pipeline at which a portability approach operates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum PortabilityLevel {
    /// Full from-source build on the destination system.
    Building,
    /// Runtime replacement of dynamic dependencies (OCI hooks).
    Linking,
    /// Lowering an intermediate representation to the final binary on the target.
    Lowering,
    /// Runtime emulation / translation of incompatible interfaces.
    Emulation,
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PortabilityEntry {
    /// Level at which the technology operates.
    pub level: PortabilityLevel,
    /// Technology name.
    pub technology: &'static str,
    /// Short description.
    pub description: &'static str,
    /// Portability approach.
    pub approach: &'static str,
    /// How dependencies are integrated.
    pub dependency_integration: &'static str,
}

/// The Table 2 catalogue, including the XaaS rows this paper adds.
pub fn table2() -> Vec<PortabilityEntry> {
    vec![
        PortabilityEntry {
            level: PortabilityLevel::Building,
            technology: "Spack / EasyBuild",
            description: "From-source package manager",
            approach: "Parameterized package compilation",
            dependency_integration: "Automatic, dependency resolver",
        },
        PortabilityEntry {
            level: PortabilityLevel::Linking,
            technology: "Sarus / Apptainer",
            description: "HPC container runtime",
            approach: "Runtime binding, OCI hooks",
            dependency_integration: "Manual, CLI option, and host bind",
        },
        PortabilityEntry {
            level: PortabilityLevel::Lowering,
            technology: "Linux Popcorn",
            description: "Multi-ISA binary system",
            approach: "Heterogeneous-OS containers",
            dependency_integration: "No direct integration",
        },
        PortabilityEntry {
            level: PortabilityLevel::Lowering,
            technology: "H-Containers",
            description: "ISA-agnostic container with IRs",
            approach: "Container + recompilation",
            dependency_integration: "No direct integration",
        },
        PortabilityEntry {
            level: PortabilityLevel::Lowering,
            technology: "NVIDIA PTX",
            description: "Runtime JIT compilation",
            approach: "Virtual GPU architecture",
            dependency_integration: "No direct integration",
        },
        PortabilityEntry {
            level: PortabilityLevel::Emulation,
            technology: "Wi4MPI / mpixlate",
            description: "MPI compatibility layer",
            approach: "Runtime emulation of MPI ABIs",
            dependency_integration: "No direct integration",
        },
        PortabilityEntry {
            level: PortabilityLevel::Building,
            technology: "XaaS source containers",
            description: "Source + toolchain image, built at deployment",
            approach: "Deployment-time specialization",
            dependency_integration: "Dependency layers + system modules",
        },
        PortabilityEntry {
            level: PortabilityLevel::Lowering,
            technology: "XaaS IR containers",
            description: "Deduplicated IR image, lowered at deployment",
            approach: "Deployment-time vectorization and lowering",
            dependency_integration: "Dependency layers per specialization",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_covers_all_four_levels() {
        let entries = table2();
        for level in [
            PortabilityLevel::Building,
            PortabilityLevel::Linking,
            PortabilityLevel::Lowering,
            PortabilityLevel::Emulation,
        ] {
            assert!(
                entries.iter().any(|e| e.level == level),
                "{level:?} missing"
            );
        }
    }

    #[test]
    fn xaas_rows_are_present_at_building_and_lowering() {
        let entries = table2();
        let xaas: Vec<_> = entries
            .iter()
            .filter(|e| e.technology.starts_with("XaaS"))
            .collect();
        assert_eq!(xaas.len(), 2);
        assert!(xaas.iter().any(|e| e.level == PortabilityLevel::Building));
        assert!(xaas.iter().any(|e| e.level == PortabilityLevel::Lowering));
    }
}
