//! # xaas-buildsys
//!
//! The build-system substrate of the XaaS Containers reproduction: a model of what CMake
//! provides to the paper's pipeline.
//!
//! * [`options`] — build options (= specialization points) with values, effects, and
//!   combinatorial sweeps;
//! * [`project`] — project descriptions: CK sources (optionally conditional on option
//!   tags), headers, targets, custom source-generating targets;
//! * [`configure`](mod@configure) — the configuration step that resolves an option assignment into
//!   enabled sources, global definitions/flags, dependencies, and a compile-command
//!   database;
//! * [`compiledb`] — compile commands plus the canonicalisation/comparison used by the
//!   behavioural deduplication of Section 4.2;
//! * [`script`] — the mini build-script format that specialization discovery parses.

#![warn(missing_docs)]

pub mod compiledb;
pub mod configure;
pub mod options;
pub mod project;
pub mod script;

/// Commonly used types re-exported together.
pub mod prelude {
    pub use crate::compiledb::{compare, CompileCommand, CompileDatabase, DatabaseComparison};
    pub use crate::configure::{configure, ConfigureError, ConfiguredBuild};
    pub use crate::options::{
        all_combinations, BuildOption, OptionAssignment, OptionCategory, OptionEffects, OptionKind,
        OptionValue,
    };
    pub use crate::project::{CustomTarget, ProjectSpec, SourceSpec, TargetKind, TargetSpec};
    pub use crate::script::{parse_script, BuildScript, ScriptError, ScriptItem};
}

pub use prelude::*;
