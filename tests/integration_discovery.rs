//! Integration: specialization discovery → intersection → deployment selection.

use xaas_apps::{gromacs, llamacpp, lulesh};
use xaas_buildsys::parse_script;
use xaas_hpcsim::{discover, SystemModel};
use xaas_specs::{
    analyze, from_project, from_script, intersect, score, AnalysisConfig, SimulatedLlm,
    SpecCategory,
};

/// The rule-based extractor recovers most of the ground truth from the build-script text
/// of all three applications.
#[test]
fn rule_based_extraction_is_accurate_on_all_applications() {
    for (name, project) in [
        ("gromacs", gromacs::project()),
        ("lulesh", lulesh::project()),
        ("llamacpp", llamacpp::project()),
    ] {
        let truth = from_project(&project);
        let script = parse_script(&project.build_script).unwrap_or_else(|e| panic!("{name}: {e}"));
        let extracted = from_script(&project.name, &script);
        let metrics = score(&extracted, &truth, true);
        assert!(
            metrics.recall() > 0.6,
            "{name}: recall {}",
            metrics.recall()
        );
        assert!(
            metrics.precision() > 0.6,
            "{name}: precision {}",
            metrics.precision()
        );
    }
}

/// Table 4 end to end: the simulated LLM panel is deterministic, orders models the way
/// the paper reports, and its best models beat the worst by a wide margin.
#[test]
fn llm_panel_reproduces_table_4_ordering() {
    let project = gromacs::project();
    let truth = from_project(&project);
    let config = AnalysisConfig::default();
    let median_f1 = |name: &str| {
        let model = SimulatedLlm::by_name(name).unwrap();
        let mut scores: Vec<f64> = (0..10)
            .map(|run| {
                let result = analyze(&model, &project.build_script, &truth, &config, run);
                score(&result.document, &truth, true).f1()
            })
            .collect();
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        scores[scores.len() / 2]
    };
    let gemini2 = median_f1("gemini-flash-2-exp");
    let gemini15 = median_f1("gemini-flash-1.5-exp");
    let sonnet37 = median_f1("claude-3-7-sonnet-20250219");
    let sonnet35 = median_f1("claude-3-5-sonnet-20241022");
    let haiku = median_f1("claude-3-5-haiku-20241022");
    let o3 = median_f1("o3-mini-2025-01-31");

    assert!(gemini2 > 0.9);
    assert!(gemini15 > 0.85);
    assert!(sonnet37 > 0.8);
    assert!(o3 > 0.8);
    assert!(
        sonnet35 < 0.8 && haiku < 0.8,
        "the 3.5-generation Claude models miss many options"
    );
    assert!(
        gemini2 >= sonnet35,
        "gemini flash 2 outperforms claude 3.5 sonnet"
    );
}

/// The discovery-to-selection chain: LLM output, even with its errors, intersected with
/// system features still contains the options the deployment ends up selecting.
#[test]
fn llm_discovery_feeds_the_intersection_step() {
    let project = gromacs::project();
    let truth = from_project(&project);
    let model = SimulatedLlm::by_name("gemini-flash-2-exp").unwrap();
    let result = analyze(
        &model,
        &project.build_script,
        &truth,
        &AnalysisConfig::default(),
        0,
    );

    let features = discover(&SystemModel::ault23());
    let common = intersect(&result.document, &features);
    // CUDA and AVX-512 must survive the intersection on Ault23 for deployment to pick them.
    assert!(common
        .choices(SpecCategory::GpuBackend)
        .iter()
        .any(|c| c.eq_ignore_ascii_case("cuda")));
    assert!(common
        .choices(SpecCategory::Vectorization)
        .iter()
        .any(|c| c.to_ascii_uppercase().contains("AVX")));
    // Unsupported backends are excluded with a reason.
    assert!(common.excluded.iter().all(|e| !e.reason.is_empty()));
}

/// Discovery documents round-trip through the Appendix-B JSON schema shape.
#[test]
fn specialization_documents_serialise_in_schema_shape() {
    for project in [gromacs::project(), llamacpp::project()] {
        let doc = from_project(&project);
        let json = doc.to_schema_json();
        for key in [
            "gpu_build",
            "gpu_backends",
            "parallel_programming_libraries",
            "linear_algebra_libraries",
            "FFT_libraries",
            "simd_vectorization",
            "build_system",
        ] {
            assert!(
                json.get(key).is_some(),
                "{}: missing key {key}",
                project.name
            );
        }
    }
}
