//! Section 6.5 benchmark: intra-node bandwidth model under different MPI/provider stacks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xaas_bench::{network, render};
use xaas_hpcsim::{BandwidthModel, MpiFlavor};

fn bench_network(c: &mut Criterion) {
    println!("{}", render::render_network(&network()));

    c.bench_function("fig14/summary_rows", |b| {
        b.iter(|| black_box(network()));
    });

    let model = BandwidthModel::default();
    let sizes: Vec<u64> = (10..=30).map(|p| 1u64 << p).collect();
    let mut group = c.benchmark_group("fig14/bandwidth_sweep");
    for (label, flavor, containerized, linkx) in [
        ("bare_metal_shm", MpiFlavor::CrayMpich, false, false),
        ("container_cxi", MpiFlavor::ContainerOpenMpi, true, false),
        ("container_linkx", MpiFlavor::ContainerOpenMpi, true, true),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let total: f64 = sizes
                    .iter()
                    .map(|&s| model.bandwidth_at(flavor, containerized, linkx, s))
                    .sum();
                black_box(total)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_network
}
criterion_main!(benches);
