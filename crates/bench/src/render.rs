//! Plain-text rendering of experiment results (what the `reproduce` binary prints).

use crate::experiments::{
    FigurePanel, GeneralizationRow, GpuCompatRow, NetworkRow, ReductionRow, Table4Row,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render a timing figure (one panel per system/device).
pub fn render_panels(title: &str, panels: &[FigurePanel]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    for panel in panels {
        let _ = writeln!(out, "\n-- {} --", panel.title);
        for bar in &panel.bars {
            let _ = writeln!(
                out,
                "  {:<28} {:>10.3} s   (I/O {:>6.2} s){}",
                bar.label,
                bar.compute_seconds,
                bar.io_seconds,
                if bar.used_gpu { "   [GPU]" } else { "" }
            );
        }
    }
    out
}

/// Render Table 4.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table 4: LLM-assisted specialization discovery (mini-GROMACS) =="
    );
    let _ = writeln!(
        out,
        "{:<28} {:>9} {:>9} {:>8} {:>8}  {:>5} {:>5} {:>5}  {:>5} {:>5} {:>5}  {:>5} {:>5} {:>5}",
        "Model",
        "Tok In",
        "Tok Out",
        "Time(s)",
        "Cost($)",
        "F1mn",
        "F1md",
        "F1mx",
        "Pmn",
        "Pmd",
        "Pmx",
        "Rmn",
        "Rmd",
        "Rmx"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>9.0} {:>9.0} {:>8.2} {:>8.3}  {:>5.3} {:>5.3} {:>5.3}  {:>5.3} {:>5.3} {:>5.3}  {:>5.3} {:>5.3} {:>5.3}",
            row.model,
            row.tokens_in,
            row.tokens_out,
            row.time_seconds,
            row.cost_usd,
            row.f1.min,
            row.f1.median,
            row.f1.max,
            row.precision.min,
            row.precision.median,
            row.precision.max,
            row.recall.min,
            row.recall.median,
            row.recall.max,
        );
    }
    out
}

/// Render the generalization rows.
pub fn render_generalization(rows: &[GeneralizationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Section 6.2: llama.cpp generalization (no in-context examples) =="
    );
    let _ = writeln!(
        out,
        "{:<28} {:>18} {:>22}",
        "Model", "F1 raw (mn/md/mx)", "F1 normalized (mn/md/mx)"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>5.2}/{:>4.2}/{:>4.2}   {:>9.2}/{:>4.2}/{:>4.2}",
            row.model,
            row.f1_raw.min,
            row.f1_raw.median,
            row.f1_raw.max,
            row.f1_normalized.min,
            row.f1_normalized.median,
            row.f1_normalized.max
        );
    }
    out
}

/// Render the TU-reduction rows (Section 6.4).
pub fn render_reduction(rows: &[ReductionRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Section 6.4: configurability and system dependency =="
    );
    let _ = writeln!(
        out,
        "{:<34} {:>7} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "Sweep", "Configs", "TUs", "IRs", "Reduction", "no-vec", "no-omp"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>7} {:>8} {:>8} {:>9.1}% {:>10} {:>10}",
            row.sweep,
            row.configurations,
            row.total_translation_units,
            row.ir_files_built,
            row.reduction_percent,
            row.without_vectorization_delay,
            row.without_openmp_detection
        );
    }
    out
}

/// Render the Section 6.5 network rows.
pub fn render_network(rows: &[NetworkRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Section 6.5: intra-node bandwidth on a GH200 node =="
    );
    let _ = writeln!(
        out,
        "{:<34} {:>10} {:>12} {:>12}",
        "Configuration", "Peak GB/s", "1 MiB GB/s", "1 GiB GB/s"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>10.1} {:>12.1} {:>12.1}",
            row.configuration,
            row.peak_bandwidth_gbs,
            row.bandwidth_1mib_gbs,
            row.bandwidth_1gib_gbs
        );
    }
    out
}

/// Render the GPU compatibility matrix.
pub fn render_gpu_compat(rows: &[GpuCompatRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 9: CUDA compatibility of the XaaS device-code bundle =="
    );
    for row in rows {
        let _ = writeln!(
            out,
            "  {:<48} {:<24} {}",
            row.bundle, row.device, row.outcome
        );
    }
    out
}

/// Render the per-system intersection summary.
pub fn render_intersection(summary: &BTreeMap<String, Vec<String>>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Figure 4(c): specialization points ∩ system features (mini-GROMACS) =="
    );
    for (system, lines) in summary {
        let _ = writeln!(out, "\n-- {system} --");
        for line in lines {
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    #[test]
    fn renders_are_non_empty_and_contain_headers() {
        let net = render_network(&experiments::network());
        assert!(net.contains("intra-node bandwidth"));
        assert!(net.contains("LinkX"));
        let compat = render_gpu_compat(&experiments::gpu_compatibility());
        assert!(compat.contains("jit-from-ptx"));
        let gen = render_generalization(&experiments::table4_generalization(2));
        assert!(gen.contains("normalized"));
    }

    #[test]
    fn figure_rendering_lists_all_bars() {
        let panels = experiments::figure2();
        let text = render_panels("Figure 2", &panels);
        assert!(text.contains("AVX_512"));
        assert!(text.contains("ARM"));
    }
}
