//! Preprocessor for CK source files.
//!
//! The IR-container pipeline (Section 4.3) hashes *preprocessed* translation units to
//! decide whether two build configurations really produce different code: compile-time
//! definitions (`-DGMX_GPU=CUDA`, `-DHAVE_MKL`, …) select code paths through `#if
//! defined(...)` blocks, exactly as in the BLAS transpose example of Figure 3. This
//! module implements the subset of the C preprocessor the synthetic applications use:
//! object-like macros, conditional compilation, includes, and macro substitution — plus a
//! stable content hash of the result.

use crate::memo::DigestCell;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A set of preprocessor definitions (name → optional value).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Definitions {
    defines: BTreeMap<String, String>,
}

impl Definitions {
    /// Empty definition set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a macro with a value.
    pub fn define(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.defines.insert(name.into(), value.into());
        self
    }

    /// Define a flag-style macro (value `1`).
    pub fn define_flag(&mut self, name: impl Into<String>) -> &mut Self {
        self.define(name, "1")
    }

    /// Remove a definition.
    pub fn undefine(&mut self, name: &str) -> &mut Self {
        self.defines.remove(name);
        self
    }

    /// Whether a macro is defined.
    pub fn is_defined(&self, name: &str) -> bool {
        self.defines.contains_key(name)
    }

    /// Value of a macro.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.defines.get(name).map(String::as_str)
    }

    /// Parse `-DNAME` / `-DNAME=VALUE` compiler flags into definitions.
    pub fn from_flags<'a>(flags: impl IntoIterator<Item = &'a str>) -> Self {
        let mut defs = Self::new();
        for flag in flags {
            if let Some(rest) = flag.strip_prefix("-D") {
                match rest.split_once('=') {
                    Some((name, value)) => defs.define(name, value),
                    None => defs.define_flag(rest),
                };
            }
        }
        defs
    }

    /// Iterate over `(name, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.defines.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defines.len()
    }

    /// Whether there are no definitions.
    pub fn is_empty(&self) -> bool {
        self.defines.is_empty()
    }
}

/// Errors raised during preprocessing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant payload fields are documented by the Display impl
pub enum PreprocessError {
    /// An `#include` could not be resolved from the provided header map.
    MissingInclude { file: String, line: usize },
    /// `#endif` / `#else` without an opening `#if`.
    UnbalancedConditional { line: usize },
    /// An `#if` block was never closed.
    UnterminatedConditional,
    /// Unsupported or malformed directive.
    BadDirective { directive: String, line: usize },
}

impl fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreprocessError::MissingInclude { file, line } => {
                write!(f, "line {line}: cannot resolve #include \"{file}\"")
            }
            PreprocessError::UnbalancedConditional { line } => {
                write!(f, "line {line}: #else/#endif without matching #if")
            }
            PreprocessError::UnterminatedConditional => write!(f, "unterminated #if block"),
            PreprocessError::BadDirective { directive, line } => {
                write!(f, "line {line}: unsupported directive `{directive}`")
            }
        }
    }
}

impl std::error::Error for PreprocessError {}

/// The result of preprocessing a file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreprocessedUnit {
    /// Origin file name.
    pub file: String,
    /// Preprocessed source text (directives resolved, macros substituted).
    pub text: String,
    /// Macros that actually influenced the output (referenced in conditionals or substituted).
    pub used_definitions: Vec<String>,
    /// Headers that were included.
    pub included_headers: Vec<String>,
    /// Memoized [`content_digest`](PreprocessedUnit::content_digest) — an identity
    /// cache, ignored by equality and serialization (see [`crate::memo::DigestCell`]).
    #[serde(default, skip_serializing_if = "DigestCell::skip")]
    pub digest_memo: DigestCell,
}

impl PreprocessedUnit {
    /// A stable 64-bit FNV-1a hash of the preprocessed text — the identity used by the
    /// IR pipeline's preprocessing-deduplication stage.
    pub fn content_hash(&self) -> u64 {
        fnv1a(self.text.as_bytes())
    }

    /// The content hash rendered as a stable hexadecimal digest, suitable as the
    /// `tu_digest` component of a build-cache key: derivable from the preprocessed text
    /// alone, without parsing, lowering, or compiling anything. Computed once per
    /// unit and memoized (units are frozen after construction).
    pub fn content_digest(&self) -> String {
        self.digest_memo
            .get_or_init(|| format!("{:016x}", self.content_hash()))
    }
}

/// FNV-1a hash (64-bit) over bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Preprocess `source` with `definitions`, resolving `#include "name"` from `headers`.
pub fn preprocess(
    file: &str,
    source: &str,
    definitions: &Definitions,
    headers: &BTreeMap<String, String>,
) -> Result<PreprocessedUnit, PreprocessError> {
    let mut output = String::with_capacity(source.len());
    let mut used = Vec::new();
    let mut included = Vec::new();
    let mut working = definitions.clone();
    process_text(
        source,
        &mut working,
        headers,
        &mut output,
        &mut used,
        &mut included,
        0,
    )?;
    used.sort();
    used.dedup();
    included.sort();
    included.dedup();
    // Canonicalise whitespace so cosmetic differences do not affect the hash.
    let canonical: String = output
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.trim().is_empty())
        .collect::<Vec<_>>()
        .join("\n");
    Ok(PreprocessedUnit {
        file: file.to_string(),
        text: canonical,
        used_definitions: used,
        included_headers: included,
        digest_memo: DigestCell::new(),
    })
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum CondState {
    /// The current branch is emitting lines.
    Active,
    /// The current branch is suppressed but a later `#else` might activate.
    InactivePending,
    /// Some earlier branch already emitted; all remaining branches suppressed.
    InactiveDone,
}

#[allow(clippy::too_many_arguments)]
fn process_text(
    source: &str,
    definitions: &mut Definitions,
    headers: &BTreeMap<String, String>,
    output: &mut String,
    used: &mut Vec<String>,
    included: &mut Vec<String>,
    depth: usize,
) -> Result<(), PreprocessError> {
    if depth > 32 {
        return Err(PreprocessError::BadDirective {
            directive: "#include (nested too deep)".into(),
            line: 0,
        });
    }
    let mut stack: Vec<CondState> = Vec::new();
    for (line_index, raw_line) in source.lines().enumerate() {
        let line_no = line_index + 1;
        let trimmed = raw_line.trim_start();
        let emitting = stack.iter().all(|s| *s == CondState::Active);
        if let Some(directive) = trimmed.strip_prefix('#') {
            let directive = directive.trim();
            if directive.starts_with("pragma") {
                if emitting {
                    output.push_str(raw_line);
                    output.push('\n');
                }
                continue;
            }
            let (keyword, rest) = match directive.split_once(char::is_whitespace) {
                Some((k, r)) => (k, r.trim()),
                None => (directive, ""),
            };
            match keyword {
                "include" => {
                    if emitting {
                        let name = rest
                            .trim_matches(|c| c == '"' || c == '<' || c == '>')
                            .to_string();
                        let Some(content) = headers.get(&name) else {
                            return Err(PreprocessError::MissingInclude {
                                file: name,
                                line: line_no,
                            });
                        };
                        included.push(name);
                        process_text(
                            content,
                            definitions,
                            headers,
                            output,
                            used,
                            included,
                            depth + 1,
                        )?;
                    }
                }
                "define" => {
                    // In-file object-like macros extend the working definition set (the
                    // external `-D` flags still dominate IR identity via `used_definitions`).
                    if emitting {
                        if let Some(name) = rest.split_whitespace().next() {
                            let value = rest[name.len()..].trim();
                            let value = if value.is_empty() { "1" } else { value };
                            definitions.define(name, value);
                            used.push(name.to_string());
                        }
                    }
                }
                "undef" => {
                    if emitting {
                        definitions.undefine(rest);
                        used.push(rest.to_string());
                    }
                }
                "ifdef" => {
                    used.push(rest.to_string());
                    stack.push(if definitions.is_defined(rest) {
                        CondState::Active
                    } else {
                        CondState::InactivePending
                    });
                }
                "ifndef" => {
                    used.push(rest.to_string());
                    stack.push(if definitions.is_defined(rest) {
                        CondState::InactivePending
                    } else {
                        CondState::Active
                    });
                }
                "if" => {
                    let value = eval_condition(rest, definitions, used);
                    stack.push(if value {
                        CondState::Active
                    } else {
                        CondState::InactivePending
                    });
                }
                "elif" => {
                    let Some(top) = stack.last_mut() else {
                        return Err(PreprocessError::UnbalancedConditional { line: line_no });
                    };
                    *top = match *top {
                        CondState::Active => CondState::InactiveDone,
                        CondState::InactivePending => {
                            if eval_condition(rest, definitions, used) {
                                CondState::Active
                            } else {
                                CondState::InactivePending
                            }
                        }
                        CondState::InactiveDone => CondState::InactiveDone,
                    };
                }
                "else" => {
                    let Some(top) = stack.last_mut() else {
                        return Err(PreprocessError::UnbalancedConditional { line: line_no });
                    };
                    *top = match *top {
                        CondState::Active => CondState::InactiveDone,
                        CondState::InactivePending => CondState::Active,
                        CondState::InactiveDone => CondState::InactiveDone,
                    };
                }
                "endif" => {
                    if stack.pop().is_none() {
                        return Err(PreprocessError::UnbalancedConditional { line: line_no });
                    }
                }
                other => {
                    return Err(PreprocessError::BadDirective {
                        directive: format!("#{other}"),
                        line: line_no,
                    })
                }
            }
            continue;
        }
        if emitting {
            output.push_str(&substitute(raw_line, definitions, used));
            output.push('\n');
        }
    }
    if stack.is_empty() {
        Ok(())
    } else {
        Err(PreprocessError::UnterminatedConditional)
    }
}

/// Evaluate `defined(X)`, `!defined(X)`, bare macro names, and `&&`/`||` combinations.
fn eval_condition(expr: &str, definitions: &Definitions, used: &mut Vec<String>) -> bool {
    // Split on || first (lowest precedence), then &&.
    expr.split("||").any(|clause| {
        clause.split("&&").all(|term| {
            let term = term.trim();
            let (negated, term) = match term.strip_prefix('!') {
                Some(rest) => (true, rest.trim()),
                None => (false, term),
            };
            let name = term
                .strip_prefix("defined(")
                .and_then(|t| t.strip_suffix(')'))
                .or_else(|| term.strip_prefix("defined ").map(str::trim))
                .unwrap_or(term)
                .trim();
            if name.is_empty() {
                return !negated;
            }
            used.push(name.to_string());
            let mut value = definitions.is_defined(name);
            // A bare `#if MACRO` with value "0" is false.
            if !term.starts_with("defined") {
                value = value && definitions.value(name) != Some("0");
            }
            if negated {
                !value
            } else {
                value
            }
        })
    })
}

/// Substitute object-like macros appearing as whole identifiers in a line.
fn substitute(line: &str, definitions: &Definitions, used: &mut Vec<String>) -> String {
    if definitions.is_empty() {
        return line.to_string();
    }
    let mut result = String::with_capacity(line.len());
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            if let Some(value) = definitions.value(&word) {
                used.push(word);
                result.push_str(value);
            } else {
                result.push_str(&word);
            }
        } else {
            result.push(c);
            i += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_headers() -> BTreeMap<String, String> {
        BTreeMap::new()
    }

    #[test]
    fn definitions_from_flags() {
        let defs = Definitions::from_flags(["-DHAVE_MKL", "-DGMX_SIMD=AVX_512", "-O3", "-fopenmp"]);
        assert!(defs.is_defined("HAVE_MKL"));
        assert_eq!(defs.value("GMX_SIMD"), Some("AVX_512"));
        assert!(!defs.is_defined("O3"));
        assert_eq!(defs.len(), 2);
    }

    #[test]
    fn ifdef_selects_branches_like_figure_3() {
        let source = r#"
#if defined(HAVE_MKL)
kernel void transpose(float* b, float* a, int r, int c) { mkl_domatcopy(a, b, r, c); }
#endif
#if !defined(HAVE_MKL) && !defined(HAVE_OPENBLAS)
kernel void transpose(float* b, float* a, int r, int c) {
    for (int i = 0; i < r; i = i + 1) { b[i] = a[i]; }
}
#endif
"#;
        let mut with_mkl = Definitions::new();
        with_mkl.define_flag("HAVE_MKL");
        let mkl = preprocess("t.ck", source, &with_mkl, &no_headers()).unwrap();
        assert!(mkl.text.contains("mkl_domatcopy"));
        assert!(!mkl.text.contains("for (int i"));

        let plain = preprocess("t.ck", source, &Definitions::new(), &no_headers()).unwrap();
        assert!(!plain.text.contains("mkl_domatcopy"));
        assert!(plain.text.contains("for (int i"));
        assert_ne!(mkl.content_hash(), plain.content_hash());
        assert!(mkl.used_definitions.contains(&"HAVE_MKL".to_string()));
    }

    #[test]
    fn irrelevant_definitions_do_not_change_the_hash() {
        let source = "kernel void f(float* x, int n) { x[0] = 1.0; }\n";
        let plain = preprocess("f.ck", source, &Definitions::new(), &no_headers()).unwrap();
        let mut noisy = Definitions::new();
        noisy.define_flag("GMX_GPU_CUDA");
        noisy.define("UNRELATED", "42");
        let with_defs = preprocess("f.ck", source, &noisy, &no_headers()).unwrap();
        assert_eq!(plain.content_hash(), with_defs.content_hash());
    }

    #[test]
    fn else_and_elif_branches() {
        let source = r#"
#ifdef USE_CUDA
int backend = 1;
#elif defined(USE_HIP)
int backend = 2;
#else
int backend = 0;
#endif
"#;
        let mut cuda = Definitions::new();
        cuda.define_flag("USE_CUDA");
        assert!(preprocess("b.ck", source, &cuda, &no_headers())
            .unwrap()
            .text
            .contains("backend = 1"));
        let mut hip = Definitions::new();
        hip.define_flag("USE_HIP");
        assert!(preprocess("b.ck", source, &hip, &no_headers())
            .unwrap()
            .text
            .contains("backend = 2"));
        let none = preprocess("b.ck", source, &Definitions::new(), &no_headers()).unwrap();
        assert!(none.text.contains("backend = 0"));
    }

    #[test]
    fn includes_are_resolved_and_recorded() {
        let mut headers = BTreeMap::new();
        headers.insert(
            "vec_ops.h".to_string(),
            "float dot(float* a, float* b, int n) { return 0.0; }\n".to_string(),
        );
        let source = "#include \"vec_ops.h\"\nkernel void f(float* a, float* b, int n) { a[0] = dot(a, b, n); }\n";
        let unit = preprocess("f.ck", source, &Definitions::new(), &headers).unwrap();
        assert!(unit.text.contains("float dot"));
        assert_eq!(unit.included_headers, vec!["vec_ops.h"]);
        let missing = preprocess(
            "f.ck",
            "#include \"absent.h\"\n",
            &Definitions::new(),
            &no_headers(),
        );
        assert!(matches!(
            missing,
            Err(PreprocessError::MissingInclude { .. })
        ));
    }

    #[test]
    fn macro_substitution_replaces_whole_identifiers_only() {
        let mut defs = Definitions::new();
        defs.define("N", "128");
        let unit = preprocess("m.ck", "int n = N; int nn = NN;", &defs, &no_headers()).unwrap();
        assert!(unit.text.contains("int n = 128;"));
        assert!(unit.text.contains("int nn = NN;"));
    }

    #[test]
    fn unbalanced_and_unterminated_conditionals_error() {
        assert!(matches!(
            preprocess("x.ck", "#endif\n", &Definitions::new(), &no_headers()),
            Err(PreprocessError::UnbalancedConditional { .. })
        ));
        assert!(matches!(
            preprocess(
                "x.ck",
                "#ifdef A\nint x;\n",
                &Definitions::new(),
                &no_headers()
            ),
            Err(PreprocessError::UnterminatedConditional)
        ));
    }

    #[test]
    fn whitespace_canonicalisation_stabilises_hash() {
        let a = preprocess(
            "a.ck",
            "int x;   \n\n\nint y;\n",
            &Definitions::new(),
            &no_headers(),
        )
        .unwrap();
        let b = preprocess("a.ck", "int x;\nint y;", &Definitions::new(), &no_headers()).unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn nested_conditionals() {
        let source = r#"
#ifdef GPU
#ifdef CUDA
int path = 11;
#else
int path = 12;
#endif
#else
int path = 0;
#endif
"#;
        let mut both = Definitions::new();
        both.define_flag("GPU");
        both.define_flag("CUDA");
        assert!(preprocess("n.ck", source, &both, &no_headers())
            .unwrap()
            .text
            .contains("path = 11"));
        let mut gpu_only = Definitions::new();
        gpu_only.define_flag("GPU");
        assert!(preprocess("n.ck", source, &gpu_only, &no_headers())
            .unwrap()
            .text
            .contains("path = 12"));
        assert!(
            preprocess("n.ck", source, &Definitions::new(), &no_headers())
                .unwrap()
                .text
                .contains("path = 0")
        );
    }

    #[test]
    fn content_digest_is_hex_of_content_hash() {
        let unit = preprocess("d.ck", "int x;\n", &Definitions::new(), &no_headers()).unwrap();
        assert_eq!(
            unit.content_digest(),
            format!("{:016x}", unit.content_hash())
        );
        assert_eq!(unit.content_digest().len(), 16);
    }

    #[test]
    fn fnv_hash_is_stable_and_distinguishes_content() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"xaas"), fnv1a(b"xaas"));
    }
}
