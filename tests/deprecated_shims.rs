//! Deprecation-shim compile check: the nine legacy free functions
//! (`build_ir_container{,_cached,_with}`, `deploy_ir_container{,_cached,_with}`,
//! `deploy_source_container{,_cached,_with}`) plus the old `FleetRequest` name must
//! keep compiling with their historical signatures and produce results identical to
//! the orchestrator requests they now shim. CI runs this file explicitly, so
//! breaking an old signature fails the build even if no other test touches it.
#![allow(deprecated)]

use xaas::deploy::{deploy_ir_container, deploy_ir_container_cached, deploy_ir_container_with};
use xaas::ir_container::{build_ir_container, build_ir_container_cached, build_ir_container_with};
use xaas::prelude::*;
use xaas::source_container::{
    deploy_source_container, deploy_source_container_cached, deploy_source_container_with,
};
use xaas_buildsys::OptionAssignment;
use xaas_container::{ActionCache, ImageStore};
use xaas_hpcsim::{SimdLevel, SystemModel};

#[test]
fn all_nine_legacy_entry_points_still_compile_and_match_the_orchestrator() {
    let project = xaas_apps::lulesh::project();
    let config = IrPipelineConfig::sweep_options(&project, &["WITH_MPI", "WITH_OPENMP"]);
    let store = ImageStore::new();
    let cache = ActionCache::new(store.clone());
    let engine = Engine::uncached(&store).with_workers(2);
    let system = SystemModel::ault23();
    let selection = OptionAssignment::new()
        .with("WITH_MPI", "ON")
        .with("WITH_OPENMP", "ON");

    // IR build: plain, cached, with-engine.
    let build = build_ir_container(&project, &config, &store, "shim:ir").unwrap();
    let cached = build_ir_container_cached(&project, &config, &cache, "shim:ir-cached").unwrap();
    let with = build_ir_container_with(&project, &config, &engine, "shim:ir-with").unwrap();
    assert_eq!(build.image.layers, cached.image.layers);
    assert_eq!(build.image.layers, with.image.layers);

    // Orchestrator equivalence: the shim and the request produce identical images.
    let via_request = IrBuildRequest::new(&project, &config)
        .reference("shim:ir-request")
        .submit(&Orchestrator::uncached(&store))
        .unwrap();
    assert_eq!(via_request.image.layers, build.image.layers);
    assert_eq!(via_request.units, build.units);

    // IR deploy: plain, cached, with-engine.
    let deployed = deploy_ir_container(
        &build,
        &project,
        &system,
        &selection,
        SimdLevel::Avx512,
        &store,
    )
    .unwrap();
    let deployed_cached = deploy_ir_container_cached(
        &build,
        &project,
        &system,
        &selection,
        SimdLevel::Avx512,
        &cache,
    )
    .unwrap();
    let deployed_with = deploy_ir_container_with(
        &build,
        &project,
        &system,
        &selection,
        SimdLevel::Avx512,
        &engine,
    )
    .unwrap();
    assert_eq!(deployed.image.layers, deployed_cached.image.layers);
    assert_eq!(deployed.image.layers, deployed_with.image.layers);

    // Source deploy: plain, cached, with-engine.
    let source_image = build_source_container(&project, Architecture::Amd64, &store, "shim:src");
    let source = deploy_source_container(
        &project,
        &source_image,
        &system,
        &OptionAssignment::new(),
        SelectionPolicy::BestAvailable,
        &store,
    )
    .unwrap();
    let source_cached = deploy_source_container_cached(
        &project,
        &source_image,
        &system,
        &OptionAssignment::new(),
        SelectionPolicy::BestAvailable,
        &cache,
    )
    .unwrap();
    let source_with = deploy_source_container_with(
        &project,
        &source_image,
        &system,
        &OptionAssignment::new(),
        SelectionPolicy::BestAvailable,
        &engine,
    )
    .unwrap();
    assert_eq!(source.image.layers, source_cached.image.layers);
    assert_eq!(source.image.layers, source_with.image.layers);

    // The old scheduler::FleetRequest name still denotes a per-system target.
    let legacy: xaas::scheduler::FleetRequest =
        xaas::scheduler::FleetRequest::new(system, selection, SimdLevel::Avx512);
    let specializer = FleetSpecializer::new(cache);
    let report = specializer.specialize_fleet(&build, &project, &[legacy]);
    assert!(report.all_succeeded());

    // The specializer's pre-service accessors keep compiling: `engine()` hands
    // back a detached engine over the same cache, `orchestrator()` the
    // session's tenant-tagged view. Both are deprecated in favour of
    // `service()`/`session()`.
    let detached: Engine = specializer.engine();
    assert_eq!(detached.workers(), specializer.orchestrator().workers());
    assert_eq!(specializer.orchestrator().tenant(), Some("fleet"));
    assert_eq!(specializer.session().tenant(), "fleet");

    // The by-value `get_blob` keeps compiling with its historical signature and
    // returns the same bytes the zero-copy `blob` handle exposes.
    let digest = store.put_blob(b"shim payload".to_vec());
    let copied: Vec<u8> = store.get_blob(&digest).unwrap();
    assert_eq!(copied, store.blob(&digest).unwrap().as_slice());
}

/// The blocking `CacheBackend::get_or_compute_action` survives as a deprecated
/// shim over the nonblocking flight protocol: its historical signature —
/// `&BuildKey` plus `&mut dyn FnMut` compute, returning `(Blob, bool)` — must
/// keep compiling and behaving (compute-on-miss, hit-on-repeat) even though no
/// in-repo caller uses it anymore.
#[test]
fn blocking_get_or_compute_action_keeps_its_signature_and_semantics() {
    let cache = ActionCache::new(ImageStore::new());
    let backend: &dyn xaas_container::CacheBackend = &cache;
    let key = xaas_container::BuildKey::new("shim-tu", "x86_64", "O2", "clang-17");

    let mut compute = || Ok(b"shim bytes".to_vec());
    let result: Result<(xaas_container::Blob, bool), xaas_container::ComputeFailed> =
        backend.get_or_compute_action(&key, &mut compute);
    let (blob, hit) = result.unwrap();
    assert_eq!(blob.as_slice(), b"shim bytes");
    assert!(!hit, "first call computes");

    let (again, hit) = backend
        .get_or_compute_action(&key, &mut || panic!("a hit must not invoke compute"))
        .unwrap();
    assert_eq!(again.as_slice(), b"shim bytes");
    assert!(hit, "second call is served from the cache");
}
