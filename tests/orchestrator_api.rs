//! Error plumbing through the orchestrator session API: malformed projects,
//! failing compiles routed through `NoCache`, and invalid scheduling policies must
//! all surface as *typed* errors — never a panic, never a deadlock. Every scenario
//! runs under a timeout guard so a regression hangs the watchdog, not CI.

use std::collections::BTreeMap;
use std::time::Duration;
use xaas::engine::ActionKind;
use xaas::prelude::*;
use xaas_buildsys::{ProjectSpec, SourceSpec, TargetKind, TargetSpec};
use xaas_container::ImageStore;
use xaas_hpcsim::SystemModel;

/// Watchdog: run `f` on a worker thread and fail loudly if it neither returns nor
/// errors within `secs` (a deadlocked executor would otherwise hang the suite).
fn with_timeout<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("request must complete (no deadlock) within the timeout")
}

/// A one-source project; `sources` and `target_files` are decoupled so tests can
/// make the target reference a file the project does not provide.
fn tiny_project(source: &str, target_files: Vec<String>) -> ProjectSpec {
    ProjectSpec {
        name: "tiny".into(),
        version: "1.0".into(),
        build_script: "project(tiny)\n".into(),
        options: Vec::new(),
        sources: vec![SourceSpec::new("src/main.ck", source)],
        headers: BTreeMap::new(),
        targets: vec![TargetSpec::new(
            "tiny",
            TargetKind::Executable,
            target_files,
        )],
        custom_targets: Vec::new(),
        global_flags: vec!["-O2".into()],
        mpi_abi: None,
    }
}

const VALID_SOURCE: &str =
    "kernel void zero(float* x, int n) { for (int i = 0; i < n; i = i + 1) { x[i] = 0.0; } }";

#[test]
fn malformed_target_source_is_a_typed_unknown_source_error() {
    let project = tiny_project(
        VALID_SOURCE,
        vec!["src/main.ck".into(), "src/typo.ck".into()],
    );
    let config = IrPipelineConfig::sweep_options(&project, &[]);
    let error = with_timeout(30, move || {
        IrBuildRequest::new(&project, &config).submit(&Orchestrator::new())
    })
    .unwrap_err();
    match &error {
        IrPipelineError::UnknownSource { file } => assert_eq!(file, "src/typo.ck"),
        other => panic!("expected UnknownSource, got {other}"),
    }
    assert!(error.to_string().contains("src/typo.ck"));
}

#[test]
fn malformed_target_source_fails_source_deployment_the_same_way() {
    let project = tiny_project(VALID_SOURCE, vec!["src/ghost.ck".into()]);
    let error = with_timeout(30, move || {
        let store = ImageStore::new();
        let image = build_source_container(&project, Architecture::Amd64, &store, "tiny:src");
        SourceDeployRequest::new(&project, &image, &SystemModel::ault23())
            .submit(&Orchestrator::uncached(&store))
    })
    .unwrap_err();
    match &error {
        SourceContainerError::UnknownSource { file } => assert_eq!(file, "src/ghost.ck"),
        other => panic!("expected UnknownSource, got {other}"),
    }
}

/// A compile failure inside a keyed action routed through the `NoCache` backend
/// (every lookup is a miss that computes) must come back as the driver's typed
/// `Compile` error — not the executor's "skipped without a preceding failure"
/// panic, and not a hang.
#[test]
fn failing_compile_on_a_nocache_miss_returns_the_typed_compile_error() {
    let project = tiny_project(
        "kernel void broken(float* x { this is not ck }",
        vec!["src/main.ck".into()],
    );
    let config = IrPipelineConfig::sweep_options(&project, &[]);
    let store = ImageStore::new();
    let error = with_timeout(30, move || {
        IrBuildRequest::new(&project, &config).submit(&Orchestrator::uncached(&store))
    })
    .unwrap_err();
    assert!(
        matches!(error, IrPipelineError::Compile { ref file, .. } if file == "src/main.ck"),
        "expected a typed Compile error for src/main.ck, got {error}"
    );
}

/// A policy with a zero concurrency cap is rejected up front with a typed error on
/// every request type — the executor is never handed an unrunnable graph.
#[test]
fn zero_concurrency_cap_is_rejected_before_any_action_runs() {
    let project = tiny_project(VALID_SOURCE, vec!["src/main.ck".into()]);
    let config = IrPipelineConfig::sweep_options(&project, &[]);
    let broken = Orchestrator::builder()
        .policy(CriticalPathFirst::new().with_cap(ActionKind::IrLower, 0))
        .build();

    let (build_error, deploy_error, fleet_report) = with_timeout(30, move || {
        let valid = Orchestrator::new();
        let build = IrBuildRequest::new(&project, &config)
            .submit(&valid)
            .expect("valid session builds");
        let build_error = IrBuildRequest::new(&project, &config)
            .submit(&broken)
            .unwrap_err();
        let system = SystemModel::ault23();
        let deploy_error = IrDeployRequest::new(&build, &project, &system)
            .submit(&broken)
            .unwrap_err();
        let fleet_report = FleetRequest::new(&build, &project)
            .target(FleetTarget::best_for(
                system.clone(),
                xaas_buildsys::OptionAssignment::new(),
            ))
            .submit(&broken);
        (build_error, deploy_error, fleet_report)
    });

    assert!(
        matches!(build_error, IrPipelineError::Policy(PolicyError::ZeroCap { kind })
            if kind == ActionKind::IrLower),
        "got {build_error}"
    );
    assert!(
        matches!(deploy_error, DeployError::Policy(_)),
        "got {deploy_error}"
    );
    assert!(!fleet_report.all_succeeded());
    assert_eq!(fleet_report.jobs_executed, 1);
    let fleet_error = fleet_report.outcomes[0].deployment.as_ref().unwrap_err();
    assert!(
        fleet_error.message.contains("zero concurrent actions"),
        "{fleet_error}"
    );
    // Nothing ran: the invalid session never dispatched an action.
    assert_eq!(fleet_report.cache.misses, 0);
}

/// The well-formed control case: the tiny project builds and deploys cleanly
/// through the same session, proving the failures above are the error paths and
/// not artifacts of the fixture.
#[test]
fn tiny_project_builds_and_deploys_through_one_session() {
    let project = tiny_project(VALID_SOURCE, vec!["src/main.ck".into()]);
    let config = IrPipelineConfig::sweep_options(&project, &[]);
    let (build, deployment) = with_timeout(60, move || {
        let orch = Orchestrator::new();
        let build = IrBuildRequest::new(&project, &config)
            .submit(&orch)
            .unwrap();
        let deployment = IrDeployRequest::new(&build, &project, &SystemModel::ault23())
            .submit(&orch)
            .unwrap();
        (build, deployment)
    });
    assert_eq!(build.stats.configurations, 1);
    assert_eq!(build.units.len(), 1);
    assert!(deployment.stats.lowered_units > 0);
    assert!(!deployment.trace.is_empty());
}
